#ifndef DSSDDI_ALGO_BFS_H_
#define DSSDDI_ALGO_BFS_H_

#include <vector>

#include "graph/graph.h"

namespace dssddi::algo {

inline constexpr int kUnreachable = -1;

/// Unweighted single-source shortest-path distances; kUnreachable where no
/// path exists. `alive`, if non-empty, restricts traversal to vertices with
/// alive[v] == true (used while shrinking CTC candidates).
std::vector<int> BfsDistances(const graph::Graph& g, int source,
                              const std::vector<char>& alive = {});

/// Connected component id per vertex (-1 for non-alive vertices).
std::vector<int> ConnectedComponents(const graph::Graph& g,
                                     const std::vector<char>& alive = {});

/// True iff all `vertices` are alive and in one connected component.
bool AllConnected(const graph::Graph& g, const std::vector<int>& vertices,
                  const std::vector<char>& alive = {});

/// Exact diameter of the alive induced subgraph (max eccentricity over
/// reachable pairs). Returns 0 for <=1 alive vertex. O(V * E).
int Diameter(const graph::Graph& g, const std::vector<char>& alive = {});

/// Dijkstra with per-edge weights (indexed by edge id). Weights must be
/// non-negative. Returns distances (infinity -> kUnreachableWeight).
inline constexpr double kUnreachableWeight = -1.0;
std::vector<double> DijkstraDistances(const graph::Graph& g, int source,
                                      const std::vector<double>& edge_weights);

}  // namespace dssddi::algo

#endif  // DSSDDI_ALGO_BFS_H_
