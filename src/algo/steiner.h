#ifndef DSSDDI_ALGO_STEINER_H_
#define DSSDDI_ALGO_STEINER_H_

#include <vector>

#include "graph/graph.h"

namespace dssddi::algo {

/// Result of an approximate Steiner tree computation: edge ids of the tree
/// and the vertices it spans (terminals included).
struct SteinerTree {
  std::vector<int> edge_ids;
  std::vector<int> vertices;
  double total_weight = 0.0;
  /// False when the terminals are not all in one connected component.
  bool connected = false;
};

/// Mehlhorn's 2-approximation for the Steiner tree problem (Information
/// Processing Letters 1988), as used by the CTC search (paper Section
/// IV-C2a): multi-source shortest paths from the terminals induce a Voronoi
/// partition; an MST over the induced terminal distance graph expands into
/// graph paths; a final MST + leaf pruning yields the tree.
SteinerTree MehlhornSteinerTree(const graph::Graph& g,
                                const std::vector<int>& terminals,
                                const std::vector<double>& edge_weights);

/// Convenience overload with unit edge weights.
SteinerTree MehlhornSteinerTree(const graph::Graph& g,
                                const std::vector<int>& terminals);

}  // namespace dssddi::algo

#endif  // DSSDDI_ALGO_STEINER_H_
