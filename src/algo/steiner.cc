#include "algo/steiner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "util/logging.h"

namespace dssddi::algo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Union-find for Kruskal.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

struct VoronoiResult {
  std::vector<double> dist;
  std::vector<int> nearest_terminal;  // index into `terminals`
  std::vector<int> pred_vertex;
  std::vector<int> pred_edge;
};

VoronoiResult MultiSourceDijkstra(const graph::Graph& g,
                                  const std::vector<int>& terminals,
                                  const std::vector<double>& edge_weights) {
  VoronoiResult r;
  r.dist.assign(g.num_vertices(), kInf);
  r.nearest_terminal.assign(g.num_vertices(), -1);
  r.pred_vertex.assign(g.num_vertices(), -1);
  r.pred_edge.assign(g.num_vertices(), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  for (size_t t = 0; t < terminals.size(); ++t) {
    const int v = terminals[t];
    r.dist[v] = 0.0;
    r.nearest_terminal[v] = static_cast<int>(t);
    heap.emplace(0.0, v);
  }
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > r.dist[v]) continue;
    const auto nbrs = g.Neighbors(v);
    const auto eids = g.IncidentEdges(v);
    for (int i = 0; i < nbrs.size(); ++i) {
      const int u = nbrs.begin()[i];
      const int e = eids.begin()[i];
      const double w = edge_weights[e];
      if (r.dist[v] + w < r.dist[u]) {
        r.dist[u] = r.dist[v] + w;
        r.nearest_terminal[u] = r.nearest_terminal[v];
        r.pred_vertex[u] = v;
        r.pred_edge[u] = e;
        heap.emplace(r.dist[u], u);
      }
    }
  }
  return r;
}

/// Walks predecessor pointers from `v` back to its Voronoi center,
/// collecting edge ids.
void CollectPathToCenter(const VoronoiResult& voronoi, int v, std::set<int>* edges) {
  while (voronoi.pred_edge[v] >= 0) {
    edges->insert(voronoi.pred_edge[v]);
    v = voronoi.pred_vertex[v];
  }
}

}  // namespace

SteinerTree MehlhornSteinerTree(const graph::Graph& g,
                                const std::vector<int>& terminals,
                                const std::vector<double>& edge_weights) {
  DSSDDI_CHECK(static_cast<int>(edge_weights.size()) == g.num_edges())
      << "edge weight size mismatch";
  SteinerTree result;
  if (terminals.empty()) {
    result.connected = true;
    return result;
  }
  for (int t : terminals) {
    DSSDDI_CHECK(t >= 0 && t < g.num_vertices()) << "terminal out of range";
  }
  if (terminals.size() == 1) {
    result.connected = true;
    result.vertices = {terminals.front()};
    return result;
  }

  const VoronoiResult voronoi = MultiSourceDijkstra(g, terminals, edge_weights);

  // Terminal distance graph: best bridging edge between Voronoi cells.
  struct Bridge {
    double dist = kInf;
    int edge = -1;
  };
  std::map<std::pair<int, int>, Bridge> bridges;
  for (int e = 0; e < g.num_edges(); ++e) {
    auto [u, v] = g.Edge(e);
    const int su = voronoi.nearest_terminal[u];
    const int sv = voronoi.nearest_terminal[v];
    if (su < 0 || sv < 0 || su == sv) continue;
    const double d = voronoi.dist[u] + edge_weights[e] + voronoi.dist[v];
    auto key = std::minmax(su, sv);
    Bridge& bridge = bridges[{key.first, key.second}];
    if (d < bridge.dist) bridge = {d, e};
  }

  // Kruskal MST over the terminal graph.
  std::vector<std::pair<double, std::pair<int, int>>> terminal_edges;
  terminal_edges.reserve(bridges.size());
  for (const auto& [key, bridge] : bridges) {
    terminal_edges.push_back({bridge.dist, key});
  }
  std::sort(terminal_edges.begin(), terminal_edges.end());
  DisjointSets terminal_sets(static_cast<int>(terminals.size()));
  std::set<int> tree_edges;
  int merged = 0;
  for (const auto& [dist, key] : terminal_edges) {
    if (!terminal_sets.Union(key.first, key.second)) continue;
    ++merged;
    // Expand the bridge into actual graph edges.
    const int bridge_edge = bridges[{key.first, key.second}].edge;
    auto [u, v] = g.Edge(bridge_edge);
    tree_edges.insert(bridge_edge);
    CollectPathToCenter(voronoi, u, &tree_edges);
    CollectPathToCenter(voronoi, v, &tree_edges);
  }
  if (merged + 1 < static_cast<int>(terminals.size())) {
    result.connected = false;  // terminals span multiple components
    return result;
  }

  // Final cleanup: MST of the collected subgraph, then prune non-terminal
  // leaves repeatedly.
  std::vector<std::pair<double, int>> sub_edges;
  sub_edges.reserve(tree_edges.size());
  for (int e : tree_edges) sub_edges.push_back({edge_weights[e], e});
  std::sort(sub_edges.begin(), sub_edges.end());
  DisjointSets vertex_sets(g.num_vertices());
  std::vector<int> mst_edges;
  for (const auto& [w, e] : sub_edges) {
    auto [u, v] = g.Edge(e);
    if (vertex_sets.Union(u, v)) mst_edges.push_back(e);
  }

  // Prune degree-1 non-terminal vertices until fixpoint.
  std::vector<char> is_terminal(g.num_vertices(), 0);
  for (int t : terminals) is_terminal[t] = 1;
  std::vector<char> edge_alive_flags(g.num_edges(), 0);
  std::vector<int> degree(g.num_vertices(), 0);
  for (int e : mst_edges) {
    edge_alive_flags[e] = 1;
    auto [u, v] = g.Edge(e);
    ++degree[u];
    ++degree[v];
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int e : mst_edges) {
      if (!edge_alive_flags[e]) continue;
      auto [u, v] = g.Edge(e);
      const bool u_leaf = degree[u] == 1 && !is_terminal[u];
      const bool v_leaf = degree[v] == 1 && !is_terminal[v];
      if (u_leaf || v_leaf) {
        edge_alive_flags[e] = 0;
        --degree[u];
        --degree[v];
        changed = true;
      }
    }
  }

  result.connected = true;
  std::set<int> vertex_set;
  for (int e : mst_edges) {
    if (!edge_alive_flags[e]) continue;
    result.edge_ids.push_back(e);
    result.total_weight += edge_weights[e];
    auto [u, v] = g.Edge(e);
    vertex_set.insert(u);
    vertex_set.insert(v);
  }
  for (int t : terminals) vertex_set.insert(t);
  result.vertices.assign(vertex_set.begin(), vertex_set.end());
  return result;
}

SteinerTree MehlhornSteinerTree(const graph::Graph& g, const std::vector<int>& terminals) {
  return MehlhornSteinerTree(g, terminals, std::vector<double>(g.num_edges(), 1.0));
}

}  // namespace dssddi::algo
