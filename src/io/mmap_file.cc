#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dssddi::io {

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  data_ = other.data_;
  size_ = other.size_;
  path_ = std::move(other.path_);
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

void MmapFile::Reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

Status MmapFile::Open(const std::string& path, MmapFile* out, bool prefault) {
  out->Reset();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Error("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Error("cannot stat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::Error("not a regular file: " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::Error("empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // MAP_SHARED (not PRIVATE) is what makes shard processes share one
  // page-cache copy; PROT_READ means a stray write through the mapping
  // faults instead of corrupting the served weights on disk.
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  const int map_err = errno;
  // The mapping keeps its own reference to the file; the descriptor is
  // not needed past this point.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::Error("cannot mmap " + path + ": " + std::strerror(map_err));
  }
  if (prefault) {
    // Advisory readahead, then one volatile byte per page to force the
    // fault now (sequentially, so readahead amortizes the IO) instead
    // of on the first request. The default path stays fully lazy: a
    // load must cost O(touched pages), and a process mapping an
    // already-warm file must not grow its RSS by the file size.
    ::madvise(mapping, size, MADV_WILLNEED);
    const long page = ::sysconf(_SC_PAGESIZE);
    const size_t step = page > 0 ? static_cast<size_t>(page) : 4096;
    const volatile unsigned char* bytes =
        static_cast<const unsigned char*>(mapping);
    unsigned char sink = 0;
    for (size_t offset = 0; offset < size; offset += step) sink ^= bytes[offset];
    sink ^= bytes[size - 1];
    (void)sink;
  }
  out->data_ = static_cast<unsigned char*>(mapping);
  out->size_ = size;
  out->path_ = path;
  return Status::Ok();
}

}  // namespace dssddi::io
