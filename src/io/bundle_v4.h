#ifndef DSSDDI_IO_BUNDLE_V4_H_
#define DSSDDI_IO_BUNDLE_V4_H_

#include <cstdint>
#include <string>

#include "io/binary.h"

namespace dssddi::io {

struct InferenceBundle;

/// ---------------------------------------------------------------------
/// Bundle format v4: a single flat little-endian file designed to be
/// mmap'd and served in place — loading is O(pages touched), not
/// O(bytes deserialized), and every process mapping the same file shares
/// one page-cache copy of the weights.
///
/// Layout:
///
///   [0, 32)                     header (below)
///   [32, 32 + 32 * sections)    section table, one 32-byte entry each
///   ...                         sections, each starting on a 4096-byte
///                               file offset (so mmap'd sections begin on
///                               a page, and every in-section array —
///                               placed at 32-byte section-relative
///                               offsets — lands 32-byte aligned in
///                               memory, matching tensor/aligned.h)
///
/// Header (32 bytes): u32 magic kBundleV4Magic ("DSD4"), u32
/// header_version (1), u32 format id (kFormatInferenceBundle, so a v4
/// file still self-describes its artifact kind), u32 bundle version (4),
/// u64 total file size (ties the table to the actual file, catching
/// truncation without hashing), u32 section count, u32 reserved (0).
///
/// Section-table entry (32 bytes): u32 type, u32 reserved (0), u64 file
/// offset, u64 byte length, u64 FNV-1a checksum of the section bytes.
/// Checksums are verified by tooling and tests (VerifyBundleV4Checksums)
/// — not on the serving load path, which would touch every page and
/// defeat the point of mapping.
///
/// Section types and their contents (all integers little-endian, all
/// array offsets section-relative and 32-byte aligned):
///
///   1 Meta        BinaryWriter blob: display_name, mlp_decoder u8,
///                 use_treatment_feature u8, hidden_dim i32, ms_alpha
///                 f64, ms_explainer u8, drug_names string vector.
///   2 PatientMlp  u32 num_layers; per layer u32 rows, u32 cols, i32
///   3 DecoderMlp  activation, u64 weight_off, u64 bias_off; float
///                 arrays (weights rows x cols row-major, bias cols).
///   4 DrugReps    u32 rows, u32 cols, pad to 32; rows x cols floats.
///   5 Centroids   (same layout)
///   6 Treatment   (same layout)
///   7 QuantPatient  u32 num_layers; per layer u32 k, u32 n, i32
///   8 QuantDecoder  activation, f32 max_abs_error, u64 data_off, u64
///                 scales_off, u64 corrections_off, u64 bias_off.
///                 Arrays: packed int8 tiles (n_padded x k_padded bytes,
///                 the exact deterministic ISA-independent layout
///                 QGemmBiasAct consumes — zero repacking at load),
///                 scales n_padded f32, corrections num_groups x
///                 n_padded i32, bias n f32. Present both-or-neither.
///   9 Graph       u32 num_vertices, u32 num_signed_edges, u32
///                 skeleton_edges, u32 reserved; u64 offsets for the
///                 signed-edge triples (i32 u, v, sign each) and the
///                 interaction skeleton's CSR arrays (endpoints 2E,
///                 adj_offsets V+1, adj_neighbors 2E, adj_edge_ids 2E,
///                 all i32) exactly as graph::Graph::FromCsrView expects.
///
/// The loader validates the header and table exhaustively (alignment,
/// extents, overlaps, required sections), bounds-checks every descriptor
/// read, re-validates all CSR invariants, and confirms the stored
/// skeleton equals ddi.InteractionSkeleton() — so a corrupt or hostile
/// file fails with a Status at load, never a crash at query time.
/// ---------------------------------------------------------------------

/// "DSD4" read as a little-endian u32 (the v3 framed magic is "DSSD").
inline constexpr uint32_t kBundleV4Magic = 0x34445344;
inline constexpr uint32_t kBundleV4HeaderVersion = 1;
inline constexpr uint32_t kBundleV4Version = 4;
inline constexpr uint64_t kBundleV4SectionAlign = 4096;
inline constexpr uint64_t kBundleV4ArrayAlign = 32;

enum BundleV4Section : uint32_t {
  kSectionMeta = 1,
  kSectionPatientMlp = 2,
  kSectionDecoderMlp = 3,
  kSectionDrugReps = 4,
  kSectionCentroids = 5,
  kSectionTreatment = 6,
  kSectionQuantPatient = 7,
  kSectionQuantDecoder = 8,
  kSectionGraph = 9,
};

/// Writes `bundle` as a flat v4 file. The interaction skeleton is
/// derived (or reused) and serialized alongside the DDI edges so loads
/// never re-sort; the int8 companions are written in packed kernel
/// layout when present.
Status SaveInferenceBundleV4(const std::string& path,
                             const InferenceBundle& bundle);

/// Maps `path` and builds a zero-copy bundle: matrices, quantized
/// weights and the skeleton become views into the mapping (retained via
/// bundle->mapping); only the small descriptors, the metadata strings
/// and the signed DDI edge list go to the heap. With `prefault` the
/// mapping is touched page-by-page up front, trading load latency for
/// no first-query faults. Prefer LoadInferenceBundle, which dispatches
/// here on the file magic and stamps format_version / load_ms.
Status LoadInferenceBundleV4(const std::string& path, InferenceBundle* bundle,
                             bool prefault = false);

/// Recomputes and checks every section's FNV-1a checksum (reads the
/// whole file — tooling/test use only, not the serving load path).
Status VerifyBundleV4Checksums(const std::string& path);

}  // namespace dssddi::io

#endif  // DSSDDI_IO_BUNDLE_V4_H_
