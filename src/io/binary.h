#ifndef DSSDDI_IO_BINARY_H_
#define DSSDDI_IO_BINARY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dssddi::io {

/// Status-style result for fallible I/O (the public API does not throw).
struct Status {
  bool ok = true;
  std::string message;

  static Status Ok() { return {}; }
  static Status Error(std::string message) { return {false, std::move(message)}; }
  explicit operator bool() const { return ok; }
};

/// 64-bit FNV-1a hash over `data`, used as the payload checksum in every
/// DSSDDI file so truncation and bit-rot are detected at load time.
uint64_t Fnv1a64(const char* data, size_t size);
inline uint64_t Fnv1a64(const std::string& data) {
  return Fnv1a64(data.data(), data.size());
}

/// Appends little-endian fixed-width values to an in-memory buffer.
/// All multi-byte values are written byte-by-byte so the format is
/// identical across host endianness.
class BinaryWriter {
 public:
  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value);
  void WriteF32(float value);
  void WriteF64(double value);
  /// u32 length prefix + raw bytes.
  void WriteString(const std::string& value);
  /// u32 count prefix + packed little-endian floats.
  void WriteFloatArray(const float* values, size_t count);
  void WriteIntVector(const std::vector<int>& values);

  const std::string& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Reads little-endian values from a buffer with a sticky failure flag:
/// after the first short or malformed read, `ok()` turns false and every
/// subsequent read returns a zero value without advancing.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buffer) : buffer_(&buffer) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  /// Reads a u32 count prefix then that many floats into `out`.
  bool ReadFloatArray(std::vector<float>* out) { return ReadFloatsInto(out); }
  /// Same, for any vector-like float container (e.g. the tensor
  /// library's aligned storage) — avoids a copy through a temporary.
  template <typename FloatVector>
  bool ReadFloatsInto(FloatVector* out) {
    const uint32_t count = ReadU32();
    if (!ok_ || position_ + static_cast<size_t>(count) * 4 > buffer_->size()) {
      ok_ = false;
      return false;
    }
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) (*out)[i] = ReadF32();
    return ok_;
  }
  bool ReadIntVector(std::vector<int>* out);

  bool ok() const { return ok_; }
  size_t position() const { return position_; }
  size_t remaining() const { return ok_ ? buffer_->size() - position_ : 0; }
  /// Marks the reader failed (used by codecs on semantic errors).
  void Fail() { ok_ = false; }

 private:
  bool Take(void* out, size_t count);

  const std::string* buffer_;
  size_t position_ = 0;
  bool ok_ = true;
};

/// Reads a whole file into `out`. Returns an error Status on any failure.
Status ReadFileToString(const std::string& path, std::string* out);
/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, const std::string& data);

/// Frames `payload` with a magic tag, a format id + version, and an
/// FNV-1a checksum, then writes it to `path`. `format_id` distinguishes
/// artifact kinds (dataset vs. checkpoint vs. matrix) so loading a file
/// as the wrong kind fails cleanly instead of misparsing.
Status WriteFramedFile(const std::string& path, uint32_t format_id,
                       uint32_t version, const std::string& payload);

/// Reads and verifies a framed file; on success fills `payload` and
/// `version`. Fails on wrong magic, wrong format id, version newer than
/// `max_version`, or checksum mismatch.
Status ReadFramedFile(const std::string& path, uint32_t format_id,
                      uint32_t max_version, std::string* payload,
                      uint32_t* version);

}  // namespace dssddi::io

#endif  // DSSDDI_IO_BINARY_H_
