#include "io/serialize.h"

#include <utility>

namespace dssddi::io {
namespace {

constexpr uint32_t kCodecVersion = 1;

// Guards against absurd counts from corrupted length prefixes before any
// allocation happens. Generous: the full chronic dataset is far smaller.
constexpr uint32_t kMaxReasonableCount = 1u << 28;

template <typename SaveBody>
Status SaveFramed(const std::string& path, uint32_t format_id, SaveBody body) {
  BinaryWriter writer;
  body(writer);
  return WriteFramedFile(path, format_id, kCodecVersion, writer.buffer());
}

template <typename LoadBody>
Status LoadFramed(const std::string& path, uint32_t format_id, LoadBody body) {
  std::string payload;
  uint32_t version = 0;
  if (Status status = ReadFramedFile(path, format_id, kCodecVersion, &payload, &version);
      !status.ok) {
    return status;
  }
  BinaryReader reader(payload);
  if (!body(reader) || !reader.ok()) {
    return Status::Error("malformed payload: " + path);
  }
  if (reader.remaining() != 0) {
    return Status::Error("trailing bytes after payload: " + path);
  }
  return Status::Ok();
}

}  // namespace

void WriteMatrix(BinaryWriter& writer, const tensor::Matrix& matrix) {
  writer.WriteU32(static_cast<uint32_t>(matrix.rows()));
  writer.WriteU32(static_cast<uint32_t>(matrix.cols()));
  writer.WriteFloatArray(matrix.ReadPtr(), static_cast<size_t>(matrix.size()));
}

bool ReadMatrix(BinaryReader& reader, tensor::Matrix* matrix) {
  const uint32_t rows = reader.ReadU32();
  const uint32_t cols = reader.ReadU32();
  if (!reader.ok() || rows > kMaxReasonableCount || cols > kMaxReasonableCount) {
    reader.Fail();
    return false;
  }
  // Read straight into the matrix's (aligned) storage — model loads and
  // /admin/reload deserialize every weight through here, so no copy via
  // a temporary vector.
  *matrix = tensor::Matrix(static_cast<int>(rows), static_cast<int>(cols));
  if (!reader.ReadFloatsInto(&matrix->data())) return false;
  if (matrix->data().size() != static_cast<size_t>(rows) * cols) {
    reader.Fail();
    return false;
  }
  return true;
}

void WriteSignedGraph(BinaryWriter& writer, const graph::SignedGraph& graph) {
  writer.WriteU32(static_cast<uint32_t>(graph.num_vertices()));
  writer.WriteU32(static_cast<uint32_t>(graph.edges().size()));
  for (const auto& edge : graph.edges()) {
    writer.WriteU32(static_cast<uint32_t>(edge.u));
    writer.WriteU32(static_cast<uint32_t>(edge.v));
    writer.WriteI32(static_cast<int32_t>(edge.sign));
  }
}

bool ReadSignedGraph(BinaryReader& reader, graph::SignedGraph* graph) {
  const uint32_t num_vertices = reader.ReadU32();
  const uint32_t num_edges = reader.ReadU32();
  if (!reader.ok() || num_vertices > kMaxReasonableCount ||
      num_edges > kMaxReasonableCount) {
    reader.Fail();
    return false;
  }
  std::vector<graph::SignedEdge> edges;
  edges.reserve(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    graph::SignedEdge edge;
    edge.u = static_cast<int>(reader.ReadU32());
    edge.v = static_cast<int>(reader.ReadU32());
    const int32_t sign = reader.ReadI32();
    if (!reader.ok()) return false;
    if (sign < -1 || sign > 1 ||
        edge.u >= static_cast<int>(num_vertices) ||
        edge.v >= static_cast<int>(num_vertices)) {
      reader.Fail();
      return false;
    }
    edge.sign = static_cast<graph::EdgeSign>(sign);
    edges.push_back(edge);
  }
  *graph = graph::SignedGraph(static_cast<int>(num_vertices), std::move(edges));
  return true;
}

void WriteSplit(BinaryWriter& writer, const data::Split& split) {
  writer.WriteIntVector(split.train);
  writer.WriteIntVector(split.validation);
  writer.WriteIntVector(split.test);
}

bool ReadSplit(BinaryReader& reader, data::Split* split) {
  return reader.ReadIntVector(&split->train) &&
         reader.ReadIntVector(&split->validation) &&
         reader.ReadIntVector(&split->test);
}

void WriteStringVector(BinaryWriter& writer, const std::vector<std::string>& values) {
  writer.WriteU32(static_cast<uint32_t>(values.size()));
  for (const auto& value : values) writer.WriteString(value);
}

bool ReadStringVector(BinaryReader& reader, std::vector<std::string>* values) {
  const uint32_t count = reader.ReadU32();
  if (!reader.ok() || count > kMaxReasonableCount) {
    reader.Fail();
    return false;
  }
  values->clear();
  values->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    values->push_back(reader.ReadString());
    if (!reader.ok()) return false;
  }
  return true;
}

void WriteIntVectorVector(BinaryWriter& writer,
                          const std::vector<std::vector<int>>& values) {
  writer.WriteU32(static_cast<uint32_t>(values.size()));
  for (const auto& inner : values) writer.WriteIntVector(inner);
}

bool ReadIntVectorVector(BinaryReader& reader,
                         std::vector<std::vector<int>>* values) {
  const uint32_t count = reader.ReadU32();
  if (!reader.ok() || count > kMaxReasonableCount) {
    reader.Fail();
    return false;
  }
  values->assign(count, {});
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.ReadIntVector(&(*values)[i])) return false;
  }
  return true;
}

void WriteDataset(BinaryWriter& writer, const data::SuggestionDataset& dataset) {
  writer.WriteString(dataset.name);
  WriteMatrix(writer, dataset.patient_features);
  WriteMatrix(writer, dataset.medication);
  WriteMatrix(writer, dataset.drug_features);
  WriteSignedGraph(writer, dataset.ddi);
  WriteSplit(writer, dataset.split);
  writer.WriteI32(dataset.num_diseases);
  WriteStringVector(writer, dataset.drug_names);
  WriteIntVectorVector(writer, dataset.patient_diseases);
  writer.WriteU32(static_cast<uint32_t>(dataset.visit_codes.size()));
  for (const auto& visits : dataset.visit_codes) {
    WriteIntVectorVector(writer, visits);
  }
}

bool ReadDataset(BinaryReader& reader, data::SuggestionDataset* dataset) {
  dataset->name = reader.ReadString();
  if (!ReadMatrix(reader, &dataset->patient_features)) return false;
  if (!ReadMatrix(reader, &dataset->medication)) return false;
  if (!ReadMatrix(reader, &dataset->drug_features)) return false;
  if (!ReadSignedGraph(reader, &dataset->ddi)) return false;
  if (!ReadSplit(reader, &dataset->split)) return false;
  dataset->num_diseases = reader.ReadI32();
  if (!ReadStringVector(reader, &dataset->drug_names)) return false;
  if (!ReadIntVectorVector(reader, &dataset->patient_diseases)) return false;
  const uint32_t num_patients_with_visits = reader.ReadU32();
  if (!reader.ok() || num_patients_with_visits > kMaxReasonableCount) {
    reader.Fail();
    return false;
  }
  dataset->visit_codes.assign(num_patients_with_visits, {});
  for (uint32_t i = 0; i < num_patients_with_visits; ++i) {
    if (!ReadIntVectorVector(reader, &dataset->visit_codes[i])) return false;
  }
  // Cross-field consistency: the medication matrix defines the patient and
  // drug axes every other field must agree with.
  const int num_patients = dataset->medication.rows();
  const int num_drugs = dataset->medication.cols();
  if (dataset->patient_features.rows() != num_patients ||
      dataset->ddi.num_vertices() != num_drugs ||
      (!dataset->drug_names.empty() &&
       static_cast<int>(dataset->drug_names.size()) != num_drugs)) {
    reader.Fail();
    return false;
  }
  return true;
}

Status SaveMatrixFile(const std::string& path, const tensor::Matrix& matrix) {
  return SaveFramed(path, kFormatMatrix,
                    [&](BinaryWriter& writer) { WriteMatrix(writer, matrix); });
}

Status LoadMatrixFile(const std::string& path, tensor::Matrix* matrix) {
  return LoadFramed(path, kFormatMatrix,
                    [&](BinaryReader& reader) { return ReadMatrix(reader, matrix); });
}

Status SaveSignedGraphFile(const std::string& path, const graph::SignedGraph& graph) {
  return SaveFramed(path, kFormatSignedGraph,
                    [&](BinaryWriter& writer) { WriteSignedGraph(writer, graph); });
}

Status LoadSignedGraphFile(const std::string& path, graph::SignedGraph* graph) {
  return LoadFramed(path, kFormatSignedGraph, [&](BinaryReader& reader) {
    return ReadSignedGraph(reader, graph);
  });
}

Status SaveDatasetFile(const std::string& path, const data::SuggestionDataset& dataset) {
  return SaveFramed(path, kFormatDataset,
                    [&](BinaryWriter& writer) { WriteDataset(writer, dataset); });
}

Status LoadDatasetFile(const std::string& path, data::SuggestionDataset* dataset) {
  return LoadFramed(path, kFormatDataset, [&](BinaryReader& reader) {
    return ReadDataset(reader, dataset);
  });
}

}  // namespace dssddi::io
