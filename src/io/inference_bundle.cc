#include "io/inference_bundle.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/ms_module.h"
#include "core/suggestion_model.h"
#include "io/bundle_v4.h"
#include "io/serialize.h"
#include "obs/kernel_timing.h"
#include "tensor/kernels/gemm_backend.h"
#include "tensor/nn.h"
#include "util/logging.h"

namespace dssddi::io {
namespace {

// Version 2 added ms_explainer; version-1 files load with the default
// closest-truss-community explainer. Version 3 appended the int8
// quantized-MLP sections; older files load fine and rebuild the int8
// companions from the float weights (deterministically, so rebuilt and
// shipped quantizations score identical bits).
constexpr uint32_t kBundleVersion = 3;

FrozenMlp FreezeMlp(const tensor::Mlp& mlp) {
  FrozenMlp frozen;
  frozen.layers.reserve(mlp.layers().size());
  for (const auto& layer : mlp.layers()) {
    FrozenMlp::Layer out;
    out.weight = layer.weight().value();
    out.bias = layer.bias().value();
    out.activation = static_cast<int>(layer.activation());
    frozen.layers.push_back(std::move(out));
  }
  return frozen;
}

void WriteFrozenMlp(BinaryWriter& writer, const FrozenMlp& mlp) {
  writer.WriteU32(static_cast<uint32_t>(mlp.layers.size()));
  for (const auto& layer : mlp.layers) {
    WriteMatrix(writer, layer.weight);
    WriteMatrix(writer, layer.bias);
    writer.WriteI32(layer.activation);
  }
}

bool ReadFrozenMlp(BinaryReader& reader, FrozenMlp* mlp) {
  const uint32_t num_layers = reader.ReadU32();
  if (!reader.ok() || num_layers > 64) {
    reader.Fail();
    return false;
  }
  // A reused destination must not keep a previous model's int8
  // companion — it would silently score int8 with stale weights.
  mlp->quantized.layers.clear();
  mlp->layers.assign(num_layers, {});
  for (auto& layer : mlp->layers) {
    if (!ReadMatrix(reader, &layer.weight)) return false;
    if (!ReadMatrix(reader, &layer.bias)) return false;
    layer.activation = reader.ReadI32();
    if (!reader.ok() || layer.activation < 0 || layer.activation > 4) {
      reader.Fail();
      return false;
    }
    if (layer.bias.rows() != 1 || layer.bias.cols() != layer.weight.cols()) {
      reader.Fail();
      return false;
    }
  }
  return true;
}

// Nearest-centroid treatment row, matching MdModule::TreatmentRow.
int NearestCluster(const tensor::Matrix& centroids, const float* features) {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int c = 0; c < centroids.rows(); ++c) {
    double dist = 0.0;
    const float* centroid = centroids.RowPtr(c);
    for (int j = 0; j < centroids.cols(); ++j) {
      const double d = static_cast<double>(features[j]) - centroid[j];
      dist += d * d;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

tensor::Matrix FrozenMlp::Forward(const tensor::Matrix& x) const {
  return Forward(x, tensor::kernels::ActiveQuantMode());
}

tensor::Matrix FrozenMlp::Forward(const tensor::Matrix& x,
                                  tensor::kernels::QuantMode mode) const {
  // One fused kernel pass per layer: the bias add and activation ride
  // the accumulation epilogue, so nothing is allocated beyond the layer
  // output itself. On the float path the arithmetic order matches the
  // old MatMul -> AddRowBroadcast -> activate chain, hence bit-identical
  // on the reference backend.
  //
  // Under int8, each wide layer dynamically quantizes its input rows
  // (group-wise, row-local) and runs the fused int8 kernel; layers
  // narrower than kQuantMinColumns (the logit head) stay float — a
  // quantized GEMV cannot amortize the activation-quantization pass and
  // its precision gates the final ranking. The policy depends only on
  // layer shape, so it is deterministic across hosts and reloads.
  const bool use_int8 = mode == tensor::kernels::QuantMode::kInt8 &&
                        quantized.layers.size() == layers.size() &&
                        !layers.empty();
  // The timing shim attributes kernel nanoseconds to whatever trace
  // window the serving layer opened on this thread; without an open
  // window it is a null-check per layer. The int8 branch below bypasses
  // GemmBackend entirely, so it carries its own ScopedKernelTimer
  // (covering the activation-quantization pass too — that work exists
  // only because the kernel is quantized, so it is kernel time).
  const obs::TimedGemmBackend gemm(tensor::kernels::ActiveBackend());
  tensor::kernels::QuantizedRows rows;  // reused across quantized layers
  tensor::Matrix h;
  const tensor::Matrix* cur = &x;  // no copy of the input row block
  for (size_t li = 0; li < layers.size(); ++li) {
    const Layer& layer = layers[li];
    DSSDDI_CHECK(cur->cols() == layer.weight.rows())
        << "frozen layer expects " << layer.weight.rows() << " features, got "
        << cur->cols();
    tensor::Matrix next(cur->rows(), layer.weight.cols());
    if (use_int8 &&
        layer.weight.cols() >= tensor::kernels::kQuantMinColumns) {
      const QuantizedMlp::Layer& q = quantized.layers[li];
      obs::ScopedKernelTimer kernel_timer;
      tensor::kernels::QuantizeRowsSymmetric(cur->ReadPtr(), cur->rows(),
                                             cur->cols(), &rows);
      tensor::kernels::QGemmBiasAct(
          rows, q.weights, q.bias.ReadPtr(), next.data().data(),
          static_cast<tensor::kernels::EpilogueActivation>(q.activation));
    } else {
      gemm.GemmBiasAct(
          cur->rows(), cur->cols(), layer.weight.cols(), cur->ReadPtr(),
          layer.weight.ReadPtr(), layer.bias.ReadPtr(),
          next.data().data(),
          static_cast<tensor::kernels::EpilogueActivation>(layer.activation));
    }
    h = std::move(next);
    cur = &h;
  }
  if (layers.empty()) return x;
  return h;
}

void FrozenMlp::BuildQuantized() { quantized = QuantizeMlp(*this); }

tensor::kernels::QuantMode InferenceBundle::EffectiveQuantMode() const {
  if (quantization == kQuantizeAuto) return tensor::kernels::ActiveQuantMode();
  return static_cast<tensor::kernels::QuantMode>(quantization);
}

void InferenceBundle::EnsureQuantized() {
  if (patient_fc.quantized.empty()) patient_fc.BuildQuantized();
  if (decoder.quantized.empty()) decoder.BuildQuantized();
}

tensor::Matrix InferenceBundle::PredictScores(const tensor::Matrix& x) const {
  DSSDDI_CHECK(!final_drug_reps.empty()) << "bundle has no drug representations";
  DSSDDI_CHECK(x.cols() == cluster_centroids.cols())
      << "feature width " << x.cols() << " != trained width "
      << cluster_centroids.cols();
  const tensor::kernels::QuantMode mode = EffectiveQuantMode();
  const int num_patients = x.rows();
  const int v_count = num_drugs();
  const tensor::Matrix h_patients = patient_fc.Forward(x, mode);

  const int interaction_dim = mlp_decoder ? hidden_dim : 1;
  tensor::Matrix decoder_input(num_patients * v_count, interaction_dim + 1);
  for (int i = 0; i < num_patients; ++i) {
    const int cluster = NearestCluster(cluster_centroids, x.RowPtr(i));
    const float* treatment = cluster_treatment.RowPtr(cluster);
    const float* hp = h_patients.RowPtr(i);
    for (int v = 0; v < v_count; ++v) {
      float* row = decoder_input.RowPtr(i * v_count + v);
      const float* hd = final_drug_reps.RowPtr(v);
      if (mlp_decoder) {
        for (int j = 0; j < hidden_dim; ++j) row[j] = hp[j] * hd[j];
      } else {
        double acc = 0.0;
        for (int j = 0; j < hidden_dim; ++j) acc += static_cast<double>(hp[j]) * hd[j];
        row[0] = static_cast<float>(acc);
      }
      row[interaction_dim] = use_treatment_feature ? treatment[v] : 0.0f;
    }
  }
  const tensor::Matrix logits = decoder.Forward(decoder_input, mode);
  tensor::Matrix scores(num_patients, v_count);
  for (int i = 0; i < num_patients; ++i) {
    for (int v = 0; v < v_count; ++v) {
      scores.At(i, v) = 1.0f / (1.0f + std::exp(-logits.At(i * v_count + v, 0)));
    }
  }
  return scores;
}

core::Suggestion InferenceBundle::Suggest(const tensor::Matrix& x, int k) const {
  tensor::Matrix first_row(1, x.cols());
  std::copy(x.RowPtr(0), x.RowPtr(0) + x.cols(), first_row.RowPtr(0));
  const tensor::Matrix scores = PredictScores(first_row);

  core::Suggestion suggestion;
  suggestion.drugs = core::TopKDrugs(scores, 0, k);
  suggestion.scores.reserve(suggestion.drugs.size());
  for (int d : suggestion.drugs) suggestion.scores.push_back(scores.At(0, d));
  // A v4 bundle carries its interaction skeleton as a CSR view, so the
  // explainer never re-sorts the DDI edges; heap bundles derive it here
  // exactly as before.
  const core::MsModule ms =
      has_ms_skeleton
          ? core::MsModule(ddi, ms_skeleton, ms_alpha,
                           static_cast<core::ExplainerKind>(ms_explainer))
          : core::MsModule(ddi, ms_alpha,
                           static_cast<core::ExplainerKind>(ms_explainer));
  suggestion.explanation = ms.Explain(suggestion.drugs);
  return suggestion;
}

InferenceBundle ExtractInferenceBundle(const core::DssddiSystem& system,
                                       const data::SuggestionDataset& dataset) {
  const core::MdModule* md = system.md_module();
  DSSDDI_CHECK(md != nullptr) << "ExtractInferenceBundle before Fit";

  InferenceBundle bundle;
  bundle.display_name = system.name();
  bundle.patient_fc = FreezeMlp(md->patient_fc());
  bundle.decoder = FreezeMlp(md->decoder());
  bundle.final_drug_reps = md->DrugRepresentations();
  bundle.cluster_centroids = md->cluster_centroids();
  bundle.cluster_treatment = md->cluster_treatment();
  bundle.ddi = dataset.ddi;
  bundle.drug_names = dataset.drug_names;
  bundle.mlp_decoder = md->config().decoder == core::MdDecoder::kMlp;
  bundle.use_treatment_feature = md->config().use_treatment_feature;
  bundle.hidden_dim = md->config().hidden_dim;
  bundle.ms_alpha = system.config().ms_alpha;
  bundle.ms_explainer = static_cast<int>(system.config().ms_explainer);
  bundle.EnsureQuantized();
  return bundle;
}

Status SaveInferenceBundle(const std::string& path, const InferenceBundle& bundle) {
  BinaryWriter writer;
  writer.WriteString(bundle.display_name);
  WriteFrozenMlp(writer, bundle.patient_fc);
  WriteFrozenMlp(writer, bundle.decoder);
  WriteMatrix(writer, bundle.final_drug_reps);
  WriteMatrix(writer, bundle.cluster_centroids);
  WriteMatrix(writer, bundle.cluster_treatment);
  WriteSignedGraph(writer, bundle.ddi);
  WriteStringVector(writer, bundle.drug_names);
  writer.WriteU8(bundle.mlp_decoder ? 1 : 0);
  writer.WriteU8(bundle.use_treatment_feature ? 1 : 0);
  writer.WriteI32(bundle.hidden_dim);
  writer.WriteF64(bundle.ms_alpha);
  writer.WriteU8(static_cast<uint8_t>(bundle.ms_explainer));
  // Version 3: the pre-quantized int8 MLPs ride along so a serving host
  // flips to int8 without re-deriving anything. Saving a hand-assembled
  // bundle that was never quantized writes the sections empty; the
  // loader rebuilds them from the float weights instead.
  const bool has_quantized =
      !bundle.patient_fc.quantized.empty() && !bundle.decoder.quantized.empty();
  writer.WriteU8(has_quantized ? 1 : 0);
  if (has_quantized) {
    WriteQuantizedMlp(writer, bundle.patient_fc.quantized);
    WriteQuantizedMlp(writer, bundle.decoder.quantized);
  }
  return WriteFramedFile(path, kFormatInferenceBundle, kBundleVersion, writer.buffer());
}

namespace {

// The historical framed-file loader: deserializes every byte onto the
// heap through BinaryReader. Kept as the v3 path of the magic dispatch
// in LoadInferenceBundle below.
Status LoadInferenceBundleV3(const std::string& path, InferenceBundle* bundle) {
  std::string payload;
  uint32_t version = 0;
  if (Status status = ReadFramedFile(path, kFormatInferenceBundle, kBundleVersion,
                                     &payload, &version);
      !status.ok) {
    return status;
  }
  BinaryReader reader(payload);
  bundle->display_name = reader.ReadString();
  if (!ReadFrozenMlp(reader, &bundle->patient_fc)) {
    return Status::Error("malformed patient encoder: " + path);
  }
  if (!ReadFrozenMlp(reader, &bundle->decoder)) {
    return Status::Error("malformed decoder: " + path);
  }
  if (!ReadMatrix(reader, &bundle->final_drug_reps) ||
      !ReadMatrix(reader, &bundle->cluster_centroids) ||
      !ReadMatrix(reader, &bundle->cluster_treatment) ||
      !ReadSignedGraph(reader, &bundle->ddi) ||
      !ReadStringVector(reader, &bundle->drug_names)) {
    return Status::Error("malformed bundle payload: " + path);
  }
  bundle->mlp_decoder = reader.ReadU8() != 0;
  bundle->use_treatment_feature = reader.ReadU8() != 0;
  bundle->hidden_dim = reader.ReadI32();
  bundle->ms_alpha = reader.ReadF64();
  bundle->ms_explainer = version >= 2 ? reader.ReadU8() : 0;
  bool has_quantized = false;
  if (version >= 3 && reader.ok()) has_quantized = reader.ReadU8() != 0;
  if (has_quantized &&
      (!ReadQuantizedMlp(reader, &bundle->patient_fc.quantized) ||
       !ReadQuantizedMlp(reader, &bundle->decoder.quantized))) {
    return Status::Error("malformed quantized section: " + path);
  }
  if (!reader.ok() || reader.remaining() != 0) {
    return Status::Error("malformed bundle payload: " + path);
  }
  if (Status status = ValidateLoadedBundle(*bundle, path, has_quantized);
      !status.ok) {
    return status;
  }
  bundle->EnsureQuantized();
  return Status::Ok();
}

// First 4 bytes of the file as a little-endian u32; 0 (matching no
// format) when the file is missing or shorter — the v3 loader then
// reports its canonical error for those cases, keeping failure messages
// stable across the dispatch.
uint32_t PeekFileMagic(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  unsigned char bytes[4];
  const size_t got = std::fread(bytes, 1, sizeof bytes, f);
  std::fclose(f);
  if (got != sizeof bytes) return 0;
  return static_cast<uint32_t>(bytes[0]) | (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) |
         (static_cast<uint32_t>(bytes[3]) << 24);
}

}  // namespace

Status ValidateLoadedBundle(const InferenceBundle& bundle,
                            const std::string& path, bool has_quantized) {
  if (bundle.ms_explainer < 0 || bundle.ms_explainer > 1) {
    return Status::Error("malformed bundle payload: " + path);
  }
  // Cross-field consistency so a loaded bundle cannot index out of range.
  if (bundle.ddi.num_vertices() != bundle.num_drugs() ||
      bundle.cluster_treatment.cols() != bundle.num_drugs() ||
      bundle.final_drug_reps.cols() != bundle.hidden_dim ||
      (!bundle.drug_names.empty() &&
       static_cast<int>(bundle.drug_names.size()) != bundle.num_drugs())) {
    return Status::Error("inconsistent bundle dimensions: " + path);
  }
  // The byte-level checks in each loader (section length prefixes on v3,
  // extent/alignment validation on v4) catch corruption; these shape
  // checks catch semantically impossible bundles that would otherwise
  // abort (layer-width CHECK) or read out of bounds (a decoder emitting
  // zero columns) at scoring time. Untrusted files must fail here, at
  // load, with a Status.
  const auto chain_ok = [](const FrozenMlp& mlp, int in_width, int out_width) {
    int width = in_width;
    for (const auto& layer : mlp.layers) {
      if (layer.weight.rows() != width) return false;
      width = layer.weight.cols();
    }
    return out_width < 0 || width == out_width;
  };
  const int feature_width = bundle.cluster_centroids.cols();
  const int interaction_dim = bundle.mlp_decoder ? bundle.hidden_dim : 1;
  if (!chain_ok(bundle.patient_fc, feature_width, bundle.hidden_dim) ||
      !chain_ok(bundle.decoder, interaction_dim + 1, 1)) {
    return Status::Error("inconsistent bundle layer shapes: " + path);
  }
  // A shipped quantized section must describe exactly the float layers
  // it rides with; on any disagreement (or for pre-v3 files) the caller
  // rebuilds from the float weights — same deterministic bits either way.
  const auto quantized_matches = [](const FrozenMlp& mlp) {
    if (mlp.quantized.layers.size() != mlp.layers.size()) return false;
    for (size_t i = 0; i < mlp.layers.size(); ++i) {
      const auto& f = mlp.layers[i];
      const auto& q = mlp.quantized.layers[i];
      if (q.weights.k != f.weight.rows() || q.weights.n != f.weight.cols() ||
          q.activation != f.activation) {
        return false;
      }
    }
    return true;
  };
  if (has_quantized && (!quantized_matches(bundle.patient_fc) ||
                        !quantized_matches(bundle.decoder))) {
    return Status::Error("quantized section disagrees with float layers: " + path);
  }
  return Status::Ok();
}

Status LoadInferenceBundle(const std::string& path, InferenceBundle* bundle) {
  const auto start = std::chrono::steady_clock::now();
  // A reused destination (e.g. /admin/reload) must not keep a previous
  // model's state — stale views or a stale mapping would be worse than
  // stale floats. Only the runtime quantization override survives.
  InferenceBundle fresh;
  fresh.quantization = bundle->quantization;
  *bundle = std::move(fresh);

  const bool is_v4 = PeekFileMagic(path) == kBundleV4Magic;
  if (Status status = is_v4 ? LoadInferenceBundleV4(path, bundle)
                            : LoadInferenceBundleV3(path, bundle);
      !status.ok) {
    return status;
  }
  bundle->format_version = is_v4 ? 4 : 3;
  bundle->load_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  return Status::Ok();
}

}  // namespace dssddi::io
