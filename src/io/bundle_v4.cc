#include "io/bundle_v4.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/signed_graph.h"
#include "io/inference_bundle.h"
#include "io/mmap_file.h"
#include "io/serialize.h"
#include "tensor/kernels/qgemm.h"
#include "tensor/matrix.h"
#include "util/logging.h"

namespace dssddi::io {
namespace {

// The format is little-endian and the loader hands out in-place views of
// the mapped bytes, so a big-endian host would need a byte-swapping copy
// path that does not exist. Fail the build there instead of the loads.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "bundle v4 is a little-endian in-place format");
static_assert(sizeof(int) == 4, "graph CSR views reinterpret i32 as int");

constexpr uint64_t kHeaderBytes = 32;
constexpr uint64_t kSectionEntryBytes = 32;
constexpr uint32_t kMaxSections = 64;
constexpr uint32_t kMaxLayers = 64;            // matches the v3 codecs
constexpr uint32_t kMaxDim = 1u << 27;         // per-axis element cap
constexpr uint32_t kMaxGraphCount = 1u << 27;  // vertices / edges cap

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

// ---------------------------------------------------------------------
// Writer side. Sections are assembled as byte strings (descriptor first,
// then 32-byte-aligned arrays), so offsets inside a section are known
// before the file layout is; the file layout then just places each
// section on the next page boundary.
// ---------------------------------------------------------------------

void AppendRaw(std::string* s, const void* data, size_t bytes) {
  s->append(static_cast<const char*>(data), bytes);
}
void AppendU32(std::string* s, uint32_t v) { AppendRaw(s, &v, sizeof v); }
void AppendI32(std::string* s, int32_t v) { AppendRaw(s, &v, sizeof v); }
void AppendU64(std::string* s, uint64_t v) { AppendRaw(s, &v, sizeof v); }
void AppendF32(std::string* s, float v) { AppendRaw(s, &v, sizeof v); }
void PadTo(std::string* s, uint64_t alignment) {
  s->resize(AlignUp(s->size(), alignment), '\0');
}
// Appends an array at the next 32-byte boundary, returning its
// section-relative offset.
uint64_t AppendArray(std::string* s, const void* data, size_t bytes) {
  PadTo(s, kBundleV4ArrayAlign);
  const uint64_t offset = s->size();
  AppendRaw(s, data, bytes);
  return offset;
}

std::string BuildMetaSection(const InferenceBundle& bundle) {
  BinaryWriter writer;
  writer.WriteString(bundle.display_name);
  writer.WriteU8(bundle.mlp_decoder ? 1 : 0);
  writer.WriteU8(bundle.use_treatment_feature ? 1 : 0);
  writer.WriteI32(bundle.hidden_dim);
  writer.WriteF64(bundle.ms_alpha);
  writer.WriteU8(static_cast<uint8_t>(bundle.ms_explainer));
  WriteStringVector(writer, bundle.drug_names);
  return writer.buffer();
}

std::string BuildMatrixSection(const tensor::Matrix& m) {
  std::string s;
  AppendU32(&s, static_cast<uint32_t>(m.rows()));
  AppendU32(&s, static_cast<uint32_t>(m.cols()));
  AppendArray(&s, m.ReadPtr(), m.size() * sizeof(float));
  return s;
}

std::string BuildMlpSection(const FrozenMlp& mlp) {
  // Descriptor: u32 layer count + 28 bytes per layer; computing the
  // array offsets needs the descriptor size, so lay the arrays out
  // virtually first, then emit descriptor and arrays to match.
  const size_t num_layers = mlp.layers.size();
  const uint64_t descriptor_bytes = 4 + 28 * num_layers;
  std::vector<std::pair<uint64_t, uint64_t>> offsets(num_layers);
  uint64_t cursor = AlignUp(descriptor_bytes, kBundleV4ArrayAlign);
  for (size_t i = 0; i < num_layers; ++i) {
    const auto& layer = mlp.layers[i];
    offsets[i].first = cursor;
    cursor = AlignUp(cursor + layer.weight.size() * sizeof(float),
                     kBundleV4ArrayAlign);
    offsets[i].second = cursor;
    cursor = AlignUp(cursor + layer.bias.size() * sizeof(float),
                     kBundleV4ArrayAlign);
  }
  std::string s;
  AppendU32(&s, static_cast<uint32_t>(num_layers));
  for (size_t i = 0; i < num_layers; ++i) {
    const auto& layer = mlp.layers[i];
    AppendU32(&s, static_cast<uint32_t>(layer.weight.rows()));
    AppendU32(&s, static_cast<uint32_t>(layer.weight.cols()));
    AppendI32(&s, layer.activation);
    AppendU64(&s, offsets[i].first);
    AppendU64(&s, offsets[i].second);
  }
  for (size_t i = 0; i < num_layers; ++i) {
    const auto& layer = mlp.layers[i];
    const uint64_t w_off =
        AppendArray(&s, layer.weight.ReadPtr(), layer.weight.size() * 4);
    DSSDDI_CHECK(w_off == offsets[i].first);
    const uint64_t b_off =
        AppendArray(&s, layer.bias.ReadPtr(), layer.bias.size() * 4);
    DSSDDI_CHECK(b_off == offsets[i].second);
  }
  return s;
}

std::string BuildQuantSection(const QuantizedMlp& mlp) {
  // Unlike the v3 codec (which stores layout-agnostic column-major int8
  // and repacks on every load), v4 stores the packed tile layout the
  // kernel consumes directly — it is deterministic and ISA-independent
  // (see qgemm.h), so mapped weights serve with zero repacking.
  const size_t num_layers = mlp.layers.size();
  const uint64_t descriptor_bytes = 4 + 48 * num_layers;
  struct LayerOffsets {
    uint64_t data, scales, corrections, bias;
  };
  std::vector<LayerOffsets> offsets(num_layers);
  uint64_t cursor = AlignUp(descriptor_bytes, kBundleV4ArrayAlign);
  auto place = [&cursor](uint64_t bytes) {
    const uint64_t at = cursor;
    cursor = AlignUp(cursor + bytes, kBundleV4ArrayAlign);
    return at;
  };
  for (size_t i = 0; i < num_layers; ++i) {
    const auto& w = mlp.layers[i].weights;
    offsets[i].data = place(w.packed_size());
    offsets[i].scales = place(static_cast<uint64_t>(w.n_padded) * 4);
    offsets[i].corrections =
        place(static_cast<uint64_t>(w.num_groups()) * w.n_padded * 4);
    offsets[i].bias = place(static_cast<uint64_t>(w.n) * 4);
  }
  std::string s;
  AppendU32(&s, static_cast<uint32_t>(num_layers));
  for (size_t i = 0; i < num_layers; ++i) {
    const auto& layer = mlp.layers[i];
    const auto& w = layer.weights;
    AppendU32(&s, static_cast<uint32_t>(w.k));
    AppendU32(&s, static_cast<uint32_t>(w.n));
    AppendI32(&s, layer.activation);
    AppendF32(&s, layer.max_abs_error);
    AppendU64(&s, offsets[i].data);
    AppendU64(&s, offsets[i].scales);
    AppendU64(&s, offsets[i].corrections);
    AppendU64(&s, offsets[i].bias);
  }
  for (size_t i = 0; i < num_layers; ++i) {
    const auto& layer = mlp.layers[i];
    const auto& w = layer.weights;
    DSSDDI_CHECK(AppendArray(&s, w.packed_data(), w.packed_size()) ==
                 offsets[i].data);
    DSSDDI_CHECK(AppendArray(&s, w.scale_data(),
                             static_cast<size_t>(w.n_padded) * 4) ==
                 offsets[i].scales);
    DSSDDI_CHECK(
        AppendArray(&s, w.correction_data(),
                    static_cast<size_t>(w.num_groups()) * w.n_padded * 4) ==
        offsets[i].corrections);
    DSSDDI_CHECK(AppendArray(&s, layer.bias.ReadPtr(),
                             static_cast<size_t>(w.n) * 4) ==
                 offsets[i].bias);
  }
  return s;
}

std::string BuildGraphSection(const InferenceBundle& bundle) {
  const graph::SignedGraph& ddi = bundle.ddi;
  const graph::Graph skeleton = bundle.Skeleton();
  const int v_count = ddi.num_vertices();
  const int signed_edges = ddi.num_edges();
  const int skeleton_edges = skeleton.num_edges();

  const uint64_t descriptor_bytes = 16 + 5 * 8;
  uint64_t cursor = AlignUp(descriptor_bytes, kBundleV4ArrayAlign);
  auto place = [&cursor](uint64_t bytes) {
    const uint64_t at = cursor;
    cursor = AlignUp(cursor + bytes, kBundleV4ArrayAlign);
    return at;
  };
  const uint64_t signed_off = place(static_cast<uint64_t>(signed_edges) * 12);
  const uint64_t endpoints_off =
      place(static_cast<uint64_t>(skeleton_edges) * 8);
  const uint64_t offsets_off = place(static_cast<uint64_t>(v_count + 1) * 4);
  const uint64_t neighbors_off =
      place(static_cast<uint64_t>(skeleton_edges) * 8);
  const uint64_t edge_ids_off =
      place(static_cast<uint64_t>(skeleton_edges) * 8);

  std::string s;
  AppendU32(&s, static_cast<uint32_t>(v_count));
  AppendU32(&s, static_cast<uint32_t>(signed_edges));
  AppendU32(&s, static_cast<uint32_t>(skeleton_edges));
  AppendU32(&s, 0);
  AppendU64(&s, signed_off);
  AppendU64(&s, endpoints_off);
  AppendU64(&s, offsets_off);
  AppendU64(&s, neighbors_off);
  AppendU64(&s, edge_ids_off);

  PadTo(&s, kBundleV4ArrayAlign);
  DSSDDI_CHECK(s.size() == signed_off);
  for (const auto& edge : ddi.edges()) {
    AppendI32(&s, edge.u);
    AppendI32(&s, edge.v);
    AppendI32(&s, static_cast<int32_t>(edge.sign));
  }
  PadTo(&s, kBundleV4ArrayAlign);
  DSSDDI_CHECK(s.size() == endpoints_off);
  for (int e = 0; e < skeleton_edges; ++e) {
    const auto [u, v] = skeleton.Edge(e);
    AppendI32(&s, u);
    AppendI32(&s, v);
  }
  DSSDDI_CHECK(AppendArray(&s, skeleton.adj_offsets_data(),
                           static_cast<size_t>(v_count + 1) * 4) ==
               offsets_off);
  DSSDDI_CHECK(AppendArray(&s, skeleton.adj_neighbors_data(),
                           static_cast<size_t>(skeleton_edges) * 8) ==
               neighbors_off);
  DSSDDI_CHECK(AppendArray(&s, skeleton.adj_edge_ids_data(),
                           static_cast<size_t>(skeleton_edges) * 8) ==
               edge_ids_off);
  return s;
}

// ---------------------------------------------------------------------
// Loader side: bounds-checked descriptor parsing over the mapped bytes.
// Descriptors and metadata are tiny and get copied/decoded; the arrays
// never do — they are validated for extent + alignment and used in
// place.
// ---------------------------------------------------------------------

/// Little-endian cursor over a byte range with a sticky failure flag —
/// the mapped-memory analogue of BinaryReader, without the copy.
struct RawReader {
  const unsigned char* base = nullptr;
  uint64_t size = 0;
  uint64_t pos = 0;
  bool ok = true;

  bool Take(void* out, uint64_t bytes) {
    if (!ok || size - pos < bytes || pos > size) {
      ok = false;
      return false;
    }
    std::memcpy(out, base + pos, bytes);
    pos += bytes;
    return true;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Take(&v, 4);
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Take(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Take(&v, 8);
    return v;
  }
  float F32() {
    float v = 0;
    Take(&v, 4);
    return v;
  }
};

struct SectionRef {
  uint32_t type = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
  const unsigned char* data = nullptr;
};

/// Validates header + section table against the actual mapping: magic,
/// versions, recorded vs. real file size, per-entry page alignment and
/// extents (overflow-safe), duplicate types, pairwise overlap, and the
/// required-section set. O(sections) — touches only the first page.
Status ParseSectionTable(const MmapFile& mapping, const std::string& path,
                         std::vector<SectionRef>* out) {
  const auto malformed = [&path](const std::string& what) {
    return Status::Error("malformed v4 bundle (" + what + "): " + path);
  };
  if (mapping.size() < kHeaderBytes) return malformed("truncated header");
  RawReader r{mapping.data(), mapping.size()};
  const uint32_t magic = r.U32();
  const uint32_t header_version = r.U32();
  const uint32_t format_id = r.U32();
  const uint32_t bundle_version = r.U32();
  const uint64_t file_size = r.U64();
  const uint32_t section_count = r.U32();
  r.U32();  // reserved
  if (magic != kBundleV4Magic) return malformed("bad magic");
  if (header_version != kBundleV4HeaderVersion) {
    return malformed("unsupported header version");
  }
  if (format_id != kFormatInferenceBundle) {
    return malformed("not an inference bundle");
  }
  if (bundle_version != kBundleV4Version) {
    return malformed("unsupported bundle version");
  }
  if (file_size != mapping.size()) {
    return malformed("recorded size disagrees with file");
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return malformed("implausible section count");
  }
  const uint64_t table_end =
      kHeaderBytes + static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (table_end > mapping.size()) return malformed("truncated section table");

  out->clear();
  out->reserve(section_count);
  uint64_t seen_types = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionRef sec;
    sec.type = r.U32();
    r.U32();  // reserved
    sec.offset = r.U64();
    sec.length = r.U64();
    sec.checksum = r.U64();
    if (!r.ok) return malformed("truncated section table");
    if (sec.type < kSectionMeta || sec.type > kSectionGraph) {
      return malformed("unknown section type");
    }
    if (seen_types & (1u << sec.type)) return malformed("duplicate section");
    seen_types |= 1u << sec.type;
    if (sec.offset % kBundleV4SectionAlign != 0) {
      return malformed("misaligned section offset");
    }
    if (sec.offset < table_end || sec.length > mapping.size() ||
        sec.offset > mapping.size() - sec.length) {
      return malformed("section extends past end of file");
    }
    sec.data = mapping.data() + sec.offset;
    out->push_back(sec);
  }
  std::vector<const SectionRef*> by_offset;
  by_offset.reserve(out->size());
  for (const SectionRef& sec : *out) by_offset.push_back(&sec);
  std::sort(by_offset.begin(), by_offset.end(),
            [](const SectionRef* a, const SectionRef* b) {
              return a->offset < b->offset;
            });
  uint64_t prev_end = table_end;
  for (const SectionRef* sec : by_offset) {
    if (sec->offset < prev_end) return malformed("overlapping sections");
    prev_end = sec->offset + sec->length;
  }
  for (uint32_t required : {kSectionMeta, kSectionPatientMlp,
                            kSectionDecoderMlp, kSectionDrugReps,
                            kSectionCentroids, kSectionTreatment,
                            kSectionGraph}) {
    if (!(seen_types & (1u << required))) {
      return malformed("missing required section");
    }
  }
  const bool has_qp = (seen_types & (1u << kSectionQuantPatient)) != 0;
  const bool has_qd = (seen_types & (1u << kSectionQuantDecoder)) != 0;
  if (has_qp != has_qd) {
    return malformed("quantized sections must come in pairs");
  }
  return Status::Ok();
}

/// In-place array inside a section: checks 32-byte alignment (relative
/// to the page-aligned section start, so absolute alignment follows)
/// and the extent, overflow-safe. Returns nullptr on violation.
template <typename T>
const T* SectionArray(const SectionRef& sec, uint64_t offset, uint64_t count) {
  if (offset % kBundleV4ArrayAlign != 0 || offset > sec.length ||
      (sec.length - offset) / sizeof(T) < count) {
    return nullptr;
  }
  return reinterpret_cast<const T*>(sec.data + offset);
}

bool ParseMetaSection(const SectionRef& sec, InferenceBundle* bundle) {
  // Metadata is a handful of strings and scalars — the one section that
  // is copied and decoded through the existing byte-checked codec.
  const std::string blob(reinterpret_cast<const char*>(sec.data), sec.length);
  BinaryReader reader(blob);
  bundle->display_name = reader.ReadString();
  bundle->mlp_decoder = reader.ReadU8() != 0;
  bundle->use_treatment_feature = reader.ReadU8() != 0;
  bundle->hidden_dim = reader.ReadI32();
  bundle->ms_alpha = reader.ReadF64();
  bundle->ms_explainer = reader.ReadU8();
  if (!ReadStringVector(reader, &bundle->drug_names)) return false;
  return reader.ok() && reader.remaining() == 0;
}

bool ParseMlpSection(const SectionRef& sec, FrozenMlp* mlp) {
  RawReader r{sec.data, sec.length};
  const uint32_t num_layers = r.U32();
  if (!r.ok || num_layers > kMaxLayers) return false;
  mlp->quantized.layers.clear();
  mlp->layers.assign(num_layers, {});
  for (auto& layer : mlp->layers) {
    const uint32_t rows = r.U32();
    const uint32_t cols = r.U32();
    layer.activation = r.I32();
    const uint64_t weight_off = r.U64();
    const uint64_t bias_off = r.U64();
    if (!r.ok || rows > kMaxDim || cols > kMaxDim || layer.activation < 0 ||
        layer.activation > 4) {
      return false;
    }
    const float* weight = SectionArray<float>(
        sec, weight_off, static_cast<uint64_t>(rows) * cols);
    const float* bias = SectionArray<float>(sec, bias_off, cols);
    if (weight == nullptr || bias == nullptr) return false;
    layer.weight = tensor::Matrix::FromView(static_cast<int>(rows),
                                            static_cast<int>(cols), weight);
    layer.bias = tensor::Matrix::FromView(1, static_cast<int>(cols), bias);
  }
  return true;
}

bool ParseMatrixSection(const SectionRef& sec, tensor::Matrix* out) {
  RawReader r{sec.data, sec.length};
  const uint32_t rows = r.U32();
  const uint32_t cols = r.U32();
  if (!r.ok || rows > kMaxDim || cols > kMaxDim) return false;
  const float* data = SectionArray<float>(sec, kBundleV4ArrayAlign,
                                          static_cast<uint64_t>(rows) * cols);
  if (data == nullptr) return false;
  *out = tensor::Matrix::FromView(static_cast<int>(rows),
                                  static_cast<int>(cols), data);
  return true;
}

bool ParseQuantSection(const SectionRef& sec, QuantizedMlp* mlp) {
  RawReader r{sec.data, sec.length};
  const uint32_t num_layers = r.U32();
  if (!r.ok || num_layers > kMaxLayers) return false;
  mlp->layers.assign(num_layers, {});
  for (auto& layer : mlp->layers) {
    const uint32_t k = r.U32();
    const uint32_t n = r.U32();
    layer.activation = r.I32();
    layer.max_abs_error = r.F32();
    const uint64_t data_off = r.U64();
    const uint64_t scales_off = r.U64();
    const uint64_t corrections_off = r.U64();
    const uint64_t bias_off = r.U64();
    if (!r.ok || k > kMaxDim || n > kMaxDim || layer.activation < 0 ||
        layer.activation > 4 || !std::isfinite(layer.max_abs_error) ||
        layer.max_abs_error < 0.0f) {
      return false;
    }
    auto& w = layer.weights;
    w.k = static_cast<int>(k);
    w.n = static_cast<int>(n);
    w.k_padded = tensor::kernels::QuantPaddedK(w.k);
    w.n_padded = tensor::kernels::QuantPaddedN(w.n);
    w.max_abs_error = layer.max_abs_error;
    w.data_view = SectionArray<signed char>(sec, data_off, w.packed_size());
    w.scales_view = SectionArray<float>(
        sec, scales_off, static_cast<uint64_t>(w.n_padded));
    w.corrections_view = SectionArray<int32_t>(
        sec, corrections_off,
        static_cast<uint64_t>(w.num_groups()) * w.n_padded);
    const float* bias =
        SectionArray<float>(sec, bias_off, static_cast<uint64_t>(w.n));
    if (w.data_view == nullptr || w.scales_view == nullptr ||
        w.corrections_view == nullptr || bias == nullptr) {
      return false;
    }
    // Scales feed fused multiply-adds directly; a NaN/negative scale is
    // the one corruption that cheap metadata checks can still catch
    // (the packed int8 payload is covered by the section checksums
    // verified in tooling/tests — scanning it here would be O(bytes)
    // and defeat the O(pages) load).
    for (int j = 0; j < w.n_padded; ++j) {
      if (!std::isfinite(w.scales_view[j]) || w.scales_view[j] < 0.0f) {
        return false;
      }
    }
    layer.bias = tensor::Matrix::FromView(1, w.n, bias);
  }
  return true;
}

bool ParseGraphSection(const SectionRef& sec, InferenceBundle* bundle,
                       std::string* error) {
  RawReader r{sec.data, sec.length};
  const uint32_t v_count = r.U32();
  const uint32_t signed_edges = r.U32();
  const uint32_t skeleton_edges = r.U32();
  r.U32();  // reserved
  const uint64_t signed_off = r.U64();
  const uint64_t endpoints_off = r.U64();
  const uint64_t offsets_off = r.U64();
  const uint64_t neighbors_off = r.U64();
  const uint64_t edge_ids_off = r.U64();
  if (!r.ok || v_count > kMaxGraphCount || signed_edges > kMaxGraphCount ||
      skeleton_edges > kMaxGraphCount) {
    *error = "graph descriptor out of range";
    return false;
  }
  const int32_t* triples = SectionArray<int32_t>(
      sec, signed_off, static_cast<uint64_t>(signed_edges) * 3);
  const int* endpoints = SectionArray<int>(
      sec, endpoints_off, static_cast<uint64_t>(skeleton_edges) * 2);
  const int* offsets =
      SectionArray<int>(sec, offsets_off, static_cast<uint64_t>(v_count) + 1);
  const int* neighbors = SectionArray<int>(
      sec, neighbors_off, static_cast<uint64_t>(skeleton_edges) * 2);
  const int* edge_ids = SectionArray<int>(
      sec, edge_ids_off, static_cast<uint64_t>(skeleton_edges) * 2);
  if (triples == nullptr || endpoints == nullptr || offsets == nullptr ||
      neighbors == nullptr || edge_ids == nullptr) {
    *error = "graph arrays out of bounds";
    return false;
  }

  // The signed DDI edge list is the one graph structure rebuilt on the
  // heap (SignOf needs its index); validation mirrors ReadSignedGraph.
  std::vector<graph::SignedEdge> edges;
  edges.reserve(signed_edges);
  for (uint32_t i = 0; i < signed_edges; ++i) {
    graph::SignedEdge edge;
    edge.u = triples[3 * i];
    edge.v = triples[3 * i + 1];
    const int32_t sign = triples[3 * i + 2];
    if (sign < -1 || sign > 1 || edge.u < 0 || edge.v < 0 ||
        edge.u >= static_cast<int>(v_count) ||
        edge.v >= static_cast<int>(v_count)) {
      *error = "signed edge out of range";
      return false;
    }
    edge.sign = static_cast<graph::EdgeSign>(sign);
    edges.push_back(edge);
  }
  bundle->ddi =
      graph::SignedGraph(static_cast<int>(v_count), std::move(edges));

  // FromCsrView re-checks every structural invariant of the mapped CSR
  // arrays; on top of that, prove the stored skeleton IS this DDI
  // graph's interaction skeleton: every stored edge is an interacting
  // pair, and every interacting pair is stored. Both directions plus
  // the enforced lexicographic edge order make the view bit-equivalent
  // to ddi.InteractionSkeleton() — same edge set, same edge ids — so
  // explanations cannot drift from the graph they cite.
  if (!graph::Graph::FromCsrView(static_cast<int>(v_count),
                                 static_cast<int>(skeleton_edges), endpoints,
                                 offsets, neighbors, edge_ids,
                                 &bundle->ms_skeleton, error)) {
    return false;
  }
  for (int e = 0; e < static_cast<int>(skeleton_edges); ++e) {
    const auto [u, v] = bundle->ms_skeleton.Edge(e);
    if (bundle->ddi.SignOf(u, v) == graph::EdgeSign::kNone) {
      *error = "skeleton edge without a DDI interaction";
      return false;
    }
  }
  for (const auto& edge : bundle->ddi.edges()) {
    if (edge.sign != graph::EdgeSign::kNone &&
        !bundle->ms_skeleton.HasEdge(edge.u, edge.v)) {
      *error = "DDI interaction missing from skeleton";
      return false;
    }
  }
  bundle->has_ms_skeleton = true;
  return true;
}

}  // namespace

Status SaveInferenceBundleV4(const std::string& path,
                             const InferenceBundle& bundle) {
  struct Section {
    uint32_t type;
    std::string bytes;
  };
  std::vector<Section> sections;
  sections.push_back({kSectionMeta, BuildMetaSection(bundle)});
  sections.push_back({kSectionPatientMlp, BuildMlpSection(bundle.patient_fc)});
  sections.push_back({kSectionDecoderMlp, BuildMlpSection(bundle.decoder)});
  sections.push_back({kSectionDrugReps,
                      BuildMatrixSection(bundle.final_drug_reps)});
  sections.push_back({kSectionCentroids,
                      BuildMatrixSection(bundle.cluster_centroids)});
  sections.push_back({kSectionTreatment,
                      BuildMatrixSection(bundle.cluster_treatment)});
  if (!bundle.patient_fc.quantized.empty() &&
      !bundle.decoder.quantized.empty()) {
    sections.push_back({kSectionQuantPatient,
                        BuildQuantSection(bundle.patient_fc.quantized)});
    sections.push_back({kSectionQuantDecoder,
                        BuildQuantSection(bundle.decoder.quantized)});
  }
  sections.push_back({kSectionGraph, BuildGraphSection(bundle)});

  const uint64_t table_end =
      kHeaderBytes + sections.size() * kSectionEntryBytes;
  std::vector<uint64_t> offsets(sections.size());
  uint64_t cursor = AlignUp(table_end, kBundleV4SectionAlign);
  for (size_t i = 0; i < sections.size(); ++i) {
    offsets[i] = cursor;
    cursor = AlignUp(cursor + sections[i].bytes.size(), kBundleV4SectionAlign);
  }
  const uint64_t file_size =
      offsets.back() + sections.back().bytes.size();

  std::string file;
  file.reserve(file_size);
  AppendU32(&file, kBundleV4Magic);
  AppendU32(&file, kBundleV4HeaderVersion);
  AppendU32(&file, kFormatInferenceBundle);
  AppendU32(&file, kBundleV4Version);
  AppendU64(&file, file_size);
  AppendU32(&file, static_cast<uint32_t>(sections.size()));
  AppendU32(&file, 0);
  for (size_t i = 0; i < sections.size(); ++i) {
    AppendU32(&file, sections[i].type);
    AppendU32(&file, 0);
    AppendU64(&file, offsets[i]);
    AppendU64(&file, sections[i].bytes.size());
    AppendU64(&file, Fnv1a64(sections[i].bytes));
  }
  for (size_t i = 0; i < sections.size(); ++i) {
    file.resize(offsets[i], '\0');
    file += sections[i].bytes;
  }
  DSSDDI_CHECK(file.size() == file_size);
  return WriteStringToFile(path, file);
}


Status LoadInferenceBundleV4(const std::string& path, InferenceBundle* bundle,
                             bool prefault) {
  auto mapping = std::make_shared<MmapFile>();
  if (Status status = MmapFile::Open(path, mapping.get(), prefault);
      !status.ok) {
    return status;
  }
  std::vector<SectionRef> sections;
  if (Status status = ParseSectionTable(*mapping, path, &sections);
      !status.ok) {
    return status;
  }
  // Pin the mapping on the bundle BEFORE building views into it, so even
  // a load that fails halfway leaves the bundle's pointers backed until
  // the caller discards it.
  bundle->mapping = std::move(mapping);

  const SectionRef* by_type[kSectionGraph + 1] = {};
  for (const SectionRef& sec : sections) by_type[sec.type] = &sec;
  const auto malformed = [&path](const std::string& what) {
    return Status::Error("malformed v4 bundle (" + what + "): " + path);
  };

  if (!ParseMetaSection(*by_type[kSectionMeta], bundle)) {
    return malformed("bad metadata section");
  }
  if (!ParseMlpSection(*by_type[kSectionPatientMlp], &bundle->patient_fc)) {
    return malformed("bad patient encoder section");
  }
  if (!ParseMlpSection(*by_type[kSectionDecoderMlp], &bundle->decoder)) {
    return malformed("bad decoder section");
  }
  if (!ParseMatrixSection(*by_type[kSectionDrugReps],
                          &bundle->final_drug_reps) ||
      !ParseMatrixSection(*by_type[kSectionCentroids],
                          &bundle->cluster_centroids) ||
      !ParseMatrixSection(*by_type[kSectionTreatment],
                          &bundle->cluster_treatment)) {
    return malformed("bad matrix section");
  }
  std::string graph_error;
  if (!ParseGraphSection(*by_type[kSectionGraph], bundle, &graph_error)) {
    return malformed("bad graph section: " + graph_error);
  }
  const bool has_quantized = by_type[kSectionQuantPatient] != nullptr;
  if (has_quantized) {
    if (!ParseQuantSection(*by_type[kSectionQuantPatient],
                           &bundle->patient_fc.quantized) ||
        !ParseQuantSection(*by_type[kSectionQuantDecoder],
                           &bundle->decoder.quantized)) {
      return malformed("bad quantized section");
    }
  }
  if (Status status = ValidateLoadedBundle(*bundle, path, has_quantized);
      !status.ok) {
    return status;
  }
  // A v4 file written without int8 companions (possible for a bundle
  // quantized with "none" pinned) rebuilds them from the mapped floats —
  // deterministic, so identical to a shipped section.
  bundle->EnsureQuantized();
  return Status::Ok();
}

Status VerifyBundleV4Checksums(const std::string& path) {
  MmapFile mapping;
  if (Status status = MmapFile::Open(path, &mapping); !status.ok) {
    return status;
  }
  std::vector<SectionRef> sections;
  if (Status status = ParseSectionTable(mapping, path, &sections);
      !status.ok) {
    return status;
  }
  for (const SectionRef& sec : sections) {
    const uint64_t actual = Fnv1a64(
        reinterpret_cast<const char*>(sec.data), sec.length);
    if (actual != sec.checksum) {
      return Status::Error("section checksum mismatch (type " +
                           std::to_string(sec.type) + "): " + path);
    }
  }
  return Status::Ok();
}

}  // namespace dssddi::io
