#include "io/quantized_mlp.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "io/inference_bundle.h"
#include "io/serialize.h"
#include "util/logging.h"

namespace dssddi::io {
namespace {

constexpr uint32_t kMaxQuantLayers = 64;
constexpr uint32_t kMaxQuantDim = 1u << 28;

void WriteLayer(BinaryWriter& writer, const QuantizedMlp::Layer& layer) {
  const auto& w = layer.weights;
  writer.WriteU32(static_cast<uint32_t>(w.k));
  writer.WriteU32(static_cast<uint32_t>(w.n));
  writer.WriteFloatArray(w.scale_data(), static_cast<size_t>(w.n));
  // Unpadded column-major int8 payload: k bytes per column. The kernel's
  // packed tile layout (and its zero-point correction table) is an
  // in-memory concern, rebuilt on load — so the file format survives
  // future microkernel layout changes.
  writer.WriteU32(static_cast<uint32_t>(w.k) * static_cast<uint32_t>(w.n));
  std::string bytes(static_cast<size_t>(w.k) * w.n, '\0');
  tensor::kernels::UnpackQuantizedWeights(
      w, reinterpret_cast<signed char*>(&bytes[0]));
  writer.WriteString(bytes);
  WriteMatrix(writer, layer.bias);
  writer.WriteI32(layer.activation);
  writer.WriteF32(layer.max_abs_error);
}

bool ReadLayer(BinaryReader& reader, QuantizedMlp::Layer* layer) {
  const uint32_t k = reader.ReadU32();
  const uint32_t n = reader.ReadU32();
  if (!reader.ok() || k > kMaxQuantDim || n > kMaxQuantDim) {
    reader.Fail();
    return false;
  }
  std::vector<float> scales;
  if (!reader.ReadFloatArray(&scales) || scales.size() != n) {
    reader.Fail();
    return false;
  }
  for (const float scale : scales) {
    if (!std::isfinite(scale) || scale < 0.0f) {
      reader.Fail();
      return false;
    }
  }
  const uint32_t declared = reader.ReadU32();
  const std::string bytes = reader.ReadString();
  // The int8 payload declares its element count twice (once explicitly,
  // once as the string length); any disagreement with k * n means the
  // section is corrupt, so reject instead of reinterpreting garbage.
  if (!reader.ok() || declared != k * n ||
      bytes.size() != static_cast<size_t>(k) * n) {
    reader.Fail();
    return false;
  }
  // Out-of-range magnitudes would break the kernel's saturation-freedom
  // proof, so a corrupt byte is rejected here, not scored with.
  for (const char b : bytes) {
    const auto v = static_cast<signed char>(b);
    if (v > tensor::kernels::kQuantWeightMax ||
        v < -tensor::kernels::kQuantWeightMax) {
      reader.Fail();
      return false;
    }
  }
  if (!ReadMatrix(reader, &layer->bias)) return false;
  layer->activation = reader.ReadI32();
  layer->max_abs_error = reader.ReadF32();
  if (!reader.ok() || layer->activation < 0 || layer->activation > 4 ||
      layer->bias.rows() != 1 ||
      layer->bias.cols() != static_cast<int>(n)) {
    reader.Fail();
    return false;
  }
  layer->weights = tensor::kernels::BuildQuantizedWeights(
      static_cast<int>(k), static_cast<int>(n),
      reinterpret_cast<const signed char*>(bytes.data()), scales.data(),
      layer->max_abs_error);
  return true;
}

}  // namespace

tensor::Matrix QuantizedMlp::Forward(const tensor::Matrix& x) const {
  tensor::kernels::QuantizedRows rows;
  tensor::Matrix h;
  const tensor::Matrix* cur = &x;
  for (const auto& layer : layers) {
    DSSDDI_CHECK(cur->cols() == layer.weights.k)
        << "quantized layer expects " << layer.weights.k << " features, got "
        << cur->cols();
    tensor::kernels::QuantizeRowsSymmetric(cur->ReadPtr(), cur->rows(),
                                           cur->cols(), &rows);
    tensor::Matrix next(cur->rows(), layer.weights.n);
    tensor::kernels::QGemmBiasAct(
        rows, layer.weights, layer.bias.ReadPtr(), next.data().data(),
        static_cast<tensor::kernels::EpilogueActivation>(layer.activation));
    h = std::move(next);
    cur = &h;
  }
  if (layers.empty()) return x;
  return h;
}

QuantizedMlp QuantizeMlp(const FrozenMlp& mlp) {
  QuantizedMlp quantized;
  quantized.layers.reserve(mlp.layers.size());
  for (const auto& layer : mlp.layers) {
    QuantizedMlp::Layer out;
    out.weights = tensor::kernels::QuantizeWeightsPerColumn(
        layer.weight.ReadPtr(), layer.weight.rows(), layer.weight.cols());
    out.bias = layer.bias;
    out.activation = layer.activation;
    out.max_abs_error = out.weights.max_abs_error;
    quantized.layers.push_back(std::move(out));
  }
  return quantized;
}

void WriteQuantizedMlp(BinaryWriter& writer, const QuantizedMlp& mlp) {
  // The whole section is length-prefixed so the loader can verify that
  // what it consumed agrees byte-for-byte with what was declared.
  BinaryWriter body;
  body.WriteU32(static_cast<uint32_t>(mlp.layers.size()));
  for (const auto& layer : mlp.layers) WriteLayer(body, layer);
  writer.WriteU32(static_cast<uint32_t>(body.size()));
  writer.WriteString(body.buffer());
}

bool ReadQuantizedMlp(BinaryReader& reader, QuantizedMlp* mlp) {
  const uint32_t declared_length = reader.ReadU32();
  const std::string body = reader.ReadString();
  if (!reader.ok() || body.size() != declared_length) {
    reader.Fail();
    return false;
  }
  BinaryReader section(body);
  const uint32_t num_layers = section.ReadU32();
  if (!section.ok() || num_layers > kMaxQuantLayers) {
    reader.Fail();
    return false;
  }
  mlp->layers.assign(num_layers, {});
  for (auto& layer : mlp->layers) {
    if (!ReadLayer(section, &layer)) {
      reader.Fail();
      return false;
    }
  }
  // Trailing bytes inside the section mean its declared length disagrees
  // with its actual content — corrupt, not just "extra".
  if (!section.ok() || section.remaining() != 0) {
    reader.Fail();
    return false;
  }
  return true;
}

}  // namespace dssddi::io
