#ifndef DSSDDI_IO_INFERENCE_BUNDLE_H_
#define DSSDDI_IO_INFERENCE_BUNDLE_H_

#include <string>
#include <vector>

#include "core/dssddi_system.h"
#include "data/dataset.h"
#include "graph/signed_graph.h"
#include "io/binary.h"
#include "tensor/matrix.h"

namespace dssddi::io {

/// Frozen MLP weights with a plain-Matrix forward pass. This mirrors
/// tensor::Mlp but carries no autograd machinery, so a trained model can
/// be deployed for scoring without the training stack.
struct FrozenMlp {
  struct Layer {
    tensor::Matrix weight;  // in_features x out_features
    tensor::Matrix bias;    // 1 x out_features
    int activation = 0;     // tensor::Activation as int, for serialization
  };
  std::vector<Layer> layers;

  /// y = act_L(...act_1(x W_1 + b_1)...W_L + b_L), matching Mlp::Forward.
  /// Each layer is one fused GemmBiasAct pass on the active GEMM backend
  /// (tensor/kernels/gemm_backend.h) — no intermediate bias/activation
  /// matrices are materialized.
  tensor::Matrix Forward(const tensor::Matrix& x) const;
};

/// Everything needed to run a trained DSSDDI system at inference time:
/// the MD module's frozen encoder/decoder, the propagated drug
/// representations (DDI embeddings already folded in), the treatment
/// cluster tables, and the DDI graph for Medical Support explanations.
///
/// The bundle round-trips through a single framed file, so a model trained
/// once on the full cohort can be shipped to a clinic host and queried
/// there (`PredictScores` / `Suggest`) bit-identically to the in-process
/// system it was extracted from.
struct InferenceBundle {
  std::string display_name;
  FrozenMlp patient_fc;
  FrozenMlp decoder;
  /// |V| x hidden final drug representations (h'_v, post layer-combination
  /// and DDI-embedding addition).
  tensor::Matrix final_drug_reps;
  tensor::Matrix cluster_centroids;   // k x d1
  tensor::Matrix cluster_treatment;   // k x |V|
  graph::SignedGraph ddi;
  std::vector<std::string> drug_names;
  bool mlp_decoder = true;            // MdDecoder::kMlp vs kDotLinear
  bool use_treatment_feature = true;
  int hidden_dim = 0;
  double ms_alpha = 0.5;
  /// core::ExplainerKind as int; carried so served explanations use the
  /// same subgraph backend the system was configured with.
  int ms_explainer = 0;

  int num_drugs() const { return final_drug_reps.rows(); }

  /// Sigmoid suggestion scores (|x| x |V|) for raw patient features.
  /// Bit-identical to MdModule::PredictScores on the same weights.
  tensor::Matrix PredictScores(const tensor::Matrix& x) const;

  /// Top-k suggestion with Medical Support explanation for one patient
  /// feature row (1 x d1 matrix or the first row of a larger matrix).
  core::Suggestion Suggest(const tensor::Matrix& x, int k) const;
};

/// Extracts a frozen inference bundle from a trained system. `dataset`
/// supplies the DDI graph and drug names shown in explanations.
InferenceBundle ExtractInferenceBundle(const core::DssddiSystem& system,
                                       const data::SuggestionDataset& dataset);

Status SaveInferenceBundle(const std::string& path, const InferenceBundle& bundle);
Status LoadInferenceBundle(const std::string& path, InferenceBundle* bundle);

}  // namespace dssddi::io

#endif  // DSSDDI_IO_INFERENCE_BUNDLE_H_
