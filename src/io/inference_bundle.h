#ifndef DSSDDI_IO_INFERENCE_BUNDLE_H_
#define DSSDDI_IO_INFERENCE_BUNDLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dssddi_system.h"
#include "data/dataset.h"
#include "graph/signed_graph.h"
#include "io/binary.h"
#include "io/mmap_file.h"
#include "io/quantized_mlp.h"
#include "tensor/kernels/qgemm.h"
#include "tensor/matrix.h"

namespace dssddi::io {

/// Frozen MLP weights with a plain-Matrix forward pass. This mirrors
/// tensor::Mlp but carries no autograd machinery, so a trained model can
/// be deployed for scoring without the training stack.
struct FrozenMlp {
  struct Layer {
    tensor::Matrix weight;  // in_features x out_features
    tensor::Matrix bias;    // 1 x out_features
    int activation = 0;     // tensor::Activation as int, for serialization
  };
  std::vector<Layer> layers;
  /// Pre-quantized int8 companion (weights + per-column scales). Empty
  /// until BuildQuantized() — bundles build or load it automatically; a
  /// hand-assembled FrozenMlp stays float-only until asked.
  QuantizedMlp quantized;

  /// y = act_L(...act_1(x W_1 + b_1)...W_L + b_L), matching Mlp::Forward.
  /// Each layer is one fused GemmBiasAct pass on the active GEMM backend
  /// (tensor/kernels/gemm_backend.h) — no intermediate bias/activation
  /// matrices are materialized. The one-argument overload follows the
  /// process-wide quantization mode (DSSDDI_QUANTIZE / SetQuantMode);
  /// pass a mode explicitly to pin the arithmetic. The int8 path runs
  /// only when `quantized` has been built, so float-only callers are
  /// never surprised.
  tensor::Matrix Forward(const tensor::Matrix& x) const;
  tensor::Matrix Forward(const tensor::Matrix& x,
                         tensor::kernels::QuantMode mode) const;

  /// (Re)derives `quantized` from the float layers. Deterministic;
  /// idempotent; cheap (one pass over the weights).
  void BuildQuantized();
};

/// InferenceBundle::quantization value meaning "follow the process-wide
/// mode" (DSSDDI_QUANTIZE / kernels::SetQuantMode). The serve layer
/// resolves it to a concrete mode once per model snapshot.
inline constexpr int kQuantizeAuto = -1;

/// Everything needed to run a trained DSSDDI system at inference time:
/// the MD module's frozen encoder/decoder, the propagated drug
/// representations (DDI embeddings already folded in), the treatment
/// cluster tables, and the DDI graph for Medical Support explanations.
///
/// The bundle round-trips through a single framed file, so a model trained
/// once on the full cohort can be shipped to a clinic host and queried
/// there (`PredictScores` / `Suggest`) bit-identically to the in-process
/// system it was extracted from.
struct InferenceBundle {
  std::string display_name;
  FrozenMlp patient_fc;
  FrozenMlp decoder;
  /// |V| x hidden final drug representations (h'_v, post layer-combination
  /// and DDI-embedding addition).
  tensor::Matrix final_drug_reps;
  tensor::Matrix cluster_centroids;   // k x d1
  tensor::Matrix cluster_treatment;   // k x |V|
  graph::SignedGraph ddi;
  std::vector<std::string> drug_names;
  bool mlp_decoder = true;            // MdDecoder::kMlp vs kDotLinear
  bool use_treatment_feature = true;
  int hidden_dim = 0;
  double ms_alpha = 0.5;
  /// core::ExplainerKind as int; carried so served explanations use the
  /// same subgraph backend the system was configured with.
  int ms_explainer = 0;
  /// Runtime-only (never serialized) quantization override for this
  /// bundle: kQuantizeAuto follows the process-wide mode, otherwise a
  /// kernels::QuantMode value pins the arithmetic regardless of the
  /// environment. The serve layer sets this from ServiceOptions and the
  /// /admin/reload "quantize" field.
  int quantization = kQuantizeAuto;

  /// Non-null iff this bundle was loaded zero-copy from a v4 file: the
  /// matrices / quantized weights / skeleton above are then views into
  /// this mapping. Shared so every copy of the bundle (and the serving
  /// ModelSnapshot holding it) keeps the pages alive; the file is
  /// unmapped when the last snapshot referencing it drains.
  std::shared_ptr<MmapFile> mapping;
  /// File format the bundle was loaded from (3 = framed heap bundle,
  /// 4 = flat mmap bundle); 0 for bundles assembled in process.
  uint32_t format_version = 0;
  /// Wall-clock cost of the load that produced this bundle, stamped by
  /// LoadInferenceBundle and surfaced via /statsz and the bundle gauges.
  double load_ms = 0.0;
  /// Pre-built interaction skeleton (a CSR view into `mapping` on the
  /// v4 path) so serving never re-sorts the DDI edges; when absent,
  /// Skeleton() derives it from `ddi` as before.
  graph::Graph ms_skeleton;
  bool has_ms_skeleton = false;

  int num_drugs() const { return final_drug_reps.rows(); }
  size_t bytes_mapped() const { return mapping ? mapping->size() : 0; }

  /// The interaction skeleton the Medical Support module should run on:
  /// the stored/mapped one when present, else freshly derived.
  graph::Graph Skeleton() const {
    return has_ms_skeleton ? ms_skeleton : ddi.InteractionSkeleton();
  }

  /// The concrete mode this bundle scores with right now.
  tensor::kernels::QuantMode EffectiveQuantMode() const;
  /// Builds both MLPs' int8 companions if absent (Extract/Load already
  /// do; this covers hand-assembled bundles switched to int8 later).
  void EnsureQuantized();

  /// Sigmoid suggestion scores (|x| x |V|) for raw patient features.
  /// On the float path, bit-identical to MdModule::PredictScores on the
  /// same weights. Under int8 the two MLP passes run the quantized
  /// kernels; scores stay row-local, so batching never changes them.
  tensor::Matrix PredictScores(const tensor::Matrix& x) const;

  /// Top-k suggestion with Medical Support explanation for one patient
  /// feature row (1 x d1 matrix or the first row of a larger matrix).
  core::Suggestion Suggest(const tensor::Matrix& x, int k) const;
};

/// Extracts a frozen inference bundle from a trained system. `dataset`
/// supplies the DDI graph and drug names shown in explanations.
InferenceBundle ExtractInferenceBundle(const core::DssddiSystem& system,
                                       const data::SuggestionDataset& dataset);

Status SaveInferenceBundle(const std::string& path, const InferenceBundle& bundle);

/// Loads a bundle from either format, dispatching on the file magic:
/// v3 framed files deserialize onto the heap as always; v4 flat files
/// (see io/bundle_v4.h) map the file and build zero-copy views. Both
/// paths run the same semantic validation and stamp format_version /
/// load_ms on success.
Status LoadInferenceBundle(const std::string& path, InferenceBundle* bundle);

/// Shared semantic validation run by both loaders after parsing:
/// cross-field dimension consistency, MLP layer-shape chains, and (when
/// a quantized companion was shipped) float/quantized agreement. Never
/// touches tensor payload bytes, so the v4 path stays O(pages touched).
Status ValidateLoadedBundle(const InferenceBundle& bundle,
                            const std::string& path, bool has_quantized);

}  // namespace dssddi::io

#endif  // DSSDDI_IO_INFERENCE_BUNDLE_H_
