#include "io/binary.h"

#include <cstdio>
#include <cstring>

namespace dssddi::io {
namespace {

constexpr uint32_t kFrameMagic = 0x44535344;  // "DSSD" little-endian
constexpr uint32_t kFrameHeaderVersion = 1;

// Encodes an IEEE-754 float as its bit pattern for endian-stable writes.
uint32_t FloatBits(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float BitsToFloat(uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void BinaryWriter::WriteU8(uint8_t value) {
  buffer_.push_back(static_cast<char>(value));
}

void BinaryWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void BinaryWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void BinaryWriter::WriteI32(int32_t value) {
  WriteU32(static_cast<uint32_t>(value));
}

void BinaryWriter::WriteF32(float value) { WriteU32(FloatBits(value)); }

void BinaryWriter::WriteF64(double value) { WriteU64(DoubleBits(value)); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU32(static_cast<uint32_t>(value.size()));
  buffer_.append(value);
}

void BinaryWriter::WriteFloatArray(const float* values, size_t count) {
  WriteU32(static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) WriteF32(values[i]);
}

void BinaryWriter::WriteIntVector(const std::vector<int>& values) {
  WriteU32(static_cast<uint32_t>(values.size()));
  for (int v : values) WriteI32(v);
}

bool BinaryReader::Take(void* out, size_t count) {
  if (!ok_ || position_ + count > buffer_->size()) {
    ok_ = false;
    std::memset(out, 0, count);
    return false;
  }
  std::memcpy(out, buffer_->data() + position_, count);
  position_ += count;
  return true;
}

uint8_t BinaryReader::ReadU8() {
  unsigned char byte = 0;
  Take(&byte, 1);
  return byte;
}

uint32_t BinaryReader::ReadU32() {
  unsigned char bytes[4] = {};
  Take(bytes, 4);
  return static_cast<uint32_t>(bytes[0]) | (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) | (static_cast<uint32_t>(bytes[3]) << 24);
}

uint64_t BinaryReader::ReadU64() {
  const uint64_t low = ReadU32();
  const uint64_t high = ReadU32();
  return low | (high << 32);
}

int32_t BinaryReader::ReadI32() { return static_cast<int32_t>(ReadU32()); }

float BinaryReader::ReadF32() { return BitsToFloat(ReadU32()); }

double BinaryReader::ReadF64() { return BitsToDouble(ReadU64()); }

std::string BinaryReader::ReadString() {
  const uint32_t size = ReadU32();
  if (!ok_ || position_ + size > buffer_->size()) {
    ok_ = false;
    return {};
  }
  std::string value(buffer_->data() + position_, size);
  position_ += size;
  return value;
}

bool BinaryReader::ReadIntVector(std::vector<int>* out) {
  const uint32_t count = ReadU32();
  if (!ok_ || position_ + static_cast<size_t>(count) * 4 > buffer_->size()) {
    ok_ = false;
    return false;
  }
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) (*out)[i] = ReadI32();
  return ok_;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::Error("cannot open for reading: " + path);
  out->clear();
  char chunk[1 << 16];
  size_t read;
  while ((read = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    out->append(chunk, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::Error("read error: " + path);
  return Status::Ok();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::Error("cannot open for writing: " + path);
  const size_t written = std::fwrite(data.data(), 1, data.size(), file);
  const bool failed = std::fclose(file) != 0 || written != data.size();
  if (failed) return Status::Error("write error: " + path);
  return Status::Ok();
}

Status WriteFramedFile(const std::string& path, uint32_t format_id,
                       uint32_t version, const std::string& payload) {
  BinaryWriter frame;
  frame.WriteU32(kFrameMagic);
  frame.WriteU32(kFrameHeaderVersion);
  frame.WriteU32(format_id);
  frame.WriteU32(version);
  frame.WriteU64(payload.size());
  frame.WriteU64(Fnv1a64(payload));
  std::string data = frame.buffer();
  data.append(payload);
  return WriteStringToFile(path, data);
}

Status ReadFramedFile(const std::string& path, uint32_t format_id,
                      uint32_t max_version, std::string* payload,
                      uint32_t* version) {
  std::string data;
  if (Status status = ReadFileToString(path, &data); !status.ok) return status;

  BinaryReader reader(data);
  const uint32_t magic = reader.ReadU32();
  const uint32_t header_version = reader.ReadU32();
  const uint32_t file_format = reader.ReadU32();
  const uint32_t file_version = reader.ReadU32();
  const uint64_t payload_size = reader.ReadU64();
  const uint64_t checksum = reader.ReadU64();
  if (!reader.ok()) return Status::Error("truncated header: " + path);
  if (magic != kFrameMagic) return Status::Error("not a DSSDDI file: " + path);
  if (header_version != kFrameHeaderVersion) {
    return Status::Error("unsupported frame version: " + path);
  }
  if (file_format != format_id) {
    return Status::Error("wrong artifact kind (format id " +
                         std::to_string(file_format) + ", expected " +
                         std::to_string(format_id) + "): " + path);
  }
  if (file_version > max_version) {
    return Status::Error("file version " + std::to_string(file_version) +
                         " is newer than supported " + std::to_string(max_version) +
                         ": " + path);
  }
  if (reader.remaining() != payload_size) {
    return Status::Error("payload size mismatch (truncated or trailing data): " + path);
  }
  payload->assign(data, reader.position(), payload_size);
  if (Fnv1a64(*payload) != checksum) {
    return Status::Error("checksum mismatch (corrupted file): " + path);
  }
  if (version != nullptr) *version = file_version;
  return Status::Ok();
}

}  // namespace dssddi::io
