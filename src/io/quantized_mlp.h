#ifndef DSSDDI_IO_QUANTIZED_MLP_H_
#define DSSDDI_IO_QUANTIZED_MLP_H_

#include <vector>

#include "io/binary.h"
#include "tensor/kernels/qgemm.h"
#include "tensor/matrix.h"

namespace dssddi::io {

struct FrozenMlp;

/// The int8 companion of a FrozenMlp: per-layer weights quantized once
/// (symmetric, per output column) plus the float bias, ready for the
/// fused QGemmBiasAct pass. Activations are quantized dynamically per
/// row inside Forward, so results are row-local — a row scores the same
/// bits whether it arrives alone or inside a batch.
///
/// Built deterministically from the float weights (QuantizeMlp), so a
/// bundle shipped without the serialized int8 section reproduces the
/// exact same quantized scores after rebuilding on load.
struct QuantizedMlp {
  struct Layer {
    tensor::kernels::QuantizedWeights weights;
    tensor::Matrix bias;  // 1 x out_features, float
    int activation = 0;   // tensor::Activation as int
    /// Max |w - dequant(quant(w))| across this layer's weight — the
    /// quantization error operators see in ServiceStats / /statsz.
    float max_abs_error = 0.0f;
  };
  std::vector<Layer> layers;

  bool empty() const { return layers.empty(); }

  /// Fully quantized forward pass: per layer, dynamic group-wise
  /// activation quantization then one fused int8 GemmBiasAct — every
  /// layer, including narrow ones. Serving goes through
  /// FrozenMlp::Forward instead, which keeps layers narrower than
  /// kernels::kQuantMinColumns on the float path.
  tensor::Matrix Forward(const tensor::Matrix& x) const;
};

/// Quantizes every layer of `mlp`. Deterministic: same floats in, same
/// int8 out, on every host and ISA.
QuantizedMlp QuantizeMlp(const FrozenMlp& mlp);

/// Bundle-file codec for the quantized section. The section is framed
/// with its own byte length so a corrupt or truncated section is
/// rejected by length disagreement before any of it is interpreted.
void WriteQuantizedMlp(BinaryWriter& writer, const QuantizedMlp& mlp);
bool ReadQuantizedMlp(BinaryReader& reader, QuantizedMlp* mlp);

}  // namespace dssddi::io

#endif  // DSSDDI_IO_QUANTIZED_MLP_H_
