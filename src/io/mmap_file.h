#ifndef DSSDDI_IO_MMAP_FILE_H_
#define DSSDDI_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/binary.h"

namespace dssddi::io {

/// RAII read-only memory mapping of a whole file (PROT_READ, MAP_SHARED):
/// every process mapping the same bundle shares one page-cache copy, and
/// load cost is O(pages touched) instead of O(bytes parsed). The v4
/// bundle loader holds one of these behind a shared_ptr inside the
/// InferenceBundle, so the mapping is unmapped exactly when the last
/// snapshot (and therefore the last in-flight batch) referencing it is
/// destroyed — that is the whole reload-retirement story.
///
/// Movable, not copyable. A default-constructed instance maps nothing.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. With `prefault` the pages are touched once
  /// up front (sequential read of one byte per page) so first-request
  /// latency never pays major faults; without it, faults are demand
  /// driven and load is O(pages actually used). Either way the kernel
  /// is told the access pattern via madvise(MADV_WILLNEED).
  static Status Open(const std::string& path, MmapFile* out,
                     bool prefault = false);

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  void Reset() noexcept;

  unsigned char* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace dssddi::io

#endif  // DSSDDI_IO_MMAP_FILE_H_
