#ifndef DSSDDI_IO_SERIALIZE_H_
#define DSSDDI_IO_SERIALIZE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/signed_graph.h"
#include "io/binary.h"
#include "tensor/matrix.h"

namespace dssddi::io {

/// Artifact kinds stored in the framed-file header (see WriteFramedFile).
enum FormatId : uint32_t {
  kFormatMatrix = 1,
  kFormatSignedGraph = 2,
  kFormatDataset = 3,
  kFormatInferenceBundle = 4,
};

// ---- In-buffer codecs (composable; used by the file wrappers and the
// inference bundle). Readers return false and mark the BinaryReader
// failed on malformed input. ----

void WriteMatrix(BinaryWriter& writer, const tensor::Matrix& matrix);
bool ReadMatrix(BinaryReader& reader, tensor::Matrix* matrix);

void WriteSignedGraph(BinaryWriter& writer, const graph::SignedGraph& graph);
bool ReadSignedGraph(BinaryReader& reader, graph::SignedGraph* graph);

void WriteSplit(BinaryWriter& writer, const data::Split& split);
bool ReadSplit(BinaryReader& reader, data::Split* split);

void WriteStringVector(BinaryWriter& writer, const std::vector<std::string>& values);
bool ReadStringVector(BinaryReader& reader, std::vector<std::string>* values);

void WriteIntVectorVector(BinaryWriter& writer,
                          const std::vector<std::vector<int>>& values);
bool ReadIntVectorVector(BinaryReader& reader,
                         std::vector<std::vector<int>>* values);

void WriteDataset(BinaryWriter& writer, const data::SuggestionDataset& dataset);
bool ReadDataset(BinaryReader& reader, data::SuggestionDataset* dataset);

// ---- File-level wrappers: framed (magic + format id + version +
// checksum) so corruption and kind confusion fail with a clear message. ----

Status SaveMatrixFile(const std::string& path, const tensor::Matrix& matrix);
Status LoadMatrixFile(const std::string& path, tensor::Matrix* matrix);

Status SaveSignedGraphFile(const std::string& path, const graph::SignedGraph& graph);
Status LoadSignedGraphFile(const std::string& path, graph::SignedGraph* graph);

/// Persists a fully assembled suggestion dataset (features, medication,
/// DDI graph, split, names, histories) so expensive generator + TransE
/// runs can be cached across processes.
Status SaveDatasetFile(const std::string& path, const data::SuggestionDataset& dataset);
Status LoadDatasetFile(const std::string& path, data::SuggestionDataset* dataset);

}  // namespace dssddi::io

#endif  // DSSDDI_IO_SERIALIZE_H_
