#ifndef DSSDDI_APP_REPORT_H_
#define DSSDDI_APP_REPORT_H_

#include <string>
#include <vector>

#include "core/dssddi_system.h"
#include "data/dataset.h"

namespace dssddi::app {

/// Rendering options for the doctor-facing suggestion report.
struct ReportOptions {
  /// Patient identifier printed in the header (free-form; clinics use
  /// their own record numbers).
  std::string patient_label;
  /// Show the raw model score next to each suggested drug.
  bool show_scores = true;
  /// Show the Medical Support subgraph statistics (size / trussness /
  /// diameter) under the interaction lists.
  bool show_subgraph_stats = true;
  /// Show up to this many notable patient features (by absolute value)
  /// when feature names are supplied; 0 hides the section.
  int max_patient_features = 6;
  /// Width of the separator rules.
  int rule_width = 62;
};

/// One safety flag raised by AuditSuggestion: an antagonistic interaction
/// inside a drug set a patient is (or would be) taking.
struct SafetyFlag {
  int drug_u = -1;
  int drug_v = -1;
  /// True when both drugs are in the suggested set; false when one side
  /// comes from the patient's current medication.
  bool within_suggestion = true;
};

/// Renders the system output panel of paper Fig. 1 / Fig. 4(c): the
/// suggested drugs, the synergism/antagonism explanation extracted by the
/// Medical Support module, and the Suggestion Satisfaction score.
/// `drug_names` indexes drug ids; `feature_names`/`features` are optional
/// (pass empty to omit the patient snapshot).
std::string RenderClinicReport(const core::Suggestion& suggestion,
                               const std::vector<std::string>& drug_names,
                               const std::vector<std::string>& feature_names,
                               const std::vector<float>& features,
                               const ReportOptions& options = {});

/// Cross-checks a suggested drug set against the DDI graph and a
/// patient's current medication row (may be empty): every antagonistic
/// pair inside the union is flagged. The decision support system should
/// produce far fewer flags than naive popularity ranking — this is the
/// programmatic form of the paper's safety claim.
std::vector<SafetyFlag> AuditSuggestion(const std::vector<int>& suggested_drugs,
                                        const std::vector<int>& current_drugs,
                                        const graph::SignedGraph& ddi);

/// Renders audit flags as warning lines ("WARNING: X antagonizes Y").
std::string RenderSafetyFlags(const std::vector<SafetyFlag>& flags,
                              const std::vector<std::string>& drug_names);

}  // namespace dssddi::app

#endif  // DSSDDI_APP_REPORT_H_
