#ifndef DSSDDI_APP_IMPORTANCE_H_
#define DSSDDI_APP_IMPORTANCE_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace dssddi::app {

/// Contribution of one patient feature to a drug's suggestion score.
struct FeatureAttribution {
  int feature = -1;
  /// score(x) - score(x with the feature occluded): positive means the
  /// feature pushed the drug up the list.
  float delta = 0.0f;
};

/// Model scorer: raw patient features (n x d1) -> suggestion scores
/// (n x |V|). Both core::DssddiSystem (via MdModule::PredictScores) and
/// io::InferenceBundle satisfy this shape.
using ScoreFn = std::function<tensor::Matrix(const tensor::Matrix&)>;

/// Occlusion-based feature attribution for one patient and one drug:
/// each feature is replaced by its baseline value (0, or `baseline[j]`
/// when provided — typically the cohort mean) and the drop in the drug's
/// score is recorded. Results are sorted by |delta|, largest first.
///
/// All d1+1 model evaluations are batched into a single score call, so
/// the cost is one forward pass over d1+1 rows.
std::vector<FeatureAttribution> OcclusionImportance(
    const ScoreFn& score, const tensor::Matrix& x_row, int drug,
    const std::vector<float>& baseline = {});

/// Renders the top-`top` attributions as signed lines
/// ("+0.12  history_Hypertension").
std::string RenderImportance(const std::vector<FeatureAttribution>& attributions,
                             const std::vector<std::string>& feature_names,
                             int top = 8);

}  // namespace dssddi::app

#endif  // DSSDDI_APP_IMPORTANCE_H_
