#ifndef DSSDDI_APP_CASE_STUDY_H_
#define DSSDDI_APP_CASE_STUDY_H_

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace dssddi::app {

/// The four DDI-effect archetypes of paper Fig. 9 / Section VI.
enum class CaseKind {
  kSynergisticLift,      // Case 1: a taken drug rises beside its synergist
  kAntagonisticDrop,     // Case 2: an untaken antagonist of a taken drug falls
  kIndirectSimilarity,   // Case 3: shared antagonists -> similar embeddings
  kGroundTruthDeviation, // Case 4: safer ranking that contradicts the label
};

std::string CaseKindName(CaseKind kind);

/// A rank movement of one drug for one patient between the DDI-free and
/// DDI-aware score matrices.
struct RankMovement {
  CaseKind kind = CaseKind::kSynergisticLift;
  int patient = -1;       // dataset patient id
  int test_row = -1;      // row in the score matrices
  int drug = -1;          // the drug that moved
  int partner = -1;       // the interacting drug that caused the movement
  int rank_without = 0;   // 1-based rank under the w/o-DDI scores
  int rank_with = 0;      // 1-based rank under the w/-DDI scores

  /// Positive when the drug moved toward the top of the list.
  int Lift() const { return rank_without - rank_with; }
};

/// 1-based rank of `drug` in patient row `row` of `scores` (rank 1 is the
/// highest-scored drug; ties resolve in favour of `drug`).
int RankOf(const tensor::Matrix& scores, int row, int drug);

/// Inputs shared by the case finders: per-test-row scores produced by the
/// same system with and without the DDI module, over `test_patients`.
struct CaseStudyInput {
  const data::SuggestionDataset* dataset = nullptr;
  const std::vector<int>* test_patients = nullptr;
  const tensor::Matrix* scores_with_ddi = nullptr;
  const tensor::Matrix* scores_without_ddi = nullptr;
};

/// Case 1: the taken drug with the largest rank lift whose synergistic
/// partner is also taken. Empty when no such movement exists.
std::optional<RankMovement> FindSynergisticLift(const CaseStudyInput& input);

/// Case 2: the *untaken* drug with the largest rank drop that is
/// antagonistic to a taken drug.
std::optional<RankMovement> FindAntagonisticDrop(const CaseStudyInput& input);

/// Case 4: a patient taking both ends of an antagonistic pair where the
/// DDI-aware system downgrades one end (deviating from the label).
std::optional<RankMovement> FindGroundTruthDeviation(const CaseStudyInput& input);

/// Case 3 evidence: embedding similarity of a drug pair vs. the mean
/// similarity of the first drug to all others.
struct IndirectSimilarity {
  int drug_a = -1;
  int drug_b = -1;
  float pair_cosine = 0.0f;
  float mean_cosine = 0.0f;
  /// Antagonistic partners the pair has in common (the indirect channel).
  std::vector<int> shared_antagonists;
};

/// Measures how similar DDIGCN's embeddings make `drug_a` and `drug_b`
/// (paper's Amlodipine/Felodipine pair) relative to the background, and
/// lists the shared antagonistic partners that connect them indirectly.
IndirectSimilarity MeasureIndirectSimilarity(const tensor::Matrix& embeddings,
                                             const graph::SignedGraph& ddi,
                                             int drug_a, int drug_b);

/// Ranks drug pairs without a direct interaction by how many antagonistic
/// partners they share (candidates for Case 3). Returns up to `limit`
/// pairs, most-shared first.
std::vector<IndirectSimilarity> TopIndirectPairs(const tensor::Matrix& embeddings,
                                                 const graph::SignedGraph& ddi,
                                                 int limit);

/// Renders one movement as the paper's case-study line, e.g.
/// "patient 2417: Perindopril (DID 5) rank 5 -> 4 (synergy with
/// Indapamide (DID 10))".
std::string RenderMovement(const RankMovement& movement,
                           const std::vector<std::string>& drug_names);

}  // namespace dssddi::app

#endif  // DSSDDI_APP_CASE_STUDY_H_
