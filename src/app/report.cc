#include "app/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace dssddi::app {
namespace {

std::string DrugLabel(int drug, const std::vector<std::string>& drug_names) {
  if (drug >= 0 && drug < static_cast<int>(drug_names.size())) {
    return drug_names[drug] + " (DID " + std::to_string(drug) + ")";
  }
  return "DID " + std::to_string(drug);
}

std::string Rule(char fill, int width) { return std::string(width, fill); }

}  // namespace

std::string RenderClinicReport(const core::Suggestion& suggestion,
                               const std::vector<std::string>& drug_names,
                               const std::vector<std::string>& feature_names,
                               const std::vector<float>& features,
                               const ReportOptions& options) {
  const auto& exp = suggestion.explanation;
  std::ostringstream out;
  out << Rule('=', options.rule_width) << "\n";
  out << "DSSDDI medication suggestion";
  if (!options.patient_label.empty()) out << " — patient " << options.patient_label;
  out << "\n" << Rule('=', options.rule_width) << "\n";

  // Patient snapshot: the most salient features by absolute value.
  if (options.max_patient_features > 0 && !feature_names.empty() &&
      feature_names.size() == features.size()) {
    std::vector<int> order(features.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return std::fabs(features[a]) > std::fabs(features[b]);
    });
    out << "Patient snapshot:\n";
    const int shown = std::min<int>(options.max_patient_features,
                                    static_cast<int>(order.size()));
    for (int i = 0; i < shown; ++i) {
      const int j = order[i];
      out << "  " << feature_names[j] << ": " << std::fixed << std::setprecision(2)
          << features[j] << "\n";
    }
    out << Rule('-', options.rule_width) << "\n";
  }

  out << "Suggested drugs (" << suggestion.drugs.size() << "):\n";
  for (size_t i = 0; i < suggestion.drugs.size(); ++i) {
    out << "  " << (i + 1) << ". " << DrugLabel(suggestion.drugs[i], drug_names);
    if (options.show_scores && i < suggestion.scores.size()) {
      out << "  [score " << std::fixed << std::setprecision(3)
          << suggestion.scores[i] << "]";
    }
    out << "\n";
  }

  out << Rule('-', options.rule_width) << "\n";
  out << "Why these drugs (Medical Support):\n";
  if (exp.synergies_within.empty()) {
    out << "  Synergism: none among the suggested drugs.\n";
  } else {
    out << "  Synergism:\n";
    for (const auto& e : exp.synergies_within) {
      out << "    + " << DrugLabel(e.drug_u, drug_names) << " with "
          << DrugLabel(e.drug_v, drug_names) << "\n";
    }
  }
  if (!exp.antagonisms_within.empty()) {
    out << "  WARNING — antagonism inside the suggestion:\n";
    for (const auto& e : exp.antagonisms_within) {
      out << "    x " << DrugLabel(e.drug_u, drug_names) << " against "
          << DrugLabel(e.drug_v, drug_names) << "\n";
    }
  }
  if (!exp.antagonisms_outward.empty()) {
    out << "  Avoided antagonistic partners (not suggested):\n";
    for (const auto& e : exp.antagonisms_outward) {
      out << "    - " << DrugLabel(e.drug_v, drug_names) << " (antagonizes "
          << DrugLabel(e.drug_u, drug_names) << ")\n";
    }
  }

  if (options.show_subgraph_stats) {
    out << Rule('-', options.rule_width) << "\n";
    out << "Explanation subgraph: " << exp.subgraph_drugs.size()
        << " drugs, trussness " << exp.trussness << ", diameter " << exp.diameter
        << "\n";
  }
  out << "Suggestion Satisfaction: " << std::fixed << std::setprecision(4)
      << exp.suggestion_satisfaction << "\n";
  out << Rule('=', options.rule_width) << "\n";
  return out.str();
}

std::vector<SafetyFlag> AuditSuggestion(const std::vector<int>& suggested_drugs,
                                        const std::vector<int>& current_drugs,
                                        const graph::SignedGraph& ddi) {
  std::vector<SafetyFlag> flags;
  // Antagonisms within the suggestion.
  for (size_t i = 0; i < suggested_drugs.size(); ++i) {
    for (size_t j = i + 1; j < suggested_drugs.size(); ++j) {
      if (ddi.SignOf(suggested_drugs[i], suggested_drugs[j]) ==
          graph::EdgeSign::kAntagonistic) {
        flags.push_back({suggested_drugs[i], suggested_drugs[j], true});
      }
    }
  }
  // Antagonisms between the suggestion and the current regimen (skip
  // drugs already counted as within-suggestion).
  for (int suggested : suggested_drugs) {
    for (int current : current_drugs) {
      if (current == suggested) continue;
      if (std::find(suggested_drugs.begin(), suggested_drugs.end(), current) !=
          suggested_drugs.end()) {
        continue;
      }
      if (ddi.SignOf(suggested, current) == graph::EdgeSign::kAntagonistic) {
        flags.push_back({suggested, current, false});
      }
    }
  }
  return flags;
}

std::string RenderSafetyFlags(const std::vector<SafetyFlag>& flags,
                              const std::vector<std::string>& drug_names) {
  if (flags.empty()) return "No antagonistic interactions detected.\n";
  std::ostringstream out;
  for (const auto& flag : flags) {
    out << "WARNING: " << DrugLabel(flag.drug_u, drug_names) << " antagonizes "
        << DrugLabel(flag.drug_v, drug_names)
        << (flag.within_suggestion ? " (both suggested)"
                                   : " (currently taken)")
        << "\n";
  }
  return out.str();
}

}  // namespace dssddi::app
