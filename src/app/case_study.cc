#include "app/case_study.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dssddi::app {
namespace {

bool Taken(const CaseStudyInput& input, int patient, int drug) {
  return input.dataset->medication.At(patient, drug) > 0.5f;
}

std::string DrugLabel(int drug, const std::vector<std::string>& drug_names) {
  if (drug >= 0 && drug < static_cast<int>(drug_names.size())) {
    return drug_names[drug] + " (DID " + std::to_string(drug) + ")";
  }
  return "DID " + std::to_string(drug);
}

void CheckInput(const CaseStudyInput& input) {
  DSSDDI_CHECK(input.dataset != nullptr && input.test_patients != nullptr &&
               input.scores_with_ddi != nullptr && input.scores_without_ddi != nullptr)
      << "CaseStudyInput is incomplete";
  DSSDDI_CHECK(input.scores_with_ddi->rows() ==
               static_cast<int>(input.test_patients->size()))
      << "score rows must align with test_patients";
  DSSDDI_CHECK(input.scores_with_ddi->SameShape(*input.scores_without_ddi))
      << "the two score matrices must have identical shape";
}

}  // namespace

std::string CaseKindName(CaseKind kind) {
  switch (kind) {
    case CaseKind::kSynergisticLift: return "synergistic lift";
    case CaseKind::kAntagonisticDrop: return "antagonistic drop";
    case CaseKind::kIndirectSimilarity: return "indirect DDI similarity";
    case CaseKind::kGroundTruthDeviation: return "deviation from ground truth";
  }
  return "unknown";
}

int RankOf(const tensor::Matrix& scores, int row, int drug) {
  int rank = 1;
  for (int v = 0; v < scores.cols(); ++v) {
    if (v != drug && scores.At(row, v) > scores.At(row, drug)) ++rank;
  }
  return rank;
}

std::optional<RankMovement> FindSynergisticLift(const CaseStudyInput& input) {
  CheckInput(input);
  const auto& test = *input.test_patients;
  std::optional<RankMovement> best;
  for (size_t r = 0; r < test.size(); ++r) {
    const int patient = test[r];
    for (const auto& edge : input.dataset->ddi.edges()) {
      if (edge.sign != graph::EdgeSign::kSynergistic) continue;
      for (auto [drug, partner] :
           {std::pair{edge.u, edge.v}, std::pair{edge.v, edge.u}}) {
        if (!Taken(input, patient, drug) || !Taken(input, patient, partner)) continue;
        RankMovement movement;
        movement.kind = CaseKind::kSynergisticLift;
        movement.patient = patient;
        movement.test_row = static_cast<int>(r);
        movement.drug = drug;
        movement.partner = partner;
        movement.rank_without = RankOf(*input.scores_without_ddi, movement.test_row, drug);
        movement.rank_with = RankOf(*input.scores_with_ddi, movement.test_row, drug);
        if (movement.Lift() > 0 && (!best || movement.Lift() > best->Lift())) {
          best = movement;
        }
      }
    }
  }
  return best;
}

std::optional<RankMovement> FindAntagonisticDrop(const CaseStudyInput& input) {
  CheckInput(input);
  const auto& test = *input.test_patients;
  std::optional<RankMovement> best;
  for (size_t r = 0; r < test.size(); ++r) {
    const int patient = test[r];
    for (const auto& edge : input.dataset->ddi.edges()) {
      if (edge.sign != graph::EdgeSign::kAntagonistic) continue;
      for (auto [drug, partner] :
           {std::pair{edge.u, edge.v}, std::pair{edge.v, edge.u}}) {
        if (Taken(input, patient, drug) || !Taken(input, patient, partner)) continue;
        RankMovement movement;
        movement.kind = CaseKind::kAntagonisticDrop;
        movement.patient = patient;
        movement.test_row = static_cast<int>(r);
        movement.drug = drug;
        movement.partner = partner;
        movement.rank_without = RankOf(*input.scores_without_ddi, movement.test_row, drug);
        movement.rank_with = RankOf(*input.scores_with_ddi, movement.test_row, drug);
        // A drop means Lift() is negative; pick the most negative.
        if (movement.Lift() < 0 && (!best || movement.Lift() < best->Lift())) {
          best = movement;
        }
      }
    }
  }
  return best;
}

std::optional<RankMovement> FindGroundTruthDeviation(const CaseStudyInput& input) {
  CheckInput(input);
  const auto& test = *input.test_patients;
  std::optional<RankMovement> best;
  for (size_t r = 0; r < test.size(); ++r) {
    const int patient = test[r];
    for (const auto& edge : input.dataset->ddi.edges()) {
      if (edge.sign != graph::EdgeSign::kAntagonistic) continue;
      if (!Taken(input, patient, edge.u) || !Taken(input, patient, edge.v)) continue;
      for (auto [kept, downgraded] :
           {std::pair{edge.u, edge.v}, std::pair{edge.v, edge.u}}) {
        RankMovement movement;
        movement.kind = CaseKind::kGroundTruthDeviation;
        movement.patient = patient;
        movement.test_row = static_cast<int>(r);
        movement.drug = downgraded;
        movement.partner = kept;
        movement.rank_without =
            RankOf(*input.scores_without_ddi, movement.test_row, downgraded);
        movement.rank_with = RankOf(*input.scores_with_ddi, movement.test_row, downgraded);
        if (movement.Lift() < 0 && (!best || movement.Lift() < best->Lift())) {
          best = movement;
        }
      }
    }
  }
  return best;
}

IndirectSimilarity MeasureIndirectSimilarity(const tensor::Matrix& embeddings,
                                             const graph::SignedGraph& ddi,
                                             int drug_a, int drug_b) {
  DSSDDI_CHECK(drug_a >= 0 && drug_a < embeddings.rows() && drug_b >= 0 &&
               drug_b < embeddings.rows())
      << "drug id out of range";
  IndirectSimilarity result;
  result.drug_a = drug_a;
  result.drug_b = drug_b;

  const tensor::Matrix row = embeddings.GatherRows({drug_a});
  const tensor::Matrix sim = tensor::Matrix::CosineSimilarity(row, embeddings);
  result.pair_cosine = sim.At(0, drug_b);
  double mean = 0.0;
  for (int v = 0; v < sim.cols(); ++v) {
    if (v != drug_a) mean += sim.At(0, v);
  }
  result.mean_cosine = static_cast<float>(mean / std::max(1, sim.cols() - 1));

  for (int partner : ddi.NegativeNeighbors(drug_a)) {
    const auto& b_partners = ddi.NegativeNeighbors(drug_b);
    if (std::find(b_partners.begin(), b_partners.end(), partner) != b_partners.end()) {
      result.shared_antagonists.push_back(partner);
    }
  }
  return result;
}

std::vector<IndirectSimilarity> TopIndirectPairs(const tensor::Matrix& embeddings,
                                                 const graph::SignedGraph& ddi,
                                                 int limit) {
  std::vector<IndirectSimilarity> pairs;
  const int n = ddi.num_vertices();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (ddi.HasInteraction(a, b)) continue;
      auto measured = MeasureIndirectSimilarity(embeddings, ddi, a, b);
      if (!measured.shared_antagonists.empty()) pairs.push_back(std::move(measured));
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const IndirectSimilarity& x, const IndirectSimilarity& y) {
              if (x.shared_antagonists.size() != y.shared_antagonists.size()) {
                return x.shared_antagonists.size() > y.shared_antagonists.size();
              }
              return x.pair_cosine > y.pair_cosine;
            });
  if (static_cast<int>(pairs.size()) > limit) pairs.resize(limit);
  return pairs;
}

std::string RenderMovement(const RankMovement& movement,
                           const std::vector<std::string>& drug_names) {
  std::ostringstream out;
  out << "[" << CaseKindName(movement.kind) << "] patient " << movement.patient
      << ": " << DrugLabel(movement.drug, drug_names) << " rank "
      << movement.rank_without << " -> " << movement.rank_with;
  switch (movement.kind) {
    case CaseKind::kSynergisticLift:
      out << " (synergy with " << DrugLabel(movement.partner, drug_names) << ")";
      break;
    case CaseKind::kAntagonisticDrop:
      out << " (antagonistic to taken " << DrugLabel(movement.partner, drug_names) << ")";
      break;
    case CaseKind::kGroundTruthDeviation:
      out << " (taken together with antagonist "
          << DrugLabel(movement.partner, drug_names) << "; safer but off-label)";
      break;
    case CaseKind::kIndirectSimilarity:
      break;
  }
  return out.str();
}

}  // namespace dssddi::app
