#include "app/importance.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace dssddi::app {

std::vector<FeatureAttribution> OcclusionImportance(
    const ScoreFn& score, const tensor::Matrix& x_row, int drug,
    const std::vector<float>& baseline) {
  DSSDDI_CHECK(x_row.rows() >= 1) << "need one patient row";
  DSSDDI_CHECK(baseline.empty() ||
               static_cast<int>(baseline.size()) == x_row.cols())
      << "baseline width mismatch";
  const int d = x_row.cols();

  // Row 0: the unmodified patient; row j+1: feature j occluded.
  tensor::Matrix batch(d + 1, d);
  for (int r = 0; r < d + 1; ++r) {
    std::copy(x_row.RowPtr(0), x_row.RowPtr(0) + d, batch.RowPtr(r));
  }
  for (int j = 0; j < d; ++j) {
    batch.At(j + 1, j) = baseline.empty() ? 0.0f : baseline[j];
  }

  const tensor::Matrix scores = score(batch);
  DSSDDI_CHECK(scores.rows() == d + 1) << "scorer changed the batch size";
  DSSDDI_CHECK(drug >= 0 && drug < scores.cols()) << "drug id out of range";

  const float reference = scores.At(0, drug);
  std::vector<FeatureAttribution> attributions(d);
  for (int j = 0; j < d; ++j) {
    attributions[j].feature = j;
    attributions[j].delta = reference - scores.At(j + 1, drug);
  }
  std::sort(attributions.begin(), attributions.end(),
            [](const FeatureAttribution& a, const FeatureAttribution& b) {
              return std::fabs(a.delta) > std::fabs(b.delta);
            });
  return attributions;
}

std::string RenderImportance(const std::vector<FeatureAttribution>& attributions,
                             const std::vector<std::string>& feature_names,
                             int top) {
  std::ostringstream out;
  const int shown = std::min<int>(top, static_cast<int>(attributions.size()));
  for (int i = 0; i < shown; ++i) {
    const auto& attribution = attributions[i];
    const std::string name =
        attribution.feature < static_cast<int>(feature_names.size())
            ? feature_names[attribution.feature]
            : "f" + std::to_string(attribution.feature);
    out << (attribution.delta >= 0 ? "  +" : "  -") << std::fixed
        << std::setprecision(4) << std::fabs(attribution.delta) << "  " << name
        << "\n";
  }
  return out.str();
}

}  // namespace dssddi::app
