#ifndef DSSDDI_UTIL_LOGGING_H_
#define DSSDDI_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dssddi::util {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Stream-style log/check sink. A `LogMessage` accumulates into a string
/// stream and emits on destruction; `kFatal` aborts the process. Used via
/// the DSSDDI_LOG / DSSDDI_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Global minimum severity; messages below it are swallowed (checks always fire).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace dssddi::util

#define DSSDDI_LOG(severity)                                            \
  ::dssddi::util::LogMessage(::dssddi::util::LogSeverity::k##severity, \
                             __FILE__, __LINE__)

// CHECK evaluates its condition exactly once; on failure it logs the
// condition text plus any streamed context and aborts.
#define DSSDDI_CHECK(condition)                                      \
  if (condition) {                                                   \
  } else                                                             \
    ::dssddi::util::LogMessage(::dssddi::util::LogSeverity::kFatal, \
                               __FILE__, __LINE__)                   \
        << "Check failed: " #condition " "

#endif  // DSSDDI_UTIL_LOGGING_H_
