#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace dssddi::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  DSSDDI_CHECK(n > 0) << "NextBelow requires n > 0";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DSSDDI_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-12) u1 = NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

int Rng::Poisson(double lambda) {
  const double limit = std::exp(-lambda);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  DSSDDI_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: first k entries are the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(NextBelow(static_cast<uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

int Rng::SampleWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  DSSDDI_CHECK(total > 0.0) << "SampleWeighted requires positive total weight";
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace dssddi::util
