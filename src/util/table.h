#ifndef DSSDDI_UTIL_TABLE_H_
#define DSSDDI_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dssddi::util {

/// Plain-text table renderer used by the benchmark harnesses to print the
/// paper's tables (Table I-IV) in an aligned, diff-friendly format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell is a label, the rest are numbers formatted
  /// with `precision` decimal places.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 4);

  /// Renders with column alignment and a header separator.
  std::string Render() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with fixed precision (helper shared by benches).
std::string FormatDouble(double value, int precision = 4);

}  // namespace dssddi::util

#endif  // DSSDDI_UTIL_TABLE_H_
