#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace dssddi::util {

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  DSSDDI_CHECK(row.size() == header_.size()) << "CSV row arity mismatch";
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeCsvField(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << ToString();
  return file.good();
}


int CsvDocument::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

bool ParseCsv(const std::string& text, CsvDocument* document, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  document->header.clear();
  document->rows.clear();

  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool record_has_content = false;
  size_t line = 1;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&]() -> bool {
    end_field();
    if (document->header.empty()) {
      document->header = std::move(record);
    } else {
      if (record.size() != document->header.size()) {
        return false;
      }
      document->rows.push_back(std::move(record));
    }
    record.clear();
    record_has_content = false;
    return true;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
        if (ch == '\n') ++line;
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (!field.empty()) return fail("stray quote at line " + std::to_string(line));
        in_quotes = true;
        record_has_content = true;
        break;
      case ',':
        end_field();
        record_has_content = true;
        break;
      case '\r':
        // Swallow the CR of a CRLF pair; a lone CR is treated as noise.
        break;
      case '\n':
        if (record_has_content || !field.empty() || !record.empty()) {
          if (!end_record()) {
            return fail("row arity mismatch at line " + std::to_string(line));
          }
        }
        ++line;
        break;
      default:
        field += ch;
        record_has_content = true;
        break;
    }
  }
  if (in_quotes) return fail("unterminated quoted field");
  if (record_has_content || !field.empty() || !record.empty()) {
    if (!end_record()) {
      return fail("row arity mismatch at line " + std::to_string(line));
    }
  }
  if (document->header.empty()) return fail("empty CSV document");
  return true;
}

bool ReadCsvFile(const std::string& path, CsvDocument* document, std::string* error) {
  std::ifstream file(path);
  if (!file.is_open()) {
    if (error != nullptr) *error = "cannot open: " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), document, error);
}

}  // namespace dssddi::util
