#ifndef DSSDDI_UTIL_RNG_H_
#define DSSDDI_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dssddi::util {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// splitmix64). Every stochastic component in the library draws from an
/// explicitly passed Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the four-word xoshiro state by iterating splitmix64 on `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Poisson draw (Knuth's method; fine for small lambda).
  int Poisson(double lambda);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Samples an index proportionally to the (non-negative) weights.
  int SampleWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dssddi::util

#endif  // DSSDDI_UTIL_RNG_H_
