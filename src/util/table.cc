#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace dssddi::util {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  DSSDDI_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::string& label,
                              const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace dssddi::util
