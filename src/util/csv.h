#ifndef DSSDDI_UTIL_CSV_H_
#define DSSDDI_UTIL_CSV_H_

#include <string>
#include <vector>

namespace dssddi::util {

/// Minimal CSV writer for persisting experiment series (one row per call).
/// Values containing commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Serializes header + rows; `WriteFile` returns false on I/O error.
  std::string ToString() const;
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field (exposed for testing).
std::string EscapeCsvField(const std::string& field);

/// Parsed CSV document: a header row plus data rows, all unescaped.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  int num_columns() const { return static_cast<int>(header.size()); }
  int num_rows() const { return static_cast<int>(rows.size()); }
  /// Column index by header name, or -1.
  int ColumnIndex(const std::string& name) const;
};

/// Parses RFC 4180 CSV text (quoted fields, embedded commas/quotes/
/// newlines, CRLF line endings). The first record is the header; every
/// data row must have the header's arity. Returns false and fills
/// `error` (if non-null) on malformed input.
bool ParseCsv(const std::string& text, CsvDocument* document,
              std::string* error = nullptr);

/// Reads and parses a CSV file; false on I/O or parse error.
bool ReadCsvFile(const std::string& path, CsvDocument* document,
                 std::string* error = nullptr);

}  // namespace dssddi::util

#endif  // DSSDDI_UTIL_CSV_H_
