#ifndef DSSDDI_EVAL_SIGNIFICANCE_H_
#define DSSDDI_EVAL_SIGNIFICANCE_H_

#include <cstdint>

#include "eval/metrics.h"
#include "tensor/matrix.h"

namespace dssddi::eval {

/// Distribution summary for one bootstrapped metric.
struct MetricCi {
  double mean = 0.0;
  double stddev = 0.0;
  double lower = 0.0;  // percentile interval bounds
  double upper = 0.0;
};

/// Bootstrap summary of the three ranking metrics at one k.
struct BootstrapResult {
  MetricCi precision;
  MetricCi recall;
  MetricCi ndcg;
  int num_resamples = 0;
  double confidence = 0.0;
};

struct BootstrapOptions {
  int num_resamples = 1000;
  double confidence = 0.95;
  uint64_t seed = 1234;
};

/// Patient-level bootstrap: resamples the rows of `scores`/`truth` with
/// replacement and recomputes Precision/Recall/NDCG@k per resample, so
/// the paper's point estimates can be reported with confidence intervals.
BootstrapResult BootstrapRankingMetrics(const tensor::Matrix& scores,
                                        const tensor::Matrix& truth, int k,
                                        const BootstrapOptions& options = {});

/// Paired bootstrap comparison of two models on the same patients:
/// resamples rows once per iteration and measures the recall@k difference
/// (a - b). Returns the fraction of resamples in which model A strictly
/// beats model B — close to 1.0 means a robust win.
double PairedBootstrapWinRate(const tensor::Matrix& scores_a,
                              const tensor::Matrix& scores_b,
                              const tensor::Matrix& truth, int k,
                              const BootstrapOptions& options = {});

}  // namespace dssddi::eval

#endif  // DSSDDI_EVAL_SIGNIFICANCE_H_
