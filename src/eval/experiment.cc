#include "eval/experiment.h"

#include <algorithm>

#include "core/suggestion_model.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace dssddi::eval {

ModelEvaluation EvaluateModel(core::SuggestionModel& model,
                              const data::SuggestionDataset& dataset,
                              const EvaluateOptions& options,
                              const core::MsModule* ms) {
  ModelEvaluation evaluation;
  evaluation.model_name = model.name();
  evaluation.ks = options.ks;

  util::Stopwatch stopwatch;
  model.Fit(dataset);
  evaluation.fit_seconds = stopwatch.ElapsedSeconds();

  const std::vector<int>& test = dataset.split.test;
  const tensor::Matrix scores = model.PredictScores(dataset, test);
  const tensor::Matrix truth = dataset.medication.GatherRows(test);
  for (int k : options.ks) {
    evaluation.ranking.push_back(ComputeRankingMetrics(scores, truth, k));
  }

  if (ms != nullptr) {
    std::vector<int> rows(scores.rows());
    for (int i = 0; i < scores.rows(); ++i) rows[i] = i;
    if (options.ss_sample > 0 && options.ss_sample < scores.rows()) {
      util::Rng rng(options.ss_seed);
      rng.Shuffle(rows);
      rows.resize(options.ss_sample);
    }
    for (int k : options.ks) {
      double total = 0.0;
      for (int row : rows) {
        total += ms->SuggestionSatisfaction(core::TopKDrugs(scores, row, k));
      }
      evaluation.suggestion_satisfaction.push_back(total / rows.size());
    }
  }
  return evaluation;
}

std::string RenderRankingTable(const std::vector<ModelEvaluation>& evaluations) {
  DSSDDI_CHECK(!evaluations.empty()) << "nothing to render";
  std::vector<std::string> header = {"Method"};
  for (int k : evaluations.front().ks) {
    header.push_back("Precision@" + std::to_string(k));
    header.push_back("Recall@" + std::to_string(k));
    header.push_back("NDCG@" + std::to_string(k));
  }
  util::TextTable table(header);
  for (const auto& eval : evaluations) {
    std::vector<double> values;
    for (const auto& metrics : eval.ranking) {
      values.push_back(metrics.precision);
      values.push_back(metrics.recall);
      values.push_back(metrics.ndcg);
    }
    table.AddNumericRow(eval.model_name, values);
  }
  return table.Render();
}

std::string RenderSsTable(const std::vector<ModelEvaluation>& evaluations) {
  DSSDDI_CHECK(!evaluations.empty()) << "nothing to render";
  std::vector<std::string> header = {"Method"};
  // Table III orders k ascending.
  std::vector<int> ks = evaluations.front().ks;
  std::vector<size_t> order(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return ks[a] < ks[b]; });
  for (size_t i : order) header.push_back("SS@" + std::to_string(ks[i]));
  util::TextTable table(header);
  for (const auto& eval : evaluations) {
    DSSDDI_CHECK(eval.suggestion_satisfaction.size() == eval.ks.size())
        << "model " << eval.model_name << " has no SS values";
    std::vector<double> values;
    for (size_t i : order) values.push_back(eval.suggestion_satisfaction[i]);
    table.AddNumericRow(eval.model_name, values);
  }
  return table.Render();
}

}  // namespace dssddi::eval
