#include "eval/model_selection.h"

#include <memory>

#include "eval/metrics.h"
#include "util/logging.h"

namespace dssddi::eval {

GridSearchResult GridSearchDssddi(const std::vector<GridSearchCandidate>& candidates,
                                  const data::SuggestionDataset& dataset, int k,
                                  const EvaluateOptions& test_options) {
  DSSDDI_CHECK(!candidates.empty()) << "grid search needs at least one candidate";
  DSSDDI_CHECK(!dataset.split.validation.empty())
      << "grid search needs a validation split";

  GridSearchResult result;
  result.validation_recalls.reserve(candidates.size());

  const tensor::Matrix validation_truth =
      dataset.medication.GatherRows(dataset.split.validation);

  std::unique_ptr<core::DssddiSystem> best_system;
  double best_recall = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto candidate = std::make_unique<core::DssddiSystem>(candidates[i].config);
    candidate->Fit(dataset);
    const tensor::Matrix scores =
        candidate->PredictScores(dataset, dataset.split.validation);
    const double recall = RecallAtK(scores, validation_truth, k);
    result.validation_recalls.push_back(recall);
    if (recall > best_recall) {
      best_recall = recall;
      result.best_index = static_cast<int>(i);
      best_system = std::move(candidate);
    }
  }

  // Test evaluation of the winner, reusing its validation-time fit (the
  // test split must not influence selection or training).
  result.test_evaluation.model_name = candidates[result.best_index].label.empty()
                                          ? best_system->name()
                                          : candidates[result.best_index].label;
  result.test_evaluation.ks = test_options.ks;
  const tensor::Matrix test_scores =
      best_system->PredictScores(dataset, dataset.split.test);
  const tensor::Matrix test_truth = dataset.medication.GatherRows(dataset.split.test);
  for (int test_k : test_options.ks) {
    result.test_evaluation.ranking.push_back(
        ComputeRankingMetrics(test_scores, test_truth, test_k));
  }
  return result;
}

std::vector<GridSearchCandidate> DefaultDssddiGrid(const core::DssddiConfig& base) {
  std::vector<GridSearchCandidate> grid;
  for (float delta : {0.5f, 1.0f, 2.0f}) {
    for (float scale : {0.3f, 0.6f, 1.0f}) {
      GridSearchCandidate candidate;
      candidate.config = base;
      candidate.config.md.delta = delta;
      candidate.config.md.ddi_embedding_scale = scale;
      candidate.label = "delta=" + std::to_string(delta).substr(0, 3) +
                        " scale=" + std::to_string(scale).substr(0, 3);
      grid.push_back(std::move(candidate));
    }
  }
  return grid;
}

}  // namespace dssddi::eval
