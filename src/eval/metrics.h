#ifndef DSSDDI_EVAL_METRICS_H_
#define DSSDDI_EVAL_METRICS_H_

#include <vector>

#include "tensor/matrix.h"

namespace dssddi::eval {

/// Ranking metrics for one batch of patients (paper Eq. 21-24).
/// `scores`: n x |V| model outputs; `truth`: n x |V| 0/1 medication use.
/// Precision@k and Recall@k are micro-averaged over patients exactly as
/// in Eq. 21-22; NDCG@k averages per-patient NDCG over patients with at
/// least one ground-truth drug.
double PrecisionAtK(const tensor::Matrix& scores, const tensor::Matrix& truth, int k);
double RecallAtK(const tensor::Matrix& scores, const tensor::Matrix& truth, int k);
double NdcgAtK(const tensor::Matrix& scores, const tensor::Matrix& truth, int k);

/// All three at once (shares the sorting work).
struct RankingMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double ndcg = 0.0;
};
RankingMetrics ComputeRankingMetrics(const tensor::Matrix& scores,
                                     const tensor::Matrix& truth, int k);

}  // namespace dssddi::eval

#endif  // DSSDDI_EVAL_METRICS_H_
