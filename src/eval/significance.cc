#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::eval {
namespace {

MetricCi Summarize(std::vector<double> samples, double confidence) {
  MetricCi ci;
  const double n = static_cast<double>(samples.size());
  for (double s : samples) ci.mean += s;
  ci.mean /= n;
  for (double s : samples) ci.stddev += (s - ci.mean) * (s - ci.mean);
  ci.stddev = std::sqrt(ci.stddev / std::max(1.0, n - 1.0));
  std::sort(samples.begin(), samples.end());
  const double tail = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const int index = std::clamp(static_cast<int>(q * (n - 1)), 0,
                                 static_cast<int>(n - 1));
    return samples[index];
  };
  ci.lower = at(tail);
  ci.upper = at(1.0 - tail);
  return ci;
}

std::vector<int> Resample(int n, util::Rng& rng) {
  std::vector<int> rows(n);
  for (int& r : rows) r = static_cast<int>(rng.NextBelow(n));
  return rows;
}

}  // namespace

BootstrapResult BootstrapRankingMetrics(const tensor::Matrix& scores,
                                        const tensor::Matrix& truth, int k,
                                        const BootstrapOptions& options) {
  DSSDDI_CHECK(scores.rows() == truth.rows() && scores.cols() == truth.cols())
      << "scores/truth shape mismatch";
  DSSDDI_CHECK(options.num_resamples > 1) << "need at least 2 resamples";
  util::Rng rng(options.seed);

  std::vector<double> precision, recall, ndcg;
  precision.reserve(options.num_resamples);
  recall.reserve(options.num_resamples);
  ndcg.reserve(options.num_resamples);
  for (int b = 0; b < options.num_resamples; ++b) {
    const std::vector<int> rows = Resample(scores.rows(), rng);
    const tensor::Matrix s = scores.GatherRows(rows);
    const tensor::Matrix t = truth.GatherRows(rows);
    const RankingMetrics metrics = ComputeRankingMetrics(s, t, k);
    precision.push_back(metrics.precision);
    recall.push_back(metrics.recall);
    ndcg.push_back(metrics.ndcg);
  }

  BootstrapResult result;
  result.num_resamples = options.num_resamples;
  result.confidence = options.confidence;
  result.precision = Summarize(std::move(precision), options.confidence);
  result.recall = Summarize(std::move(recall), options.confidence);
  result.ndcg = Summarize(std::move(ndcg), options.confidence);
  return result;
}

double PairedBootstrapWinRate(const tensor::Matrix& scores_a,
                              const tensor::Matrix& scores_b,
                              const tensor::Matrix& truth, int k,
                              const BootstrapOptions& options) {
  DSSDDI_CHECK(scores_a.SameShape(scores_b) && scores_a.rows() == truth.rows())
      << "paired bootstrap needs aligned matrices";
  util::Rng rng(options.seed);
  int wins = 0;
  for (int b = 0; b < options.num_resamples; ++b) {
    const std::vector<int> rows = Resample(truth.rows(), rng);
    const tensor::Matrix t = truth.GatherRows(rows);
    const double recall_a = RecallAtK(scores_a.GatherRows(rows), t, k);
    const double recall_b = RecallAtK(scores_b.GatherRows(rows), t, k);
    if (recall_a > recall_b) ++wins;
  }
  return static_cast<double>(wins) / options.num_resamples;
}

}  // namespace dssddi::eval
