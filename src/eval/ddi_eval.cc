#include "eval/ddi_eval.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::eval {

DdiSignEvaluation EvaluateDdiSignPrediction(const graph::SignedGraph& ddi,
                                            const core::DdiModuleConfig& config,
                                            const DdiSignEvalOptions& options) {
  DSSDDI_CHECK(options.test_fraction > 0.0 && options.test_fraction < 1.0)
      << "test_fraction must lie in (0, 1)";
  util::Rng rng(options.seed);

  // Shuffle the +/-1 edges and split; explicit 0-edges are a training
  // artifact and never part of the evaluation.
  std::vector<graph::SignedEdge> interactions;
  for (const auto& edge : ddi.edges()) {
    if (edge.sign != graph::EdgeSign::kNone) interactions.push_back(edge);
  }
  DSSDDI_CHECK(interactions.size() >= 5) << "too few interaction edges to split";
  for (size_t i = interactions.size(); i > 1; --i) {
    std::swap(interactions[i - 1], interactions[rng.NextBelow(i)]);
  }
  const int num_test =
      std::max(1, static_cast<int>(interactions.size() * options.test_fraction));
  std::vector<graph::SignedEdge> test_edges(interactions.begin(),
                                            interactions.begin() + num_test);
  std::vector<graph::SignedEdge> train_edges(interactions.begin() + num_test,
                                             interactions.end());

  const graph::SignedGraph train_graph(ddi.num_vertices(), train_edges);
  core::DdiModule module(train_graph, config);

  DdiSignEvaluation result;
  result.num_test_edges = num_test;
  result.num_train_edges = static_cast<int>(train_edges.size());
  result.final_train_mse = module.Train();

  double mse = 0.0;
  int correct = 0;
  std::vector<double> synergistic_scores, antagonistic_scores;
  for (const auto& edge : test_edges) {
    const double predicted = module.PredictInteraction(edge.u, edge.v);
    const double target = static_cast<double>(static_cast<int>(edge.sign));
    mse += (predicted - target) * (predicted - target);

    // Nearest of {-1, 0, +1}.
    const double predicted_sign =
        predicted > 0.5 ? 1.0 : (predicted < -0.5 ? -1.0 : 0.0);
    if (predicted_sign == target) ++correct;

    if (edge.sign == graph::EdgeSign::kSynergistic) {
      synergistic_scores.push_back(predicted);
    } else {
      antagonistic_scores.push_back(predicted);
    }
  }
  result.mse = mse / num_test;
  result.sign_accuracy = static_cast<double>(correct) / num_test;

  if (!synergistic_scores.empty() && !antagonistic_scores.empty()) {
    double wins = 0.0;
    for (double s : synergistic_scores) {
      for (double a : antagonistic_scores) {
        if (s > a) {
          wins += 1.0;
        } else if (s == a) {
          wins += 0.5;
        }
      }
    }
    result.auc = wins / (static_cast<double>(synergistic_scores.size()) *
                         static_cast<double>(antagonistic_scores.size()));
  }
  return result;
}

}  // namespace dssddi::eval
