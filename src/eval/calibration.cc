#include "eval/calibration.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/table.h"

namespace dssddi::eval {

CalibrationReport ComputeCalibration(const tensor::Matrix& scores,
                                     const tensor::Matrix& truth, int num_bins) {
  DSSDDI_CHECK(scores.SameShape(truth)) << "scores/truth shape mismatch";
  DSSDDI_CHECK(num_bins > 0) << "need at least one bin";
  CalibrationReport report;
  report.bins.resize(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    report.bins[b].lower = static_cast<double>(b) / num_bins;
    report.bins[b].upper = static_cast<double>(b + 1) / num_bins;
  }

  const long long total = scores.size();
  if (total == 0) return report;

  double brier = 0.0;
  for (int i = 0; i < scores.rows(); ++i) {
    for (int j = 0; j < scores.cols(); ++j) {
      const double p = scores.At(i, j);
      const double y = truth.At(i, j) > 0.5f ? 1.0 : 0.0;
      DSSDDI_CHECK(p >= 0.0 && p <= 1.0) << "score outside [0,1]: " << p;
      brier += (p - y) * (p - y);

      const int bin = std::min(num_bins - 1, static_cast<int>(p * num_bins));
      auto& entry = report.bins[bin];
      ++entry.count;
      entry.mean_confidence += p;
      entry.empirical_rate += y;
    }
  }
  report.brier = brier / static_cast<double>(total);

  double ece = 0.0;
  for (auto& bin : report.bins) {
    if (bin.count == 0) continue;
    bin.mean_confidence /= static_cast<double>(bin.count);
    bin.empirical_rate /= static_cast<double>(bin.count);
    const double weight = static_cast<double>(bin.count) / static_cast<double>(total);
    ece += weight * std::fabs(bin.mean_confidence - bin.empirical_rate);
  }
  report.ece = ece;
  return report;
}

std::string RenderCalibration(const CalibrationReport& report) {
  util::TextTable table({"bin", "count", "mean confidence", "empirical rate"});
  for (const auto& bin : report.bins) {
    table.AddRow({"[" + util::FormatDouble(bin.lower, 1) + ", " +
                      util::FormatDouble(bin.upper, 1) + ")",
                  std::to_string(bin.count),
                  util::FormatDouble(bin.mean_confidence, 4),
                  util::FormatDouble(bin.empirical_rate, 4)});
  }
  std::string out = table.Render();
  out += "Brier score: " + util::FormatDouble(report.brier, 4) +
         "   ECE: " + util::FormatDouble(report.ece, 4) + "\n";
  return out;
}

}  // namespace dssddi::eval
