#ifndef DSSDDI_EVAL_DDI_EVAL_H_
#define DSSDDI_EVAL_DDI_EVAL_H_

#include <cstdint>

#include "core/ddi_module.h"
#include "graph/signed_graph.h"

namespace dssddi::eval {

/// Held-out evaluation of DDIGCN as a drug-drug interaction predictor
/// (the secondary task of the DDI-model literature the paper builds on:
/// given a drug pair, predict synergy / antagonism).
struct DdiSignEvaluation {
  /// MSE of the predicted interaction score against the true sign on the
  /// held-out edges (the DDI module's own training objective, Eq. 6).
  double mse = 0.0;
  /// Fraction of held-out interaction edges whose predicted score is
  /// nearest to the true sign among {-1, 0, +1}.
  double sign_accuracy = 0.0;
  /// Probability that a random held-out synergistic edge scores higher
  /// than a random held-out antagonistic one (ROC-AUC of the separation).
  double auc = 0.5;
  int num_test_edges = 0;
  int num_train_edges = 0;
  float final_train_mse = 0.0f;
};

struct DdiSignEvalOptions {
  /// Fraction of the +/-1 edges held out for testing.
  double test_fraction = 0.2;
  uint64_t seed = 71;
};

/// Splits the interaction edges of `ddi`, trains a DDI module on the
/// retained subgraph, and scores the held-out edges. The evaluation keeps
/// every vertex (drug identity embeddings exist regardless of degree).
DdiSignEvaluation EvaluateDdiSignPrediction(const graph::SignedGraph& ddi,
                                            const core::DdiModuleConfig& config,
                                            const DdiSignEvalOptions& options = {});

}  // namespace dssddi::eval

#endif  // DSSDDI_EVAL_DDI_EVAL_H_
