#ifndef DSSDDI_EVAL_MODEL_SELECTION_H_
#define DSSDDI_EVAL_MODEL_SELECTION_H_

#include <string>
#include <vector>

#include "core/dssddi_system.h"
#include "data/dataset.h"
#include "eval/experiment.h"

namespace dssddi::eval {

/// One hyperparameter combination to try.
struct GridSearchCandidate {
  core::DssddiConfig config;
  std::string label;
};

struct GridSearchResult {
  /// Index of the winning candidate.
  int best_index = -1;
  /// Validation recall@k of every candidate, aligned with the input.
  std::vector<double> validation_recalls;
  /// Test-split evaluation of the winning (already fitted) model.
  ModelEvaluation test_evaluation;
};

/// The paper's protocol (Section V-A2): every candidate is fitted on the
/// training split, scored by recall@k on the validation split, and only
/// the winner is evaluated on the test split. The winner is fitted once —
/// its validation-time fit is reused for the test evaluation, so the test
/// split influences nothing.
GridSearchResult GridSearchDssddi(const std::vector<GridSearchCandidate>& candidates,
                                  const data::SuggestionDataset& dataset, int k,
                                  const EvaluateOptions& test_options = {});

/// Convenience: builds a candidate grid over the counterfactual loss
/// weight delta and the DDI-embedding scale (the two knobs with no
/// paper-prescribed value), holding `base` fixed otherwise.
std::vector<GridSearchCandidate> DefaultDssddiGrid(const core::DssddiConfig& base);

}  // namespace dssddi::eval

#endif  // DSSDDI_EVAL_MODEL_SELECTION_H_
