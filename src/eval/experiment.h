#ifndef DSSDDI_EVAL_EXPERIMENT_H_
#define DSSDDI_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/ms_module.h"
#include "core/suggestion_model.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace dssddi::eval {

/// One model's metrics at every requested k.
struct ModelEvaluation {
  std::string model_name;
  std::vector<int> ks;
  std::vector<RankingMetrics> ranking;   // aligned with ks
  std::vector<double> suggestion_satisfaction;  // aligned with ks (may be empty)
  double fit_seconds = 0.0;
};

struct EvaluateOptions {
  std::vector<int> ks = {6, 5, 4, 3, 2, 1};  // Table I order
  /// When > 0, SS@k is computed on this many test patients (subgraph
  /// queries are per-patient; sampling keeps Table III tractable).
  int ss_sample = 0;
  uint64_t ss_seed = 99;
};

/// Fits the model on the dataset's training split and evaluates it on the
/// test split. When `ms` is non-null, also computes SS@k over (sampled)
/// test patients.
ModelEvaluation EvaluateModel(core::SuggestionModel& model,
                              const data::SuggestionDataset& dataset,
                              const EvaluateOptions& options,
                              const core::MsModule* ms = nullptr);

/// Renders a Table I-style block: one row per model, columns
/// P@k / R@k / N@k for each k.
std::string RenderRankingTable(const std::vector<ModelEvaluation>& evaluations);

/// Renders a Table III-style block: one row per model, SS@k columns.
std::string RenderSsTable(const std::vector<ModelEvaluation>& evaluations);

}  // namespace dssddi::eval

#endif  // DSSDDI_EVAL_EXPERIMENT_H_
