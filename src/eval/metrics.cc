#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace dssddi::eval {

namespace {

std::vector<int> TopK(const tensor::Matrix& scores, int row, int k) {
  std::vector<int> order(scores.cols());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores.At(row, a) > scores.At(row, b);
  });
  order.resize(std::min<int>(k, scores.cols()));
  return order;
}

}  // namespace

RankingMetrics ComputeRankingMetrics(const tensor::Matrix& scores,
                                     const tensor::Matrix& truth, int k) {
  DSSDDI_CHECK(scores.SameShape(truth)) << "scores/truth shape mismatch";
  DSSDDI_CHECK(k > 0) << "k must be positive";
  const int n = scores.rows();
  long long hits = 0;
  long long suggested = 0;
  long long relevant = 0;
  double ndcg_total = 0.0;
  int ndcg_count = 0;

  for (int i = 0; i < n; ++i) {
    const std::vector<int> top = TopK(scores, i, k);
    int truth_count = 0;
    for (int v = 0; v < truth.cols(); ++v) {
      if (truth.At(i, v) > 0.5f) ++truth_count;
    }
    double dcg = 0.0;
    int row_hits = 0;
    for (size_t s = 0; s < top.size(); ++s) {
      if (truth.At(i, top[s]) > 0.5f) {
        ++row_hits;
        dcg += 1.0 / std::log2(static_cast<double>(s) + 2.0);
      }
    }
    hits += row_hits;
    suggested += static_cast<long long>(top.size());
    relevant += truth_count;
    if (truth_count > 0) {
      double idcg = 0.0;
      const int ideal = std::min<int>(truth_count, static_cast<int>(top.size()));
      for (int s = 0; s < ideal; ++s) {
        idcg += 1.0 / std::log2(static_cast<double>(s) + 2.0);
      }
      ndcg_total += dcg / idcg;
      ++ndcg_count;
    }
  }

  RankingMetrics metrics;
  metrics.precision = suggested > 0 ? static_cast<double>(hits) / suggested : 0.0;
  metrics.recall = relevant > 0 ? static_cast<double>(hits) / relevant : 0.0;
  metrics.ndcg = ndcg_count > 0 ? ndcg_total / ndcg_count : 0.0;
  return metrics;
}

double PrecisionAtK(const tensor::Matrix& scores, const tensor::Matrix& truth, int k) {
  return ComputeRankingMetrics(scores, truth, k).precision;
}

double RecallAtK(const tensor::Matrix& scores, const tensor::Matrix& truth, int k) {
  return ComputeRankingMetrics(scores, truth, k).recall;
}

double NdcgAtK(const tensor::Matrix& scores, const tensor::Matrix& truth, int k) {
  return ComputeRankingMetrics(scores, truth, k).ndcg;
}

}  // namespace dssddi::eval
