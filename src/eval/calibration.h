#ifndef DSSDDI_EVAL_CALIBRATION_H_
#define DSSDDI_EVAL_CALIBRATION_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace dssddi::eval {

/// One reliability-diagram bin.
struct CalibrationBin {
  double lower = 0.0;       // bin range [lower, upper)
  double upper = 0.0;
  long long count = 0;      // predictions falling in the bin
  double mean_confidence = 0.0;
  double empirical_rate = 0.0;  // fraction of positives among them
};

/// Probability-calibration summary for a score matrix against 0/1 truth:
/// a clinical decision support system's scores are read as probabilities
/// by doctors, so miscalibration is a safety issue even when ranking
/// metrics look good.
struct CalibrationReport {
  /// Mean squared error of the probabilistic forecast (lower is better;
  /// 0.25 is the score of always predicting 0.5).
  double brier = 0.0;
  /// Expected Calibration Error: bin-weighted |confidence - accuracy|.
  double ece = 0.0;
  std::vector<CalibrationBin> bins;
};

/// Computes Brier score and ECE over every (patient, drug) cell.
/// `scores` entries must lie in [0, 1].
CalibrationReport ComputeCalibration(const tensor::Matrix& scores,
                                     const tensor::Matrix& truth,
                                     int num_bins = 10);

/// Renders the reliability diagram as an aligned text table.
std::string RenderCalibration(const CalibrationReport& report);

}  // namespace dssddi::eval

#endif  // DSSDDI_EVAL_CALIBRATION_H_
