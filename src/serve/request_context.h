#ifndef DSSDDI_SERVE_REQUEST_CONTEXT_H_
#define DSSDDI_SERVE_REQUEST_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>

#include "obs/trace.h"

namespace dssddi::serve {

/// Why a request is allowed to be dropped: interactive traffic (a
/// clinician waiting on a screen) outranks best-effort traffic (batch
/// re-scoring, prefetchers) when deadlines tie.
enum class RequestPriority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

inline const char* RequestPriorityName(RequestPriority priority) {
  return priority == RequestPriority::kBatch ? "batch" : "interactive";
}

/// Per-request metadata created once at the edge (the HTTP front-end,
/// or any direct service caller) and carried unchanged through every
/// layer — admission, batching, scoring — so each layer can act on the
/// same clock instead of re-deriving budgets:
///
///  - `arrival` anchors queueing-time measurements,
///  - `deadline` is the absolute instant after which the answer is
///    worthless (time_point::max() = no deadline; the default, so plain
///    library callers opt in rather than out),
///  - `priority` breaks ties between equally-urgent requests,
///  - `trace_id` names the request in logs, stats and wire responses,
///  - `trace`, when the edge's sampler selected this request, collects
///    per-stage timings as the layers stamp it (null — the common case —
///    makes every stamp a no-op; see obs/trace.h).
///
/// All times are steady_clock: deadlines must survive wall-clock jumps.
struct RequestContext {
  using Clock = std::chrono::steady_clock;

  Clock::time_point arrival{};  // epoch for library callers; edge stamps now
  Clock::time_point deadline = Clock::time_point::max();
  RequestPriority priority = RequestPriority::kInteractive;
  uint64_t trace_id = 0;
  std::shared_ptr<obs::Trace> trace;

  /// Edge constructor: stamps arrival now and converts a relative budget
  /// into the absolute deadline. `budget_ms` <= 0 means no deadline.
  static RequestContext AtEdge(
      int64_t budget_ms,
      RequestPriority priority = RequestPriority::kInteractive,
      uint64_t trace_id = 0) {
    RequestContext context;
    context.arrival = Clock::now();
    if (budget_ms > 0) {
      context.deadline = context.arrival + std::chrono::milliseconds(budget_ms);
    }
    context.priority = priority;
    context.trace_id = trace_id;
    return context;
  }

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  bool ExpiredAt(Clock::time_point now) const {
    return has_deadline() && now >= deadline;
  }

  /// Milliseconds of budget left at `now`; +infinity without a deadline,
  /// negative once blown.
  double RemainingMs(Clock::time_point now) const {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline - now).count();
  }
};

/// Completion error for a request dropped because its deadline passed
/// before scoring started. The HTTP front-end maps it to 504; direct
/// service callers catch it off the future. Distinct from load shedding
/// (which never invokes the completion at all).
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_REQUEST_CONTEXT_H_
