#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/suggestion_model.h"
#include "io/binary.h"
#include "util/logging.h"

namespace dssddi::serve {
namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Cache/singleflight key for a request: patient id and k plus a hash of
/// the feature bytes, so an id reused with updated patient state can
/// never be answered from the stale entry.
CacheKey KeyFor(const Request& request) {
  return CacheKey{request.patient_id, request.k,
                  io::Fnv1a64(reinterpret_cast<const char*>(request.features.data()),
                              request.features.size() * sizeof(float))};
}

/// Nearest-rank percentile over an unsorted sample copy.
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

}  // namespace

SuggestionService::SuggestionService(io::InferenceBundle bundle,
                                     const ServiceOptions& options)
    : bundle_(std::move(bundle)),
      ms_(bundle_.ddi, bundle_.ms_alpha,
          static_cast<core::ExplainerKind>(bundle_.ms_explainer)),
      options_(options) {
  DSSDDI_CHECK(bundle_.num_drugs() > 0) << "serving an empty bundle";
  if (options_.latency_window < 16) options_.latency_window = 16;
  latency_ring_.resize(options_.latency_window, 0.0);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<SuggestionCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.num_threads));
  RequestBatcher::Options batch_options;
  batch_options.max_batch_size = options_.max_batch_size;
  batch_options.max_wait_us = options_.batch_wait_us;
  batcher_ = std::make_unique<RequestBatcher>(
      batch_options, [this](std::vector<PendingRequest> batch) {
        pool_->Submit([this, shared = std::make_shared<std::vector<PendingRequest>>(
                                 std::move(batch))]() mutable {
          HandleBatch(std::move(*shared));
        });
      });
}

std::future<core::Suggestion> SuggestionService::Submit(Request request) {
  const auto start = std::chrono::steady_clock::now();

  if (static_cast<int>(request.features.size()) != feature_width() ||
      request.k < 1) {
    std::promise<core::Suggestion> rejected;
    rejected.set_exception(std::make_exception_ptr(std::invalid_argument(
        "bad request: " + std::to_string(request.features.size()) +
        " features (want " + std::to_string(feature_width()) +
        "), k=" + std::to_string(request.k))));
    return rejected.get_future();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Cache only fully-explained suggestions so a hit can answer any
  // explain=true request verbatim; explanation-free requests always go
  // through scoring (they are cheap) and never pollute the cache.
  CacheKey key;
  if (cache_ && request.patient_id >= 0 && request.explain) {
    key = KeyFor(request);
    core::Suggestion cached;
    if (cache_->Get(key, &cached)) {
      RecordLatency(MillisSince(start));
      completed_.fetch_add(1, std::memory_order_relaxed);
      std::promise<core::Suggestion> ready;
      ready.set_value(std::move(cached));
      return ready.get_future();
    }
    // Singleflight: if the same keyed query is already being scored,
    // ride on that computation instead of scoring it again.
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        it->second.push_back(Waiter{std::promise<core::Suggestion>{}, start});
        return it->second.back().promise.get_future();
      }
      inflight_.emplace(key, std::vector<Waiter>{});
    }
  }
  return batcher_->Enqueue(std::move(request), key);
}

std::vector<core::Suggestion> SuggestionService::SubmitBatch(
    std::vector<Request> requests) {
  std::vector<std::future<core::Suggestion>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) futures.push_back(Submit(std::move(request)));
  std::vector<core::Suggestion> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

void SuggestionService::HandleBatch(std::vector<PendingRequest> batch) {
  if (batch.empty()) return;
  const int width = feature_width();
  const int total = static_cast<int>(batch.size());
  const int tile =
      options_.score_tile > 0 ? std::min(options_.score_tile, total) : total;

  // Score the batch tile-by-tile: each pass's decoder interaction matrix
  // (tile * num_drugs rows) stays CPU-cache resident, while the batch as
  // a whole amortized one queue handoff. Rows are independent in
  // PredictScores, so tiling leaves every result bit-identical.
  for (int begin = 0; begin < total; begin += tile) {
    const int rows = std::min(tile, total - begin);
    tensor::Matrix x(rows, width);
    for (int i = 0; i < rows; ++i) {
      const auto& features = batch[begin + i].request.features;
      std::copy(features.begin(), features.end(), x.RowPtr(i));
    }
    const tensor::Matrix scores = bundle_.PredictScores(x);

    for (int i = 0; i < rows; ++i) {
      PendingRequest& pending = batch[begin + i];
      core::Suggestion suggestion = BuildSuggestion(scores, i, pending.request);
      if (cache_ && pending.request.explain && pending.request.patient_id >= 0) {
        cache_->Put(pending.key, suggestion);
        ResolveInflight(pending.key, suggestion);
      }
      RecordLatency(MillisSince(pending.enqueue_time));
      completed_.fetch_add(1, std::memory_order_relaxed);
      pending.promise.set_value(std::move(suggestion));
    }
  }
}

core::Suggestion SuggestionService::BuildSuggestion(const tensor::Matrix& scores,
                                                    int row, const Request& request) {
  core::Suggestion suggestion;
  suggestion.drugs = core::TopKDrugs(scores, row, request.k);
  suggestion.scores.reserve(suggestion.drugs.size());
  for (int d : suggestion.drugs) suggestion.scores.push_back(scores.At(row, d));
  if (request.explain) suggestion.explanation = ms_.Explain(suggestion.drugs);
  return suggestion;
}

void SuggestionService::ResolveInflight(const CacheKey& key,
                                        const core::Suggestion& value) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    waiters = std::move(it->second);
    inflight_.erase(it);
  }
  for (Waiter& waiter : waiters) {
    RecordLatency(MillisSince(waiter.start));
    completed_.fetch_add(1, std::memory_order_relaxed);
    waiter.promise.set_value(value);
  }
}

void SuggestionService::RecordLatency(double millis) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ring_[latency_next_] = millis;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  if (latency_count_ < latency_ring_.size()) ++latency_count_;
}

ServiceStats SuggestionService::Stats() const {
  ServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  const RequestBatcher::DispatchCounters dispatch = batcher_->dispatch_counters();
  stats.batches = dispatch.batches;
  stats.mean_batch_size =
      stats.batches == 0
          ? 0.0
          : static_cast<double>(dispatch.requests) / stats.batches;
  if (cache_) {
    const CacheCounters counters = cache_->Counters();
    stats.cache_hits = counters.hits;
    stats.cache_misses = counters.misses;
    stats.cache_hit_rate = counters.hit_rate();
  }
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.completed) / stats.uptime_seconds
                  : 0.0;
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    std::vector<double> sample(latency_ring_.begin(),
                               latency_ring_.begin() + latency_count_);
    stats.p50_latency_ms = Percentile(sample, 0.50);
    stats.p99_latency_ms = Percentile(std::move(sample), 0.99);
  }
  stats.num_threads = pool_->num_threads();
  return stats;
}

}  // namespace dssddi::serve
