#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/suggestion_model.h"
#include "io/binary.h"
#include "obs/kernel_timing.h"
#include "obs/trace.h"
#include "tensor/kernels/gemm_backend.h"
#include "util/logging.h"

namespace dssddi::serve {
namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Cache/singleflight key for a request: patient id and k plus a hash of
/// the feature bytes, so an id reused with updated patient state can
/// never be answered from the stale entry. `generation` is the version
/// of the snapshot the submitter loaded: because it comes from the same
/// atomic load that scoring validity is judged by, a post-reload
/// submitter keys with the new version and can never hit (or be hit by)
/// a pre-reload entry — no ordering window against the cache flush.
CacheKey KeyFor(const Request& request, uint64_t generation) {
  return CacheKey{request.patient_id, request.k,
                  io::Fnv1a64(reinterpret_cast<const char*>(request.features.data()),
                              request.features.size() * sizeof(float)),
                  generation};
}

}  // namespace

SuggestionService::SuggestionService(io::InferenceBundle bundle,
                                     const ServiceOptions& options)
    : options_(options),
      admission_(options.admission),
      registry_(std::make_shared<obs::Registry>()),
      collector_(std::make_shared<obs::TraceCollector>(
          registry_, options.trace_ring_capacity)),
      recorder_(std::make_shared<obs::FlightRecorder>(options.flight_recorder)),
      latency_(registry_->GetHistogram(
          "dssddi_service_latency_ms",
          "Successful-completion latency (submit to completion) in "
          "milliseconds; feeds the admission gate's p50")) {
  DSSDDI_CHECK(bundle.num_drugs() > 0) << "serving an empty bundle";
  if (options_.quantization != "auto") {
    tensor::kernels::QuantMode mode;
    DSSDDI_CHECK(tensor::kernels::ParseQuantMode(options_.quantization, &mode))
        << "unknown ServiceOptions::quantization '" << options_.quantization
        << "' (want auto, none or int8)";
    bundle.quantization = static_cast<int>(mode);
  }
  snapshot_ = std::make_shared<const ModelSnapshot>(std::move(bundle),
                                                    version_.load());
  bundle_load_ms_gauge_ = registry_->GetGauge(
      "dssddi_bundle_load_ms",
      "Wall-clock load cost of the currently served bundle in milliseconds "
      "(0 for in-process bundles)");
  bundle_bytes_mapped_gauge_ = registry_->GetGauge(
      "dssddi_bundle_bytes_mapped",
      "Bytes the served bundle holds mmap'd (v4 zero-copy bundles only; "
      "0 on the heap paths)");
  bundle_generation_gauge_ = registry_->GetGauge(
      "dssddi_bundle_generation",
      "Model snapshot version currently being served; advances by one per "
      "successful reload");
  PublishBundleGauges(*snapshot_);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<SuggestionCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.num_threads));
  RequestBatcher::Options batch_options;
  batch_options.max_batch_size = options_.max_batch_size;
  batch_options.max_wait_us = options_.batch_wait_us;
  batcher_ = std::make_unique<RequestBatcher>(
      batch_options,
      [this](std::vector<PendingRequest> batch) {
        pool_->Submit([this, shared = std::make_shared<std::vector<PendingRequest>>(
                                 std::move(batch))]() mutable {
          HandleBatch(std::move(*shared));
        });
      },
      // Expiry sweep sink: complete each swept request (and its
      // coalesced waiters) with DeadlineExceeded on the dispatcher
      // thread — cheap, no scoring, keeps in-flight accounting exact.
      [this](std::vector<PendingRequest> expired) {
        for (PendingRequest& pending : expired) ExpireRequest(pending);
      });
  if (options_.slo_enabled) {
    obs::SloEngineOptions slo_options = options_.slo;
    if (slo_options.objectives.empty()) {
      slo_options.objectives =
          obs::DefaultSuggestObjectives(options_.slo_default_p99_ms);
    }
    // The engine closes the loop: burn-rate transitions flip the
    // admission gate's degraded bit, so overload visible in the SLO
    // windows tightens admission before the objective is blown for good.
    slo_ = std::make_unique<obs::SloEngine>(
        registry_, std::move(slo_options),
        [this](bool degraded) { admission_.set_degraded(degraded); },
        recorder_);
  }
}

std::shared_ptr<const ModelSnapshot> SuggestionService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

void SuggestionService::SubmitAsync(Request request, Completion done) {
  DSSDDI_CHECK(done != nullptr) << "SubmitAsync needs a completion";
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = this->snapshot();

  if (static_cast<int>(request.features.size()) != snapshot->feature_width() ||
      request.k < 1) {
    done(core::Suggestion{}, snapshot,
         std::make_exception_ptr(std::invalid_argument(
             "bad request: " + std::to_string(request.features.size()) +
             " features (want " + std::to_string(snapshot->feature_width()) +
             "), k=" + std::to_string(request.k))));
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Fail-fast on a deadline that is already blown at submission: even a
  // cache hit would be delivered late, so don't touch the cache or the
  // singleflight table for it.
  if (request.context.ExpiredAt(std::chrono::steady_clock::now())) {
    PendingRequest pending;
    pending.request = std::move(request);
    pending.done = std::move(done);
    ExpireRequest(pending, /*registered=*/false);
    return;
  }

  // Cache only fully-explained suggestions so a hit can answer any
  // explain=true request verbatim; explanation-free requests always go
  // through scoring (they are cheap) and never pollute the cache.
  CacheKey key;
  if (cache_ && request.patient_id >= 0 && request.explain) {
    key = KeyFor(request, snapshot->version);
    core::Suggestion cached;
    if (cache_->Get(key, &cached)) {
      RecordLatency(MillisSince(start));
      completed_.fetch_add(1, std::memory_order_relaxed);
      done(std::move(cached), snapshot, nullptr);
      return;
    }
    // Singleflight: if the same keyed query is already being scored,
    // ride on that computation instead of scoring it again.
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        it->second.push_back(Waiter{std::move(done), start});
        return;
      }
      inflight_.emplace(key, std::vector<Waiter>{});
    }
  }
  batcher_->Enqueue(std::move(request), key, std::move(done));
}

AdmissionController::Decision SuggestionService::TrySubmitAsync(
    Request request, Completion done) {
  obs::TraceSpan admission_span(request.context.trace, obs::Stage::kAdmission);
  const double remaining_ms =
      request.context.RemainingMs(std::chrono::steady_clock::now());
  const AdmissionController::Decision decision = admission_.AdmitWithDeadline(
      InFlight(), QueueDepth(), remaining_ms, latency_.CachedP50Ms(),
      request.context.priority);
  admission_span.Stop();
  if (decision != AdmissionController::Decision::kAdmit) return decision;
  SubmitAsync(std::move(request), std::move(done));
  return decision;
}

std::future<core::Suggestion> SuggestionService::Submit(Request request) {
  auto promise = std::make_shared<std::promise<core::Suggestion>>();
  std::future<core::Suggestion> future = promise->get_future();
  SubmitAsync(std::move(request),
              [promise](core::Suggestion suggestion,
                        std::shared_ptr<const ModelSnapshot> /*snapshot*/,
                        std::exception_ptr error) {
                if (error) {
                  promise->set_exception(error);
                } else {
                  promise->set_value(std::move(suggestion));
                }
              });
  return future;
}

std::vector<core::Suggestion> SuggestionService::SubmitBatch(
    std::vector<Request> requests) {
  std::vector<std::future<core::Suggestion>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) futures.push_back(Submit(std::move(request)));
  std::vector<core::Suggestion> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

io::Status SuggestionService::Reload(io::InferenceBundle bundle) {
  if (bundle.num_drugs() <= 0) {
    return io::Status::Error("reload rejected: new bundle has no drugs");
  }
  // One reload at a time; readers are never blocked by this mutex.
  std::lock_guard<std::mutex> lock(reload_mutex_);
  const std::shared_ptr<const ModelSnapshot> current = snapshot();
  const int new_width = bundle.cluster_centroids.cols();
  if (new_width != current->feature_width()) {
    return io::Status::Error(
        "reload rejected: feature width " + std::to_string(new_width) +
        " != served width " + std::to_string(current->feature_width()));
  }
  const uint64_t next_version =
      version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto next = std::make_shared<const ModelSnapshot>(std::move(bundle),
                                                    next_version);
  // Correctness does not depend on ordering here: cache keys carry the
  // snapshot version their submitter loaded, so v2-keyed entries can
  // only ever hold v2-scored results. BumpGeneration is reclamation —
  // it frees the now-unreachable v1 entries (and advances the cache's
  // own generation for standalone users of that API).
  std::atomic_store(&snapshot_, std::static_pointer_cast<const ModelSnapshot>(next));
  if (cache_) cache_->BumpGeneration();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  PublishBundleGauges(*next);
  // Reloads are rare, load-bearing events — exactly what the flight
  // recorder exists for. total_ms carries the bundle's load cost so a
  // /logz reader sees what the swap actually paid.
  recorder_->Record(obs::LogSeverity::kInfo, obs::LogReason::kReload,
                    "reload", 200, 0, next->bundle.load_ms, nullptr,
                    next->bundle.format_version == 4
                        ? "installed v4 mmap bundle"
                        : (next->bundle.format_version == 3
                               ? "installed v3 heap bundle"
                               : "installed in-process bundle"));
  return io::Status::Ok();
}

void SuggestionService::PublishBundleGauges(const ModelSnapshot& snapshot) {
  bundle_load_ms_gauge_->Set(snapshot.bundle.load_ms);
  bundle_bytes_mapped_gauge_->Set(
      static_cast<double>(snapshot.bundle.bytes_mapped()));
  bundle_generation_gauge_->Set(static_cast<double>(snapshot.version));
}

size_t SuggestionService::QueueDepth() const {
  return batcher_->QueueDepth() + pool_->QueueDepth();
}

uint64_t SuggestionService::InFlight() const {
  const uint64_t requests = requests_.load(std::memory_order_relaxed);
  const uint64_t completed = completed_.load(std::memory_order_relaxed);
  return requests > completed ? requests - completed : 0;
}

void SuggestionService::HandleBatch(std::vector<PendingRequest> batch) {
  if (batch.empty()) return;
  // Last pre-scoring expiry check: the batcher swept at cut time, but
  // waiting for a worker costs time too — a request that expired in the
  // pool queue must not have a matrix row built for it.
  const auto pickup = std::chrono::steady_clock::now();
  {
    size_t live = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].request.context.ExpiredAt(pickup)) {
        ExpireRequest(batch[i]);
      } else {
        if (live != i) batch[live] = std::move(batch[i]);
        ++live;
      }
    }
    batch.resize(live);
    if (batch.empty()) return;
  }
  // Stamp queue_wait (enqueue to worker pickup) on sampled requests and
  // learn whether this batch needs kernel-time attribution at all — the
  // untraced batch must not pay for a timing window.
  bool any_traced = false;
  for (const PendingRequest& pending : batch) {
    if (obs::Trace* trace = pending.request.context.trace.get()) {
      any_traced = true;
      trace->AddStageNs(
          obs::Stage::kQueueWait,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  pickup - pending.enqueue_time)
                  .count()));
    }
  }
  // Pin one model generation for the whole batch. A concurrent Reload
  // cannot free it (shared_ptr) and every row of this batch is scored by
  // the same weights.
  const std::shared_ptr<const ModelSnapshot> snapshot = this->snapshot();
  const int width = snapshot->feature_width();
  const int total = static_cast<int>(batch.size());

  // Score the whole batch in one kernel-backed matrix pass. The
  // hand-rolled score tiling that used to live here is gone: keeping the
  // working set cache-resident is the GEMM backend's job now (the
  // blocked backend tiles internally; the reference backend streams).
  // Rows are independent in PredictScores, so batch grouping leaves
  // every result bit-identical.
  int finished = 0;  // requests whose completion already fired
  try {
    tensor::Matrix x(total, width);
    for (int i = 0; i < total; ++i) {
      const auto& features = batch[i].request.features;
      std::copy(features.begin(), features.end(), x.RowPtr(i));
    }
    tensor::Matrix scores;
    if (any_traced) {
      // Kernel time is spent once for the whole batch, so each sampled
      // member is stamped with the full batch's GEMM nanoseconds — the
      // cost the request actually waited behind, not a per-row share.
      obs::KernelTimingWindow kernel_window;
      scores = snapshot->bundle.PredictScores(x);
      const uint64_t kernel_ns = kernel_window.ns();
      if (kernel_ns > 0) {
        for (const PendingRequest& pending : batch) {
          if (obs::Trace* trace = pending.request.context.trace.get()) {
            trace->AddStageNs(obs::Stage::kGemm, kernel_ns);
          }
        }
      }
    } else {
      scores = snapshot->bundle.PredictScores(x);
    }

    for (int i = 0; i < total; ++i) {
      PendingRequest& pending = batch[i];
      obs::TraceSpan epilogue_span(pending.request.context.trace,
                                   obs::Stage::kEpilogue);
      core::Suggestion suggestion =
          BuildSuggestion(*snapshot, scores, i, pending.request);
      epilogue_span.Stop();
      if (cache_ && pending.request.explain && pending.request.patient_id >= 0) {
        // Cache only when the submit-time key generation matches the
        // snapshot that scored the row. After a racing Reload they can
        // differ (submitted against v1, scored by v2): caching the v2
        // result under a v1 key would let a pre-reload submitter hit
        // it and serialize v2 scores against v1 names/version. The
        // coalesced waiters are still resolved — they asked the same
        // question and this is its (new-model) answer.
        if (pending.key.generation == snapshot->version) {
          cache_->Put(pending.key, suggestion);
        }
        ResolveInflight(pending.key, suggestion, snapshot);
      }
      RecordLatency(MillisSince(pending.enqueue_time));
      completed_.fetch_add(1, std::memory_order_relaxed);
      // Count this request finished BEFORE invoking its completion,
      // and swallow completion throws here like every other delivery
      // path does — the catch below is for scoring failures only and
      // must never redeliver a completion's own exception to the rest
      // of the batch.
      ++finished;
      try {
        pending.Complete(std::move(suggestion), snapshot);
      } catch (...) {
        DSSDDI_LOG(Warning) << "completion threw; continuing batch";
      }
    }
  } catch (...) {
    // Scoring threw (bad_alloc under pressure, a pathological explain).
    // Every not-yet-finished request — and anyone coalesced onto one —
    // must still complete, or its HTTP connection hangs forever and the
    // in-flight count never drains (eventually pinning the admission
    // gate shut).
    const std::exception_ptr error = std::current_exception();
    DSSDDI_LOG(Warning) << "batch of " << total << " failed after "
                        << finished << " completions; failing the rest";
    recorder_->Record(obs::LogSeverity::kError, obs::LogReason::kScoringError,
                      "service", 500, 0, 0.0, nullptr,
                      "batch scoring threw; failing remaining requests");
    for (int i = finished; i < total; ++i) {
      PendingRequest& pending = batch[i];
      if (cache_ && pending.request.explain && pending.request.patient_id >= 0) {
        FailInflight(pending.key, error);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      try {
        pending.Fail(error);
      } catch (...) {
        DSSDDI_LOG(Warning) << "failure completion threw; continuing";
      }
    }
  }
}

void SuggestionService::ExpireRequest(PendingRequest& pending,
                                      bool registered) {
  if (pending.request.context.trace) {
    pending.request.context.trace->SetStatus(504);
  }
  const std::exception_ptr error = std::make_exception_ptr(DeadlineExceeded(
      "deadline exceeded before scoring (trace " +
      std::to_string(pending.request.context.trace_id) + ")"));
  if (registered && cache_ && pending.request.explain &&
      pending.request.patient_id >= 0) {
    FailInflight(pending.key, error);
  }
  expired_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  // Library callers leave `arrival` at the epoch default; report 0
  // rather than a nonsense duration for those.
  const double waited_ms =
      pending.request.context.arrival == RequestContext::Clock::time_point{}
          ? 0.0
          : MillisSince(pending.request.context.arrival);
  recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kExpired,
                    "service", 504, pending.request.context.trace_id,
                    waited_ms, pending.request.context.trace.get(),
                    "deadline passed after admission, before scoring");
  // Expired waits are deliberately NOT recorded as latency: the tracker
  // feeds the admission gate's p50 service-time estimate, which doomed
  // requests' queue time would inflate into a shed-everything spiral.
  try {
    pending.Fail(error);
  } catch (...) {
    DSSDDI_LOG(Warning) << "expiry completion threw; continuing";
  }
}

core::Suggestion SuggestionService::BuildSuggestion(
    const ModelSnapshot& snapshot, const tensor::Matrix& scores, int row,
    const Request& request) {
  core::Suggestion suggestion;
  suggestion.drugs = core::TopKDrugs(scores, row, request.k);
  suggestion.scores.reserve(suggestion.drugs.size());
  for (int d : suggestion.drugs) suggestion.scores.push_back(scores.At(row, d));
  if (request.explain) suggestion.explanation = snapshot.ms.Explain(suggestion.drugs);
  return suggestion;
}

void SuggestionService::ResolveInflight(
    const CacheKey& key, const core::Suggestion& value,
    const std::shared_ptr<const ModelSnapshot>& snapshot) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    waiters = std::move(it->second);
    inflight_.erase(it);
  }
  for (Waiter& waiter : waiters) {
    RecordLatency(MillisSince(waiter.start));
    completed_.fetch_add(1, std::memory_order_relaxed);
    // One throwing waiter must not abandon the rest — they have already
    // been moved out of the map and would be lost with the unwind.
    try {
      waiter.done(value, snapshot, nullptr);
    } catch (...) {
      DSSDDI_LOG(Warning) << "coalesced completion threw; continuing";
    }
  }
}

void SuggestionService::FailInflight(const CacheKey& key,
                                     const std::exception_ptr& error) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    waiters = std::move(it->second);
    inflight_.erase(it);
  }
  for (Waiter& waiter : waiters) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    try {
      waiter.done(core::Suggestion{}, nullptr, error);
    } catch (...) {
      DSSDDI_LOG(Warning) << "coalesced failure completion threw; continuing";
    }
  }
}

void SuggestionService::RecordLatency(double millis) {
  latency_.Record(millis);
}

ServiceStats SuggestionService::Stats() const {
  ServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  const RequestBatcher::DispatchCounters dispatch = batcher_->dispatch_counters();
  stats.batches = dispatch.batches;
  stats.mean_batch_size =
      stats.batches == 0
          ? 0.0
          : static_cast<double>(dispatch.requests) / stats.batches;
  if (cache_) {
    const CacheCounters counters = cache_->Counters();
    stats.cache_hits = counters.hits;
    stats.cache_misses = counters.misses;
    stats.cache_hit_rate = counters.hit_rate();
  }
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  const AdmissionController::Counters admission = admission_.counters();
  stats.admitted = admission.admitted;
  stats.shed = admission.shed;
  stats.deadline_shed = admission.deadline_shed;
  stats.degraded_shed = admission.degraded_shed;
  stats.slo_degraded = admission_.degraded();
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.in_flight = InFlight();
  stats.queue_depth = QueueDepth();
  stats.model_version = snapshot()->version;
  stats.reloads = reloads_.load(std::memory_order_relaxed);
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.completed) / stats.uptime_seconds
                  : 0.0;
  const LatencyTracker::Percentiles latency = latency_.Snapshot();
  stats.p50_latency_ms = latency.p50_ms;
  stats.p90_latency_ms = latency.p90_ms;
  stats.p99_latency_ms = latency.p99_ms;
  stats.max_latency_ms = latency.max_ms;
  stats.num_threads = pool_->num_threads();
  stats.gemm_backend = tensor::kernels::ActiveBackendName();
  const std::shared_ptr<const ModelSnapshot> current = snapshot();
  stats.quantization = current->quantization_name();
  if (current->quant_mode() == tensor::kernels::QuantMode::kInt8) {
    const auto append_errors = [&stats](const io::QuantizedMlp& mlp) {
      for (const auto& layer : mlp.layers) {
        stats.quant_layer_max_abs_error.push_back(layer.max_abs_error);
      }
    };
    append_errors(current->bundle.patient_fc.quantized);
    append_errors(current->bundle.decoder.quantized);
  }
  stats.bundle_format = current->format_name();
  stats.bundle_load_ms = current->bundle.load_ms;
  stats.bundle_bytes_mapped = current->bundle.bytes_mapped();
  return stats;
}

}  // namespace dssddi::serve
