#ifndef DSSDDI_SERVE_REQUEST_BATCHER_H_
#define DSSDDI_SERVE_REQUEST_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/dssddi_system.h"
#include "serve/suggestion_cache.h"

namespace dssddi::serve {

/// One top-k suggestion query as it enters the serving layer.
struct Request {
  /// Stable external id used as the cache key; negative bypasses the cache.
  int64_t patient_id = -1;
  /// Raw patient feature row (width must match the trained model).
  std::vector<float> features;
  int k = 3;
  /// When false, the (comparatively expensive) Medical Support subgraph
  /// explanation is skipped and only drugs + scores are filled.
  bool explain = true;
};

/// A request travelling through the batcher with its completion handle.
struct PendingRequest {
  Request request;
  /// Cache/singleflight key, precomputed by the submitter for keyed
  /// requests (patient_id >= 0); default-initialized otherwise.
  CacheKey key;
  std::promise<core::Suggestion> promise;
  std::chrono::steady_clock::time_point enqueue_time;
};

/// Groups single-patient requests into micro-batches so model scoring
/// runs one matrix pass per batch instead of one per request. A
/// dedicated dispatcher thread collects arrivals; a batch is cut as soon
/// as `max_batch_size` requests are waiting or the oldest request has
/// waited `max_wait_us`, whichever comes first. The cut batch is handed
/// to `handler` (which typically posts it onto a ThreadPool).
///
/// The destructor stops intake and flushes everything still queued, so
/// no promise is ever abandoned.
class RequestBatcher {
 public:
  struct Options {
    int max_batch_size = 32;
    /// How long the dispatcher holds an underfull batch open waiting for
    /// company. 0 dispatches whatever is queued immediately.
    int max_wait_us = 200;
  };

  using BatchHandler = std::function<void(std::vector<PendingRequest>)>;

  RequestBatcher(const Options& options, BatchHandler handler);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Queues a request; the returned future is fulfilled once its batch
  /// has been scored. `key` travels alongside so the scorer does not
  /// recompute it.
  std::future<core::Suggestion> Enqueue(Request request, CacheKey key = {});

  struct DispatchCounters {
    uint64_t batches = 0;
    uint64_t requests = 0;
  };

  /// Both counters from one lock acquisition — a consistent snapshot
  /// (reading them separately could interleave with a dispatch).
  DispatchCounters dispatch_counters() const;

  uint64_t batches_dispatched() const;
  uint64_t requests_dispatched() const;

 private:
  void DispatchLoop();

  Options options_;
  BatchHandler handler_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;
  uint64_t batches_dispatched_ = 0;
  uint64_t requests_dispatched_ = 0;

  std::thread dispatcher_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_REQUEST_BATCHER_H_
