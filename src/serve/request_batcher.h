#ifndef DSSDDI_SERVE_REQUEST_BATCHER_H_
#define DSSDDI_SERVE_REQUEST_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/dssddi_system.h"
#include "serve/request_context.h"
#include "serve/suggestion_cache.h"

namespace dssddi::serve {

struct ModelSnapshot;  // defined in serve/service.h

/// One top-k suggestion query as it enters the serving layer.
struct Request {
  /// Stable external id used as the cache key; negative bypasses the cache.
  int64_t patient_id = -1;
  /// Raw patient feature row (width must match the trained model).
  std::vector<float> features;
  int k = 3;
  /// When false, the (comparatively expensive) Medical Support subgraph
  /// explanation is skipped and only drugs + scores are filled.
  bool explain = true;
  /// Edge-created deadline/priority/trace metadata, carried through the
  /// whole pipeline. Default-constructed = no deadline (library callers).
  RequestContext context;
};

/// Completion sink for one request. On success `error` is null and
/// `snapshot` pins the model generation that produced the suggestion
/// (callers serializing the result must read names/version from it, not
/// from the service's current snapshot — a reload may have swapped in
/// between); `snapshot` may be null in contexts without a model (bare
/// batcher tests, failures). On failure the suggestion is
/// default-constructed and `error` carries the exception. Invoked exactly
/// once, from whichever thread finishes the request (a scoring worker, or
/// the submitter itself on a cache hit) — implementations must be safe to
/// run anywhere, must not block, and should not throw (an escaping
/// exception is swallowed and logged, never redelivered).
using Completion =
    std::function<void(core::Suggestion suggestion,
                       std::shared_ptr<const ModelSnapshot> snapshot,
                       std::exception_ptr error)>;

/// A request travelling through the batcher with its completion handle.
struct PendingRequest {
  Request request;
  /// Cache/singleflight key, precomputed by the submitter for keyed
  /// requests (patient_id >= 0); default-initialized otherwise.
  CacheKey key;
  Completion done;
  std::chrono::steady_clock::time_point enqueue_time;

  void Complete(core::Suggestion suggestion,
                std::shared_ptr<const ModelSnapshot> snapshot = nullptr) {
    done(std::move(suggestion), std::move(snapshot), nullptr);
  }
  void Fail(std::exception_ptr error) {
    done(core::Suggestion{}, nullptr, error);
  }
};

/// Groups single-patient requests into micro-batches so model scoring
/// runs one matrix pass per batch instead of one per request. A
/// dedicated dispatcher thread collects arrivals; a batch is cut as soon
/// as `max_batch_size` requests are waiting or the oldest request has
/// waited `max_wait_us`, whichever comes first. The cut batch is handed
/// to `handler` (which typically posts it onto a ThreadPool).
///
/// Deadline awareness (only when an `expired_handler` is supplied): at
/// every cut, requests whose RequestContext deadline has already passed
/// are swept out of the queue — before scoring, without consuming a
/// batch slot — and handed to `expired_handler` instead; the remaining
/// live requests are batched oldest-deadline-first (priority, then
/// arrival, break ties; no-deadline requests sort last), so the work
/// most likely to still matter on delivery is scored first. One batch
/// slot per cut is reserved for the longest-waiting request regardless
/// of urgency, so sustained deadline traffic can delay a no-deadline
/// request by at most queue_len/max_batch cuts, never starve it.
///
/// The destructor stops intake and flushes everything still queued, so
/// no completion is ever abandoned.
class RequestBatcher {
 public:
  struct Options {
    int max_batch_size = 32;
    /// How long the dispatcher holds an underfull batch open waiting for
    /// company. 0 dispatches whatever is queued immediately.
    int max_wait_us = 200;
  };

  using BatchHandler = std::function<void(std::vector<PendingRequest>)>;
  /// Receives the expired sweep of a cut; each pending request must
  /// still be completed (typically failed with DeadlineExceeded).
  using ExpiredHandler = std::function<void(std::vector<PendingRequest>)>;

  RequestBatcher(const Options& options, BatchHandler handler,
                 ExpiredHandler expired_handler = nullptr);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Queues a request; `done` fires once its batch has been scored.
  /// `key` travels alongside so the scorer does not recompute it.
  void Enqueue(Request request, CacheKey key, Completion done);

  struct DispatchCounters {
    uint64_t batches = 0;
    uint64_t requests = 0;
    /// Requests swept to the expired handler instead of a batch slot.
    uint64_t expired = 0;
  };

  /// Both counters from one lock acquisition — a consistent snapshot
  /// (reading them separately could interleave with a dispatch).
  DispatchCounters dispatch_counters() const;

  uint64_t batches_dispatched() const;
  uint64_t requests_dispatched() const;

  /// Requests queued but not yet cut into a batch.
  size_t QueueDepth() const;

 private:
  void DispatchLoop();

  Options options_;
  BatchHandler handler_;
  ExpiredHandler expired_handler_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;
  uint64_t batches_dispatched_ = 0;
  uint64_t requests_dispatched_ = 0;
  uint64_t expired_dispatched_ = 0;

  std::thread dispatcher_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_REQUEST_BATCHER_H_
