#ifndef DSSDDI_SERVE_SERVICE_H_
#define DSSDDI_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dssddi_system.h"
#include "core/ms_module.h"
#include "io/inference_bundle.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/admission_controller.h"
#include "serve/latency_tracker.h"
#include "serve/request_batcher.h"
#include "serve/request_context.h"
#include "serve/suggestion_cache.h"
#include "serve/thread_pool.h"
#include "util/stopwatch.h"

namespace dssddi::serve {

struct ServiceOptions {
  /// Worker threads scoring batches. 0 uses the hardware concurrency.
  int num_threads = 0;
  /// Micro-batch ceiling; 1 disables batching (one matrix pass per request).
  int max_batch_size = 32;
  /// How long an underfull batch waits for more requests, in microseconds.
  int batch_wait_us = 200;
  /// Total cached suggestions across shards; 0 disables the cache (and
  /// with it in-flight coalescing, which rides on the same keys).
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  /// How many slowest traces (and how many recent errored traces) the
  /// /tracez ring retains.
  size_t trace_ring_capacity = 32;
  /// Load-shedding bounds applied by TrySubmitAsync (both 0 = admit
  /// everything; Submit/SubmitAsync always bypass admission).
  AdmissionController::Options admission;
  /// Scoring arithmetic for the initial bundle: "auto" follows the
  /// process-wide mode (DSSDDI_QUANTIZE / kernels::SetQuantMode),
  /// "none"/"float" pins the float kernels, "int8" pins the quantized
  /// path. Reload decides per incoming bundle (see /admin/reload's
  /// "quantize" field), so the mode can be flipped live.
  std::string quantization = "auto";
  /// Flight-recorder ring (wide events at completion + every error
  /// path), served at /logz. Always on — recording is lock-free and
  /// allocation-free, so there is nothing to turn off.
  obs::FlightRecorderOptions flight_recorder;
  /// SLO engine: burn-rate evaluation of declarative objectives, with a
  /// degraded output wired into the admission controller. Empty
  /// `slo.objectives` uses DefaultSuggestObjectives(slo_default_p99_ms).
  /// `slo_enabled = false` skips the engine entirely (no thread, the
  /// gate never degrades).
  bool slo_enabled = true;
  double slo_default_p99_ms = 250.0;
  obs::SloEngineOptions slo;
};

/// Point-in-time service health snapshot.
struct ServiceStats {
  uint64_t requests = 0;       // accepted by Submit
  uint64_t completed = 0;      // completions fired
  uint64_t batches = 0;        // matrix passes dispatched
  double mean_batch_size = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Requests that attached to an identical in-flight query instead of
  /// being scored again (singleflight coalescing).
  uint64_t coalesced = 0;
  /// Admission gate outcomes (TrySubmitAsync callers only). Load sheds
  /// (`shed`, depth bounds -> 429) and deadline sheds (`deadline_shed`,
  /// remaining budget < observed p50 -> 504) are counted separately.
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deadline_shed = 0;
  /// kBatch arrivals shed because the SLO engine held the gate degraded
  /// (subset of `shed`), plus the gate's current degraded state.
  uint64_t degraded_shed = 0;
  bool slo_degraded = false;
  /// Requests dropped after admission because their deadline passed
  /// before scoring started (batcher/worker expiry sweeps; completed
  /// with DeadlineExceeded, never scored, never a batch slot).
  uint64_t expired = 0;
  /// Accepted requests not yet completed / waiting for a worker, at the
  /// instant of the snapshot.
  uint64_t in_flight = 0;
  uint64_t queue_depth = 0;
  /// Model snapshot bookkeeping: version starts at 1 and increases by
  /// one per successful hot reload.
  uint64_t model_version = 0;
  uint64_t reloads = 0;
  double uptime_seconds = 0.0;
  double qps = 0.0;            // completed / uptime
  double p50_latency_ms = 0.0;
  double p90_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;  // over the latency window
  int num_threads = 0;
  /// Active GEMM backend ("reference" / "blocked") scoring every batch,
  /// so perf numbers are never attributed to the wrong kernel.
  std::string gemm_backend;
  /// Scoring arithmetic of the current snapshot: "none" (float) or
  /// "int8" — snapshot-resolved, so it reports what is actually served
  /// even while the process-wide mode is being flipped.
  std::string quantization;
  /// Per-layer max |w - dequant(quant(w))| across the served MLPs
  /// (patient encoder layers first, then decoder layers). Empty when
  /// serving the float path.
  std::vector<double> quant_layer_max_abs_error;
  /// Provenance of the served bundle: "v4" (flat mmap file), "v3"
  /// (framed heap file) or "memory" (assembled in process, never loaded
  /// from disk).
  std::string bundle_format;
  /// Wall-clock cost of the load that produced the served bundle, and
  /// the bytes it holds mapped (0 on the heap paths).
  double bundle_load_ms = 0.0;
  uint64_t bundle_bytes_mapped = 0;
};

/// One immutable, shareable model generation: the frozen bundle plus the
/// Medical Support explainer built over its DDI graph. In-flight batches
/// pin the snapshot they score against via shared_ptr, so a hot reload
/// never pulls weights out from under a request.
struct ModelSnapshot {
  io::InferenceBundle bundle;
  core::MsModule ms;  // references bundle.ddi; must stay declared after it
  uint64_t version = 1;

  ModelSnapshot(io::InferenceBundle b, uint64_t v)
      : bundle(std::move(b)),
        // A v4 bundle carries its interaction skeleton as a CSR view
        // into the mapping (pinned by bundle.mapping, which this
        // snapshot owns), so the explainer is built without re-sorting
        // the DDI edges; heap bundles derive it exactly as before.
        ms(bundle.has_ms_skeleton
               ? core::MsModule(
                     bundle.ddi, bundle.ms_skeleton, bundle.ms_alpha,
                     static_cast<core::ExplainerKind>(bundle.ms_explainer))
               : core::MsModule(
                     bundle.ddi, bundle.ms_alpha,
                     static_cast<core::ExplainerKind>(bundle.ms_explainer))),
        version(v) {
    // Pin the quantization mode for this model generation: an "auto"
    // bundle resolves the process-wide mode exactly once, here, so a
    // later SetQuantMode / env change can never alter the arithmetic of
    // a snapshot already in flight — the next reload picks it up.
    if (bundle.quantization == io::kQuantizeAuto) {
      bundle.quantization =
          static_cast<int>(tensor::kernels::ActiveQuantMode());
    }
    if (quant_mode() == tensor::kernels::QuantMode::kInt8) {
      bundle.EnsureQuantized();
    }
  }

  int feature_width() const { return bundle.cluster_centroids.cols(); }
  tensor::kernels::QuantMode quant_mode() const {
    return bundle.EffectiveQuantMode();
  }
  const char* quantization_name() const {
    return tensor::kernels::QuantModeName(quant_mode());
  }
  /// "v4" / "v3" for disk-loaded bundles, "memory" for in-process ones.
  const char* format_name() const {
    switch (bundle.format_version) {
      case 4: return "v4";
      case 3: return "v3";
      default: return "memory";
    }
  }
};

/// Concurrent top-k suggestion server over a frozen io::InferenceBundle.
///
/// Requests enter through `Submit` (future-based), `SubmitAsync`
/// (callback-based, what the HTTP front-end uses) or `SubmitBatch`
/// (blocking convenience). A RequestBatcher groups concurrent arrivals
/// into micro-batches, a ThreadPool scores each batch in one
/// `InferenceBundle::PredictScores` pass on the active GEMM backend
/// (cache blocking lives inside the kernel layer, not up here), and a
/// sharded LRU SuggestionCache short-circuits repeat (patient_id, k)
/// queries. While a keyed query is being scored, identical arrivals
/// coalesce onto it (singleflight) instead of queuing duplicate work.
/// Results are bit-identical to calling `InferenceBundle::Suggest` (and
/// therefore `DssddiSystem::Suggest`) per patient: batching changes only
/// how rows are grouped, never the per-row arithmetic.
///
/// The model lives behind an atomically swapped shared_ptr snapshot:
/// `Reload` installs a new bundle without draining in-flight requests —
/// batches already cut keep the snapshot they grabbed alive, new
/// arrivals score against the new weights, and the suggestion cache is
/// version-keyed and flushed so a post-reload query can never be
/// answered from pre-reload results.
///
/// `TrySubmitAsync` additionally runs the AdmissionController gate:
/// when in-flight or queue-depth bounds are hit the request is shed
/// (kShedLoad, nothing enqueued) so overload degrades into fast
/// rejections instead of unbounded queues, and a deadline-carrying
/// request whose remaining budget cannot cover the observed p50 service
/// time is shed as kShedDeadline before it wastes a batch slot.
///
/// Deadline propagation past admission: each request's RequestContext
/// travels with it, the batcher sweeps already-expired requests out
/// *before* scoring (completing them with DeadlineExceeded, counted in
/// `expired`) and forms batches oldest-deadline-first, and the scoring
/// worker re-checks on pickup. A singleflight waiter coalesced onto a
/// leader inherits the leader's fate: if the leader expires, everyone
/// riding it fails with DeadlineExceeded too (they asked the identical
/// question; under deadline pressure re-scoring it for a follower would
/// be exactly the wasted work expiry exists to avoid).
///
/// Thread-safety: every public method may be called from any number of
/// threads. Destruction flushes every in-flight request before
/// returning, so no completion is left dangling.
class SuggestionService {
 public:
  explicit SuggestionService(io::InferenceBundle bundle,
                             const ServiceOptions& options = {});
  ~SuggestionService() = default;

  SuggestionService(const SuggestionService&) = delete;
  SuggestionService& operator=(const SuggestionService&) = delete;

  /// Asynchronously answers one request. The future carries the
  /// suggestion, or an exception for malformed input (wrong feature
  /// width, k < 1).
  std::future<core::Suggestion> Submit(Request request);

  /// Callback flavor of Submit: `done` fires exactly once, from
  /// whichever thread completes the request, with either the suggestion
  /// or the rejection exception. Never blocks the caller on scoring.
  void SubmitAsync(Request request, Completion done);

  /// Admission-gated SubmitAsync. On kShedLoad / kShedDeadline the
  /// request is dropped and `done` is NOT invoked; the HTTP front-end
  /// maps those to 429 Too Many Requests / 504 Gateway Timeout.
  AdmissionController::Decision TrySubmitAsync(Request request,
                                               Completion done);

  /// Submits all requests, waits, and returns the suggestions in order.
  std::vector<core::Suggestion> SubmitBatch(std::vector<Request> requests);

  /// Atomically replaces the served model. Fails (and serves the old
  /// snapshot untouched) if the new bundle is empty or its feature width
  /// differs from the current one — in-flight requests were validated
  /// against that width. On success the suggestion cache generation is
  /// bumped and flushed and `model_version` advances.
  io::Status Reload(io::InferenceBundle bundle);

  ServiceStats Stats() const;

  /// The current model snapshot (never null). Callers may hold it as
  /// long as they like; it stays valid across reloads.
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  const ServiceOptions& options() const { return options_; }
  uint64_t model_version() const { return snapshot()->version; }
  int feature_width() const { return snapshot()->feature_width(); }

  /// Requests waiting in the batcher plus batches waiting for a worker.
  size_t QueueDepth() const;

  /// The service's metrics registry: every histogram /statsz reads is in
  /// here, so a /metricsz render and a Stats() call can never disagree.
  /// Shared so exposition layers (and trace finalizers) may outlive the
  /// service.
  const std::shared_ptr<obs::Registry>& registry() const { return registry_; }
  /// Trace sampling/retention for this service's pipeline.
  const std::shared_ptr<obs::TraceCollector>& trace_collector() const {
    return collector_;
  }
  /// The flight recorder backing /logz (never null). Shared so the HTTP
  /// layer can record its own parse/overload events into the same ring.
  const std::shared_ptr<obs::FlightRecorder>& flight_recorder() const {
    return recorder_;
  }
  /// The SLO engine behind /sloz; null when `slo_enabled` was false.
  obs::SloEngine* slo_engine() const { return slo_.get(); }
  const AdmissionController& admission() const { return admission_; }

 private:
  struct Waiter {
    Completion done;
    std::chrono::steady_clock::time_point start;
  };

  void HandleBatch(std::vector<PendingRequest> batch);
  /// Completes one already-expired request with DeadlineExceeded;
  /// counts it expired + completed. `registered` says whether the
  /// request's key was entered in the singleflight table (batcher/worker
  /// sweeps) — pass false on the pre-registration fail-fast path, whose
  /// default-constructed key must never be looked up.
  void ExpireRequest(PendingRequest& pending, bool registered = true);
  core::Suggestion BuildSuggestion(const ModelSnapshot& snapshot,
                                   const tensor::Matrix& scores, int row,
                                   const Request& request);
  /// Fulfils everyone coalesced onto `key` with copies of `value`.
  void ResolveInflight(const CacheKey& key, const core::Suggestion& value,
                       const std::shared_ptr<const ModelSnapshot>& snapshot);
  /// Fails everyone coalesced onto `key` (scoring threw for the leader).
  void FailInflight(const CacheKey& key, const std::exception_ptr& error);
  void RecordLatency(double millis);
  uint64_t InFlight() const;
  /// Stamps the bundle-provenance gauges (load_ms, bytes mapped, model
  /// generation) from a freshly installed snapshot — constructor and
  /// every successful Reload.
  void PublishBundleGauges(const ModelSnapshot& snapshot);

  ServiceOptions options_;
  AdmissionController admission_;

  /// Declared before every component that records into them (and before
  /// the pool/batcher whose destructors flush completions), so they are
  /// constructed first and destroyed last: a completion firing during
  /// shutdown can still stamp its trace and record its latency.
  std::shared_ptr<obs::Registry> registry_;
  std::shared_ptr<obs::TraceCollector> collector_;
  std::shared_ptr<obs::FlightRecorder> recorder_;

  /// Bundle-provenance gauges, registered once at construction; pointers
  /// are stable for the registry's lifetime.
  obs::Gauge* bundle_load_ms_gauge_ = nullptr;
  obs::Gauge* bundle_bytes_mapped_gauge_ = nullptr;
  obs::Gauge* bundle_generation_gauge_ = nullptr;

  /// Swapped only by Reload; read via std::atomic_load everywhere.
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::atomic<uint64_t> version_{1};
  std::atomic<uint64_t> reloads_{0};
  std::mutex reload_mutex_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> expired_{0};
  util::Stopwatch uptime_;

  std::mutex inflight_mutex_;
  std::unordered_map<CacheKey, std::vector<Waiter>, CacheKeyHash> inflight_;

  /// Successful-completion latency only: expired requests never feed it,
  /// so the cached p50 the admission gate consults stays an estimate of
  /// real service time, not of how long doomed requests sat in queues.
  LatencyTracker latency_;

  // Shutdown order (reverse of declaration): the batcher stops first and
  // flushes its queue into the pool, the pool then drains and joins, and
  // only then do the cache and snapshot go away.
  std::unique_ptr<SuggestionCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<RequestBatcher> batcher_;

  /// Declared last so its evaluator thread stops before anything it
  /// observes (registry histograms, the admission gate, the recorder)
  /// is torn down. Null when slo_enabled is false.
  std::unique_ptr<obs::SloEngine> slo_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_SERVICE_H_
