#ifndef DSSDDI_SERVE_SERVICE_H_
#define DSSDDI_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/dssddi_system.h"
#include "core/ms_module.h"
#include "io/inference_bundle.h"
#include "serve/request_batcher.h"
#include "serve/suggestion_cache.h"
#include "serve/thread_pool.h"
#include "util/stopwatch.h"

namespace dssddi::serve {

struct ServiceOptions {
  /// Worker threads scoring batches. 0 uses the hardware concurrency.
  int num_threads = 0;
  /// Micro-batch ceiling; 1 disables batching (one matrix pass per request).
  int max_batch_size = 32;
  /// How long an underfull batch waits for more requests, in microseconds.
  int batch_wait_us = 200;
  /// Total cached suggestions across shards; 0 disables the cache (and
  /// with it in-flight coalescing, which rides on the same keys).
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  /// Scoring tile: a dispatched batch is scored `score_tile` rows per
  /// matrix pass. Small tiles keep the decoder's interaction matrix
  /// (tile x num_drugs rows) inside the CPU cache; batching still
  /// amortizes queue handoffs across the whole batch. 0 scores the
  /// batch in one pass.
  int score_tile = 8;
  /// Ring-buffer size for latency percentiles (most recent completions).
  size_t latency_window = 1 << 15;
};

/// Point-in-time service health snapshot.
struct ServiceStats {
  uint64_t requests = 0;       // accepted by Submit
  uint64_t completed = 0;      // futures fulfilled
  uint64_t batches = 0;        // matrix passes dispatched
  double mean_batch_size = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Requests that attached to an identical in-flight query instead of
  /// being scored again (singleflight coalescing).
  uint64_t coalesced = 0;
  double uptime_seconds = 0.0;
  double qps = 0.0;            // completed / uptime
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int num_threads = 0;
};

/// Concurrent top-k suggestion server over a frozen io::InferenceBundle.
///
/// Requests enter through `Submit` (future-based) or `SubmitBatch`
/// (blocking convenience). A RequestBatcher groups concurrent arrivals
/// into micro-batches, a ThreadPool scores each batch through
/// cache-tiled `InferenceBundle::PredictScores` matrix passes, and a
/// sharded LRU SuggestionCache short-circuits repeat (patient_id, k)
/// queries. While a keyed query is being scored, identical arrivals
/// coalesce onto it (singleflight) instead of queuing duplicate work.
/// Results are bit-identical to calling `InferenceBundle::Suggest` (and
/// therefore `DssddiSystem::Suggest`) per patient: batching and tiling
/// change only how rows are grouped, never the per-row arithmetic.
///
/// Thread-safety: `Submit`, `SubmitBatch` and `Stats` may be called from
/// any number of threads. Destruction flushes every in-flight request
/// before returning, so no future is left dangling.
class SuggestionService {
 public:
  explicit SuggestionService(io::InferenceBundle bundle,
                             const ServiceOptions& options = {});
  ~SuggestionService() = default;

  SuggestionService(const SuggestionService&) = delete;
  SuggestionService& operator=(const SuggestionService&) = delete;

  /// Asynchronously answers one request. The future carries the
  /// suggestion, or an exception for malformed input (wrong feature
  /// width, k < 1).
  std::future<core::Suggestion> Submit(Request request);

  /// Submits all requests, waits, and returns the suggestions in order.
  std::vector<core::Suggestion> SubmitBatch(std::vector<Request> requests);

  ServiceStats Stats() const;

  const io::InferenceBundle& bundle() const { return bundle_; }
  const ServiceOptions& options() const { return options_; }
  int feature_width() const { return bundle_.cluster_centroids.cols(); }

 private:
  struct Waiter {
    std::promise<core::Suggestion> promise;
    std::chrono::steady_clock::time_point start;
  };

  void HandleBatch(std::vector<PendingRequest> batch);
  core::Suggestion BuildSuggestion(const tensor::Matrix& scores, int row,
                                   const Request& request);
  /// Fulfils everyone coalesced onto `key` with copies of `value`.
  void ResolveInflight(const CacheKey& key, const core::Suggestion& value);
  void RecordLatency(double millis);

  io::InferenceBundle bundle_;
  core::MsModule ms_;
  ServiceOptions options_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> coalesced_{0};
  util::Stopwatch uptime_;

  std::mutex inflight_mutex_;
  std::unordered_map<CacheKey, std::vector<Waiter>, CacheKeyHash> inflight_;

  mutable std::mutex latency_mutex_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  // Shutdown order (reverse of declaration): the batcher stops first and
  // flushes its queue into the pool, the pool then drains and joins, and
  // only then do the cache and bundle go away.
  std::unique_ptr<SuggestionCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<RequestBatcher> batcher_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_SERVICE_H_
