#include "serve/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace dssddi::serve {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("ThreadPool needs at least 1 thread, got " +
                                std::to_string(num_threads));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (joined_) return;
    joined_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  DSSDDI_CHECK(task != nullptr) << "ThreadPool::Submit with empty task";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (const std::exception& e) {
      tasks_failed_.fetch_add(1, std::memory_order_relaxed);
      DSSDDI_LOG(Warning) << "ThreadPool task threw: " << e.what();
    } catch (...) {
      tasks_failed_.fetch_add(1, std::memory_order_relaxed);
      DSSDDI_LOG(Warning) << "ThreadPool task threw a non-std exception";
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace dssddi::serve
