#include "serve/request_batcher.h"

#include <utility>

#include "util/logging.h"

namespace dssddi::serve {

RequestBatcher::RequestBatcher(const Options& options, BatchHandler handler)
    : options_(options), handler_(std::move(handler)) {
  DSSDDI_CHECK(handler_ != nullptr) << "RequestBatcher needs a batch handler";
  if (options_.max_batch_size < 1) options_.max_batch_size = 1;
  if (options_.max_wait_us < 0) options_.max_wait_us = 0;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RequestBatcher::~RequestBatcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  dispatcher_.join();
}

void RequestBatcher::Enqueue(Request request, CacheKey key, Completion done) {
  DSSDDI_CHECK(done != nullptr) << "RequestBatcher::Enqueue needs a completion";
  PendingRequest pending;
  pending.request = std::move(request);
  pending.key = key;
  pending.done = std::move(done);
  pending.enqueue_time = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSSDDI_CHECK(!stopping_) << "RequestBatcher::Enqueue after shutdown";
    queue_.push_back(std::move(pending));
  }
  wake_.notify_one();
}

RequestBatcher::DispatchCounters RequestBatcher::dispatch_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {batches_dispatched_, requests_dispatched_};
}

uint64_t RequestBatcher::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_dispatched_;
}

uint64_t RequestBatcher::requests_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_dispatched_;
}

size_t RequestBatcher::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RequestBatcher::DispatchLoop() {
  const size_t max_batch = static_cast<size_t>(options_.max_batch_size);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Hold the batch open until it fills, the oldest request times out,
    // or shutdown forces a flush.
    if (options_.max_wait_us > 0) {
      const auto deadline =
          queue_.front().enqueue_time + std::chrono::microseconds(options_.max_wait_us);
      wake_.wait_until(lock, deadline, [this, max_batch] {
        return stopping_ || queue_.size() >= max_batch;
      });
    }
    std::vector<PendingRequest> batch;
    const size_t take = std::min(queue_.size(), max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++batches_dispatched_;
    requests_dispatched_ += batch.size();
    lock.unlock();
    handler_(std::move(batch));
    lock.lock();
  }
}

}  // namespace dssddi::serve
