#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace dssddi::serve {
namespace {

/// Batch-formation order: most urgent first. Deadline is the primary
/// key (no-deadline requests, deadline == max, naturally sort last),
/// priority class breaks deadline ties, arrival keeps the rest FIFO.
bool MoreUrgent(const PendingRequest& a, const PendingRequest& b) {
  const auto da = a.request.context.deadline;
  const auto db = b.request.context.deadline;
  if (da != db) return da < db;
  if (a.request.context.priority != b.request.context.priority) {
    return a.request.context.priority < b.request.context.priority;
  }
  return a.enqueue_time < b.enqueue_time;
}

}  // namespace

RequestBatcher::RequestBatcher(const Options& options, BatchHandler handler,
                               ExpiredHandler expired_handler)
    : options_(options),
      handler_(std::move(handler)),
      expired_handler_(std::move(expired_handler)) {
  DSSDDI_CHECK(handler_ != nullptr) << "RequestBatcher needs a batch handler";
  if (options_.max_batch_size < 1) options_.max_batch_size = 1;
  if (options_.max_wait_us < 0) options_.max_wait_us = 0;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RequestBatcher::~RequestBatcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  dispatcher_.join();
}

void RequestBatcher::Enqueue(Request request, CacheKey key, Completion done) {
  DSSDDI_CHECK(done != nullptr) << "RequestBatcher::Enqueue needs a completion";
  PendingRequest pending;
  pending.request = std::move(request);
  pending.key = key;
  pending.done = std::move(done);
  pending.enqueue_time = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSSDDI_CHECK(!stopping_) << "RequestBatcher::Enqueue after shutdown";
    queue_.push_back(std::move(pending));
  }
  wake_.notify_one();
}

RequestBatcher::DispatchCounters RequestBatcher::dispatch_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {batches_dispatched_, requests_dispatched_, expired_dispatched_};
}

uint64_t RequestBatcher::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_dispatched_;
}

uint64_t RequestBatcher::requests_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_dispatched_;
}

size_t RequestBatcher::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RequestBatcher::DispatchLoop() {
  const size_t max_batch = static_cast<size_t>(options_.max_batch_size);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Hold the batch open until it fills, the oldest request times out,
    // or shutdown forces a flush. The queue may have been re-ordered by
    // an earlier deadline sort, so "oldest" is a scan, not front().
    if (options_.max_wait_us > 0) {
      const auto oldest = std::min_element(
          queue_.begin(), queue_.end(),
          [](const PendingRequest& a, const PendingRequest& b) {
            return a.enqueue_time < b.enqueue_time;
          });
      const auto deadline =
          oldest->enqueue_time + std::chrono::microseconds(options_.max_wait_us);
      wake_.wait_until(lock, deadline, [this, max_batch] {
        return stopping_ || queue_.size() >= max_batch;
      });
    }

    // Expiry sweep: requests whose deadline already passed leave the
    // queue here — before scoring, without occupying one of the
    // max_batch slots below — and are completed by the expired handler.
    std::vector<PendingRequest> expired;
    const auto now = std::chrono::steady_clock::now();
    if (expired_handler_) {
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->request.context.ExpiredAt(now)) {
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      expired_dispatched_ += expired.size();
      // Stamp the sweep's cost on the sampled requests it removed: for a
      // 504 the sweep IS the stage that decided the request's fate. The
      // clock is read only when a sampled request was actually swept.
      bool any_traced = false;
      for (const PendingRequest& pending : expired) {
        if (pending.request.context.trace) any_traced = true;
      }
      if (any_traced) {
        const auto sweep_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - now)
                .count());
        for (const PendingRequest& pending : expired) {
          if (obs::Trace* trace = pending.request.context.trace.get()) {
            trace->AddStageNs(obs::Stage::kExpirySweep, sweep_ns);
          }
        }
      }
    }

    // Oldest-deadline-first batch formation over the live remainder.
    // Selection, not a full sort: only the `take` most urgent requests
    // matter (a batch is one matrix pass; within-batch order is
    // cosmetic), and this runs under the mutex Enqueue contends on.
    const auto formation_start = std::chrono::steady_clock::now();
    const size_t take = std::min(queue_.size(), max_batch);
    if (take > 0 && queue_.size() > take) {
      std::nth_element(queue_.begin(), queue_.begin() + take, queue_.end(),
                       MoreUrgent);
    }
    if (take > 1) {
      std::sort(queue_.begin(), queue_.begin() + take, MoreUrgent);
    }
    // Anti-starvation floor: once the longest-waiting request has been
    // held past the batch window it claims a slot in this cut
    // regardless of urgency. Without this, sustained deadline-carrying
    // traffic could park a no-deadline (or far-deadline) request at the
    // back of every selection forever; with it, the overdue FIFO head
    // advances every cut while the other slots stay deadline-ordered.
    if (take > 0 && queue_.size() > take) {
      const auto oldest = std::min_element(
          queue_.begin(), queue_.end(),
          [](const PendingRequest& a, const PendingRequest& b) {
            return a.enqueue_time < b.enqueue_time;
          });
      const bool overdue =
          oldest->enqueue_time + std::chrono::microseconds(options_.max_wait_us) <=
          now;
      if (overdue && static_cast<size_t>(oldest - queue_.begin()) >= take) {
        std::iter_swap(queue_.begin() + take - 1, oldest);
      }
    }
    std::vector<PendingRequest> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (!batch.empty()) {
      ++batches_dispatched_;
      requests_dispatched_ += batch.size();
      // Formation (urgency selection + assembly) is batch-wide work, so
      // every sampled member gets the cut's full cost, mirroring the
      // gemm attribution. Second clock read only when someone is sampled.
      bool any_traced = false;
      for (const PendingRequest& pending : batch) {
        if (pending.request.context.trace) any_traced = true;
      }
      if (any_traced) {
        const auto form_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - formation_start)
                .count());
        for (const PendingRequest& pending : batch) {
          if (obs::Trace* trace = pending.request.context.trace.get()) {
            trace->AddStageNs(obs::Stage::kBatchForm, form_ns);
          }
        }
      }
    }
    if (batch.empty() && expired.empty()) continue;
    lock.unlock();
    if (!expired.empty()) expired_handler_(std::move(expired));
    if (!batch.empty()) handler_(std::move(batch));
    lock.lock();
  }
}

}  // namespace dssddi::serve
