#ifndef DSSDDI_SERVE_SUGGESTION_CACHE_H_
#define DSSDDI_SERVE_SUGGESTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dssddi_system.h"

namespace dssddi::serve {

/// Cache key: which patient asked for how many drugs. Patients are
/// identified by an external id (EHR record number, cohort row, ...);
/// requests without a stable id (negative patient_id) bypass the cache.
/// `feature_hash` guards against the id outliving the patient state: a
/// query for the same patient with updated features hashes differently
/// and can never be answered from the stale entry. `generation` ties the
/// entry to one model snapshot: after a hot bundle reload the service
/// keys with the new snapshot's version, so an entry computed by the old
/// model can never answer a post-reload query even if a Put raced the
/// reload's Clear.
struct CacheKey {
  int64_t patient_id = -1;
  int k = 0;
  uint64_t feature_hash = 0;
  uint64_t generation = 0;

  bool operator==(const CacheKey& other) const {
    return patient_id == other.patient_id && k == other.k &&
           feature_hash == other.feature_hash && generation == other.generation;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    // 64-bit mix (splitmix64 finalizer) over all fields.
    uint64_t x = static_cast<uint64_t>(key.patient_id) * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(key.k);
    x ^= key.feature_hash + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    x += key.generation * 0xff51afd7ed558ccdull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Counter snapshot; all counters are cumulative since construction.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Sharded LRU cache of served suggestions. Keys hash to one of
/// `num_shards` independent shards, each with its own mutex, LRU list and
/// capacity slice, so concurrent lookups for different patients rarely
/// contend. Within a shard, eviction is strict LRU (Get refreshes
/// recency; Put of an existing key overwrites and refreshes).
///
/// Hit/miss/eviction counters are atomics, so a stats reader never takes
/// a shard lock just to observe them and a concurrent Get can never
/// publish a torn count.
class SuggestionCache {
 public:
  /// `capacity` is the total entry budget across shards (each shard gets
  /// an equal slice, at least 1). With `num_shards` == 1 the cache is a
  /// single globally-ordered LRU, which unit tests rely on.
  explicit SuggestionCache(size_t capacity, int num_shards = 8);

  SuggestionCache(const SuggestionCache&) = delete;
  SuggestionCache& operator=(const SuggestionCache&) = delete;

  /// On hit copies the cached suggestion into `*out`, refreshes recency
  /// and returns true. On miss returns false and counts a miss.
  bool Get(const CacheKey& key, core::Suggestion* out);

  /// Inserts or overwrites `key`, evicting the least-recently-used entry
  /// of the target shard when its slice is full.
  void Put(const CacheKey& key, core::Suggestion value);

  /// Drops every entry; counters are preserved.
  void Clear();

  /// Current generation, monotonically increasing from 0. Callers that
  /// embed it in CacheKey get automatic cross-generation isolation.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Hot-reload hook: advances the generation and drops every entry, so
  /// results computed against the previous model are both unreachable
  /// (new keys carry the new generation) and freed. Returns the new
  /// generation.
  uint64_t BumpGeneration();

  CacheCounters Counters() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<CacheKey, core::Suggestion>> lru;
    std::unordered_map<CacheKey, decltype(lru)::iterator, CacheKeyHash> index;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    size_t capacity = 0;
  };

  Shard& ShardFor(const CacheKey& key);

  size_t capacity_;
  std::atomic<uint64_t> generation_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_SUGGESTION_CACHE_H_
