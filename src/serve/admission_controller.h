#ifndef DSSDDI_SERVE_ADMISSION_CONTROLLER_H_
#define DSSDDI_SERVE_ADMISSION_CONTROLLER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "serve/request_context.h"

namespace dssddi::serve {

/// Load-shedding gate in front of the serving pipeline. Three
/// independent checks, all observed at admission time:
///
///  - `max_in_flight`: requests admitted but not yet completed. This is
///    the classic token gate — it caps the work (and memory: promises,
///    feature rows, batch slots) a traffic burst can pin at once.
///  - `max_queue_depth`: requests sitting in the batcher/pool queues
///    waiting for a worker. Queue depth is the earliest congestion
///    signal: once queues grow, every queued request is already paying
///    latency, so it is strictly better to shed new arrivals (HTTP 429)
///    than to let them join a line that can only get longer.
///  - deadline feasibility: a request whose remaining latency budget
///    cannot cover even the observed median service time is already
///    lost — admitting it burns a batch slot to produce an answer the
///    client will have abandoned. These sheds are counted separately
///    (`deadline_shed`, HTTP 504) from the queue-based ones because
///    they indicate *client* budgets out of step with service capacity,
///    not raw overload.
///
/// Either depth bound set to 0 disables that check; a request without a
/// deadline (remaining budget = +infinity) never deadline-sheds. The
/// controller is a pure policy + counters object: the caller supplies
/// the current depths, remaining budget and the observed p50, the
/// controller answers admit/shed and keeps cumulative counts. All
/// methods are lock-free and safe from any thread.
class AdmissionController {
 public:
  struct Options {
    /// Admitted-but-uncompleted ceiling; 0 = unbounded.
    size_t max_in_flight = 0;
    /// Batcher+pool queue-depth ceiling observed at admission; 0 = unbounded.
    size_t max_queue_depth = 0;
    /// A deadline-carrying request is shed when its remaining budget is
    /// below `deadline_headroom * observed_p50`. 1.0 sheds requests that
    /// cannot cover the median service time; larger values shed earlier
    /// (more headroom demanded), 0 sheds only already-expired requests.
    double deadline_headroom = 1.0;
    /// Multiplier applied to `deadline_headroom` while the SLO engine
    /// holds the gate in degraded mode: requests must show more slack to
    /// be admitted, so marginal ones are rejected before they queue.
    double degraded_headroom_multiplier = 2.0;
    /// While degraded, shed kBatch-priority arrivals outright (429):
    /// graceful degradation drops the traffic class that asked to be
    /// dropped first, keeping interactive p99 inside its objective.
    bool degraded_shed_batch = true;
  };

  enum class Decision {
    kAdmit,
    kShedLoad,      // in-flight or queue-depth bound hit -> 429
    kShedDeadline,  // remaining budget can't cover service time -> 504
  };

  struct Counters {
    uint64_t admitted = 0;
    uint64_t shed = 0;           // load sheds only
    uint64_t deadline_shed = 0;  // counted separately by design
    /// kBatch arrivals shed because the gate was degraded (a subset of
    /// `shed`): the measured cost of graceful degradation.
    uint64_t degraded_shed = 0;
  };

  AdmissionController() = default;
  explicit AdmissionController(const Options& options) : options_(options) {}

  /// Decides one arrival given the current pipeline state. The deadline
  /// check runs first: a doomed request is not "overload" and must not
  /// be retried-after like one. `remaining_budget_ms` is the request's
  /// budget left right now (+infinity when it has no deadline);
  /// `p50_service_ms` is the caller's rolling estimate (0 = unknown, in
  /// which case only already-expired requests are deadline-shed).
  /// Updates the counters as a side effect.
  ///
  /// Probing: every kProbeInterval'th estimate-driven shed candidate is
  /// admitted instead. The p50 estimate is refreshed by completions, so
  /// shedding every budget-infeasible request after a latency spike
  /// would freeze a stale-high estimate in place and the 504s would
  /// never stop; the occasional probe completes, pulls the estimate
  /// back down, and reopens the gate. Requests whose budget is already
  /// blown (remaining <= 0) are never probed — they cannot succeed.
  Decision AdmitWithDeadline(size_t in_flight, size_t queue_depth,
                             double remaining_budget_ms,
                             double p50_service_ms,
                             RequestPriority priority =
                                 RequestPriority::kInteractive) {
    if (remaining_budget_ms <= 0.0) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShedDeadline;
    }
    // Degraded mode (set by the SLO engine when a fast burn crosses its
    // threshold): drop the low-priority class first, and demand extra
    // deadline slack from everyone else. Both levers act before the
    // depth bounds — degradation is about protecting the objective, not
    // about queue capacity.
    const bool degraded = degraded_.load(std::memory_order_relaxed);
    if (degraded && options_.degraded_shed_batch &&
        priority == RequestPriority::kBatch) {
      degraded_shed_.fetch_add(1, std::memory_order_relaxed);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShedLoad;
    }
    const double headroom =
        degraded ? options_.deadline_headroom * options_.degraded_headroom_multiplier
                 : options_.deadline_headroom;
    if (remaining_budget_ms < headroom * p50_service_ms) {
      const uint64_t nth =
          probe_candidates_.fetch_add(1, std::memory_order_relaxed);
      if (nth % kProbeInterval != kProbeInterval - 1) {
        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
        return Decision::kShedDeadline;
      }
      // Probe: fall through to the depth bounds like any admission.
    }
    if ((options_.max_in_flight > 0 && in_flight >= options_.max_in_flight) ||
        (options_.max_queue_depth > 0 &&
         queue_depth >= options_.max_queue_depth)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShedLoad;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAdmit;
  }

  /// Depth-bounds-only flavor for callers without request deadlines.
  bool Admit(size_t in_flight, size_t queue_depth) {
    return AdmitWithDeadline(in_flight, queue_depth,
                             std::numeric_limits<double>::infinity(),
                             0.0) == Decision::kAdmit;
  }

  Counters counters() const {
    return {admitted_.load(std::memory_order_relaxed),
            shed_.load(std::memory_order_relaxed),
            deadline_shed_.load(std::memory_order_relaxed),
            degraded_shed_.load(std::memory_order_relaxed)};
  }

  /// Degraded-mode input, driven by the SLO engine's burn-rate state
  /// machine (obs::SloEngine). Safe from any thread.
  void set_degraded(bool degraded) {
    degraded_.store(degraded, std::memory_order_relaxed);
  }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }
  bool enabled() const {
    return options_.max_in_flight > 0 || options_.max_queue_depth > 0;
  }

 private:
  static constexpr uint64_t kProbeInterval = 16;

  Options options_;
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_shed_{0};
  std::atomic<uint64_t> degraded_shed_{0};
  std::atomic<uint64_t> probe_candidates_{0};
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_ADMISSION_CONTROLLER_H_
