#ifndef DSSDDI_SERVE_ADMISSION_CONTROLLER_H_
#define DSSDDI_SERVE_ADMISSION_CONTROLLER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dssddi::serve {

/// Load-shedding gate in front of the serving pipeline. Two independent
/// bounds, both observed at admission time:
///
///  - `max_in_flight`: requests admitted but not yet completed. This is
///    the classic token gate — it caps the work (and memory: promises,
///    feature rows, batch slots) a traffic burst can pin at once.
///  - `max_queue_depth`: requests sitting in the batcher/pool queues
///    waiting for a worker. Queue depth is the earliest congestion
///    signal: once queues grow, every queued request is already paying
///    latency, so it is strictly better to shed new arrivals (HTTP 429)
///    than to let them join a line that can only get longer.
///
/// Either bound set to 0 disables that check. The controller is a pure
/// policy + counters object: the caller supplies the current depths, the
/// controller answers admit/shed and keeps cumulative counts. All
/// methods are lock-free and safe from any thread.
class AdmissionController {
 public:
  struct Options {
    /// Admitted-but-uncompleted ceiling; 0 = unbounded.
    size_t max_in_flight = 0;
    /// Batcher+pool queue-depth ceiling observed at admission; 0 = unbounded.
    size_t max_queue_depth = 0;
  };

  struct Counters {
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };

  AdmissionController() = default;
  explicit AdmissionController(const Options& options) : options_(options) {}

  /// Decides one arrival given the current pipeline state. Updates the
  /// admitted/shed counters as a side effect.
  bool Admit(size_t in_flight, size_t queue_depth) {
    if ((options_.max_in_flight > 0 && in_flight >= options_.max_in_flight) ||
        (options_.max_queue_depth > 0 &&
         queue_depth >= options_.max_queue_depth)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  Counters counters() const {
    return {admitted_.load(std::memory_order_relaxed),
            shed_.load(std::memory_order_relaxed)};
  }

  const Options& options() const { return options_; }
  bool enabled() const {
    return options_.max_in_flight > 0 || options_.max_queue_depth > 0;
  }

 private:
  Options options_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_ADMISSION_CONTROLLER_H_
