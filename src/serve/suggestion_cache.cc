#include "serve/suggestion_cache.h"

#include "util/logging.h"

namespace dssddi::serve {

SuggestionCache::SuggestionCache(size_t capacity, int num_shards)
    : capacity_(capacity) {
  if (num_shards < 1) num_shards = 1;
  if (static_cast<size_t>(num_shards) > capacity && capacity > 0) {
    num_shards = static_cast<int>(capacity);
  }
  DSSDDI_CHECK(capacity > 0) << "SuggestionCache needs capacity >= 1";
  shards_.reserve(num_shards);
  const size_t per_shard = (capacity + num_shards - 1) / num_shards;
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard;
    shards_.push_back(std::move(shard));
  }
}

SuggestionCache::Shard& SuggestionCache::ShardFor(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) % shards_.size()];
}

bool SuggestionCache::Get(const CacheKey& key, core::Suggestion* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  return true;
}

void SuggestionCache::Put(const CacheKey& key, core::Suggestion value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index[key] = shard.lru.begin();
}

void SuggestionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

uint64_t SuggestionCache::BumpGeneration() {
  // Advance first: writers racing the sweep key with the old generation,
  // so even an entry inserted after its shard was swept is unreachable
  // from post-bump readers.
  const uint64_t next = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  Clear();
  return next;
}

CacheCounters SuggestionCache::Counters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    total.hits += shard->hits.load(std::memory_order_relaxed);
    total.misses += shard->misses.load(std::memory_order_relaxed);
    total.evictions += shard->evictions.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.entries += shard->lru.size();
  }
  return total;
}

}  // namespace dssddi::serve
