#ifndef DSSDDI_SERVE_LATENCY_TRACKER_H_
#define DSSDDI_SERVE_LATENCY_TRACKER_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace dssddi::serve {

/// Thin adapter binding a latency feed to one obs::Histogram. The
/// histogram (owned by the service's metrics registry, so /metricsz and
/// /statsz read the very same buckets) replaces the ring-buffer
/// reservoir this class used to be: recording is lock-free and
/// windowless, and percentiles come from the log-linear buckets instead
/// of a sorted sample.
///
/// What survives unchanged is the admission contract: CachedP50Ms is a
/// single relaxed atomic load on the admission path, refreshed every
/// kRefreshEvery records from a histogram snapshot, and stays 0.0 until
/// the first refresh — during which AdmitWithDeadline treats service
/// time as unknown and sheds only on expiry, exactly as before.
///
/// Thread-safety: every method is safe from any thread. Record is a few
/// relaxed atomics (plus a snapshot+quantile walk on every
/// kRefreshEvery-th call); Snapshot merges the histogram shards.
class LatencyTracker {
 public:
  struct Percentiles {
    uint64_t count = 0;  // samples recorded since construction
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;  // largest sample recorded since construction
  };

  /// `histogram` must outlive the tracker (the registry that owns it is
  /// kept alive by the same service that owns this tracker).
  explicit LatencyTracker(obs::Histogram* histogram) : histogram_(histogram) {}

  LatencyTracker(const LatencyTracker&) = delete;
  LatencyTracker& operator=(const LatencyTracker&) = delete;

  void Record(double millis) { Record(millis, 0, 0.0); }

  /// Record with an exemplar (trace id + unix timestamp) attached to the
  /// containing histogram bucket, so /metricsz?format=openmetrics links
  /// a tail bucket to its /tracez//logz entry. trace_id == 0 records the
  /// value only.
  void Record(double millis, uint64_t trace_id, double unix_seconds) {
    histogram_->Record(millis, trace_id, unix_seconds);
    // Refresh the admission-path p50 estimate every kRefreshEvery
    // samples. The refresh is a shard merge + bucket walk — O(shards x
    // buckets) of relaxed loads, no locks, no allocation — cheap enough
    // that one completion in 64 paying it is noise.
    if (recorded_.fetch_add(1, std::memory_order_relaxed) % kRefreshEvery ==
        kRefreshEvery - 1) {
      cached_p50_ms_.store(histogram_->Snapshot().Quantile(0.50),
                           std::memory_order_relaxed);
    }
  }

  /// Rolling p50 estimate for deadline-aware admission; 0.0 until the
  /// first refresh (kRefreshEvery samples), during which admission
  /// treats the service time as unknown and sheds only on expiry.
  double CachedP50Ms() const {
    return cached_p50_ms_.load(std::memory_order_relaxed);
  }

  Percentiles Snapshot() const {
    const obs::HistogramSnapshot snap = histogram_->Snapshot();
    Percentiles out;
    out.count = snap.count;
    if (snap.count == 0) return out;
    out.p50_ms = snap.Quantile(0.50);
    out.p90_ms = snap.Quantile(0.90);
    out.p99_ms = snap.Quantile(0.99);
    out.max_ms = snap.max;
    return out;
  }

  obs::Histogram* histogram() const { return histogram_; }

 private:
  static constexpr uint64_t kRefreshEvery = 64;

  obs::Histogram* histogram_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<double> cached_p50_ms_{0.0};
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_LATENCY_TRACKER_H_
