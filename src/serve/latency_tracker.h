#ifndef DSSDDI_SERVE_LATENCY_TRACKER_H_
#define DSSDDI_SERVE_LATENCY_TRACKER_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dssddi::serve {

/// Ring-buffer latency sample over the most recent `window` completions
/// with percentile snapshots. Shared by the service (overall scoring
/// latency) and the HTTP front-end (per-route latency), and the source
/// of the cheap cached p50 the admission controller consults on every
/// arrival — Record refreshes that estimate periodically so the
/// admission path never sorts anything.
///
/// Thread-safety: Record and Snapshot take one mutex; CachedP50Ms is a
/// single relaxed atomic load, safe (and cheap) from any thread.
class LatencyTracker {
 public:
  struct Percentiles {
    uint64_t count = 0;  // samples recorded since construction
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;  // max over the current window, not all time
  };

  explicit LatencyTracker(size_t window) : ring_(std::max<size_t>(window, 16)) {}

  LatencyTracker(const LatencyTracker&) = delete;
  LatencyTracker& operator=(const LatencyTracker&) = delete;

  void Record(double millis) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[next_] = millis;
    next_ = (next_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
    ++recorded_;
    // Refresh the admission-path p50 estimate every kRefreshEvery
    // samples, over only the most recent kRefreshSample entries — not
    // the whole ring. The full window (default 32k) would make every
    // 64th completion pay an O(window) copy+select inside the mutex all
    // completions share, and a fresher sample tracks load shifts better
    // anyway. `scratch_` is reused so the refresh never allocates.
    if (recorded_ % kRefreshEvery == 0) {
      const size_t n = std::min(count_, kRefreshSample);
      scratch_.clear();
      for (size_t i = 0; i < n; ++i) {
        // Walk backwards from the most recent sample, wrapping.
        const size_t index = (next_ + ring_.size() - 1 - i) % ring_.size();
        scratch_.push_back(ring_[index]);
      }
      const size_t rank = (n - 1) / 2;
      std::nth_element(scratch_.begin(), scratch_.begin() + rank,
                       scratch_.end());
      cached_p50_ms_.store(scratch_[rank], std::memory_order_relaxed);
    }
  }

  /// Rolling p50 estimate for deadline-aware admission; 0.0 until the
  /// first refresh (kRefreshEvery samples), during which admission
  /// treats the service time as unknown and sheds only on expiry.
  double CachedP50Ms() const {
    return cached_p50_ms_.load(std::memory_order_relaxed);
  }

  Percentiles Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Percentiles out;
    out.count = recorded_;
    if (count_ == 0) return out;
    std::vector<double> sample(ring_.begin(), ring_.begin() + count_);
    out.p50_ms = NearestRank(sample, 0.50);
    out.p90_ms = NearestRank(sample, 0.90);
    out.p99_ms = NearestRank(sample, 0.99);
    out.max_ms = *std::max_element(sample.begin(), sample.end());
    return out;
  }

  size_t window() const { return ring_.size(); }

 private:
  static constexpr uint64_t kRefreshEvery = 64;
  static constexpr size_t kRefreshSample = 1024;

  static double NearestRank(std::vector<double>& values, double q) {
    const size_t rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
    std::nth_element(values.begin(), values.begin() + rank, values.end());
    return values[rank];
  }

  mutable std::mutex mutex_;
  std::vector<double> ring_;
  std::vector<double> scratch_;  // refresh workspace, guarded by mutex_
  size_t next_ = 0;
  size_t count_ = 0;
  uint64_t recorded_ = 0;
  std::atomic<double> cached_p50_ms_{0.0};
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_LATENCY_TRACKER_H_
