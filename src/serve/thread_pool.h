#ifndef DSSDDI_SERVE_THREAD_POOL_H_
#define DSSDDI_SERVE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dssddi::serve {

/// Fixed-size worker pool over a FIFO task queue. Tasks submitted before
/// destruction are all executed: the destructor stops intake, drains the
/// queue, and joins the workers. Submission and execution are fully
/// thread-safe; each task runs exactly once on exactly one worker.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Must not be called
  /// after destruction has begun.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks that have finished running (monotonic).
  uint64_t tasks_executed() const { return tasks_executed_.load(); }

  /// Tasks submitted but not yet started.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_THREAD_POOL_H_
