#ifndef DSSDDI_SERVE_THREAD_POOL_H_
#define DSSDDI_SERVE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dssddi::serve {

/// Fixed-size worker pool over a FIFO task queue. Tasks submitted before
/// shutdown are all executed: `Shutdown` (or the destructor) stops
/// intake, drains the queue, and joins the workers. Submission and
/// execution are fully thread-safe; each task runs exactly once on
/// exactly one worker. A task that throws is swallowed (counted in
/// `tasks_failed`) so one bad request can never kill a worker thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Throws std::invalid_argument for
  /// values < 1: a zero-thread pool would deadlock every Submit, so the
  /// caller must resolve "use a default" before constructing.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker and returns true.
  /// After `Shutdown` has begun the task is rejected and false is
  /// returned (the task is destroyed without running).
  bool Submit(std::function<void()> task);

  /// Stops intake, runs everything already queued, and joins the
  /// workers. Idempotent; called by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks that have finished running (monotonic; includes
  /// tasks that threw).
  uint64_t tasks_executed() const { return tasks_executed_.load(); }

  /// Tasks whose callable exited via an exception (monotonic).
  uint64_t tasks_failed() const { return tasks_failed_.load(); }

  /// Tasks submitted but not yet started.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  bool joined_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_failed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace dssddi::serve

#endif  // DSSDDI_SERVE_THREAD_POOL_H_
