#ifndef DSSDDI_KG_TRANSH_H_
#define DSSDDI_KG_TRANSH_H_

#include <vector>

#include "kg/transe.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace dssddi::kg {

struct TransHConfig {
  int embedding_dim = 400;
  float learning_rate = 0.01f;
  float margin = 1.0f;
  int epochs = 50;
};

/// TransH (Wang et al., AAAI'14), the paper's other cited knowledge-
/// representation model for drug embeddings: each relation owns a
/// hyperplane with unit normal w_r and an in-plane translation d_r, and
/// entities are projected onto the hyperplane before translation:
///
///   score(h, r, t) = || (h - (w_r.h) w_r) + d_r - (t - (w_r.t) w_r) ||_2
///
/// The projection lets one entity carry different roles under different
/// relations, which fixes TransE's collapse on 1-to-N relations (e.g.
/// one disease treated by many drugs — exactly the drug-indication shape
/// of the DRKG-like graph). Trained with margin ranking loss and direct
/// SGD updates, mirroring the TransE implementation.
class TransHModel {
 public:
  TransHModel(int num_entities, int num_relations, const TransHConfig& config,
              util::Rng& rng);

  /// Runs `config.epochs` passes; returns the final epoch's mean loss.
  float Train(const TripleStore& store, util::Rng& rng);

  /// One shuffled pass of margin-ranking SGD; returns mean loss.
  float TrainEpoch(const TripleStore& store, util::Rng& rng);

  /// Hyperplane distance score: smaller = more plausible.
  float Distance(const Triple& t) const;

  const tensor::Matrix& entity_embeddings() const { return entity_embeddings_; }
  const tensor::Matrix& relation_translations() const { return relation_translations_; }
  const tensor::Matrix& relation_normals() const { return relation_normals_; }

  /// Rows of the entity matrix for the given ids (e.g. the 86 drugs).
  tensor::Matrix EmbeddingsFor(const std::vector<int>& entity_ids) const;

 private:
  void NormalizeEntity(int entity);
  void NormalizeRelationNormal(int relation);

  TransHConfig config_;
  tensor::Matrix entity_embeddings_;
  tensor::Matrix relation_translations_;  // d_r
  tensor::Matrix relation_normals_;       // w_r (unit rows)
};

}  // namespace dssddi::kg

#endif  // DSSDDI_KG_TRANSH_H_
