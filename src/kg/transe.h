#ifndef DSSDDI_KG_TRANSE_H_
#define DSSDDI_KG_TRANSE_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace dssddi::kg {

/// One (head, relation, tail) fact in a knowledge graph.
struct Triple {
  int head = 0;
  int relation = 0;
  int tail = 0;
};

/// In-memory triple store with entity/relation vocabularies. The chronic
/// data pipeline builds a DRKG-like drug–disease–gene graph here and
/// pretrains TransE on it to obtain the paper's "KG" drug features.
class TripleStore {
 public:
  /// Interns a name and returns its entity id.
  int AddEntity(const std::string& name);
  int AddRelation(const std::string& name);

  /// Adds a fact; ids must have been interned.
  void AddTriple(int head, int relation, int tail);

  int num_entities() const { return static_cast<int>(entity_names_.size()); }
  int num_relations() const { return static_cast<int>(relation_names_.size()); }
  const std::vector<Triple>& triples() const { return triples_; }
  const std::string& EntityName(int id) const { return entity_names_[id]; }
  const std::string& RelationName(int id) const { return relation_names_[id]; }

  /// Entity id by name, or -1.
  int FindEntity(const std::string& name) const;

  /// True iff the exact triple exists (linear scan; used for negative
  /// sampling on modest graphs).
  bool Contains(const Triple& t) const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_names_;
  std::vector<Triple> triples_;
};

struct TransEConfig {
  int embedding_dim = 400;  // matches the DRKG embeddings used in the paper
  float learning_rate = 0.01f;
  float margin = 1.0f;
  int epochs = 50;
  /// L1 distance if true (original TransE supports both); L2 otherwise.
  bool use_l1 = false;
};

/// TransE (Bordes et al., NeurIPS'13): entities and relations embed in the
/// same space with h + r ≈ t for true triples. Trained with margin ranking
/// loss against corrupted triples and per-step entity renormalization.
/// Implemented with direct SGD updates (no autograd) for speed.
class TransEModel {
 public:
  TransEModel(int num_entities, int num_relations, const TransEConfig& config,
              util::Rng& rng);

  /// Runs `config.epochs` passes over the triples; returns final mean loss.
  float Train(const TripleStore& store, util::Rng& rng);

  /// One epoch; returns mean margin loss.
  float TrainEpoch(const TripleStore& store, util::Rng& rng);

  /// Distance-based score: smaller = more plausible.
  float Distance(const Triple& t) const;

  const tensor::Matrix& entity_embeddings() const { return entity_embeddings_; }
  const tensor::Matrix& relation_embeddings() const { return relation_embeddings_; }

  /// Rows of the entity matrix for the given ids (e.g. the 86 drugs).
  tensor::Matrix EmbeddingsFor(const std::vector<int>& entity_ids) const;

 private:
  void NormalizeEntity(int entity);

  TransEConfig config_;
  tensor::Matrix entity_embeddings_;
  tensor::Matrix relation_embeddings_;
};

}  // namespace dssddi::kg

#endif  // DSSDDI_KG_TRANSE_H_
