#include "kg/transh.h"

#include <cmath>
#include <vector>

#include "tensor/init.h"
#include "util/logging.h"

namespace dssddi::kg {
namespace {

double Dot(const float* a, const float* b, int dim) {
  double acc = 0.0;
  for (int j = 0; j < dim; ++j) acc += static_cast<double>(a[j]) * b[j];
  return acc;
}

}  // namespace

TransHModel::TransHModel(int num_entities, int num_relations,
                         const TransHConfig& config, util::Rng& rng)
    : config_(config) {
  const float bound = 6.0f / std::sqrt(static_cast<float>(config.embedding_dim));
  entity_embeddings_ =
      tensor::UniformInit(num_entities, config.embedding_dim, -bound, bound, rng);
  relation_translations_ =
      tensor::UniformInit(num_relations, config.embedding_dim, -bound, bound, rng);
  relation_normals_ =
      tensor::UniformInit(num_relations, config.embedding_dim, -bound, bound, rng);
  for (int e = 0; e < num_entities; ++e) NormalizeEntity(e);
  for (int r = 0; r < num_relations; ++r) NormalizeRelationNormal(r);
}

void TransHModel::NormalizeEntity(int entity) {
  float* row = entity_embeddings_.RowPtr(entity);
  const int dim = entity_embeddings_.cols();
  const double norm = std::sqrt(Dot(row, row, dim));
  // Soft constraint ||e|| <= 1: rescale only when outside the ball.
  if (norm <= 1.0 || norm < 1e-12) return;
  for (int j = 0; j < dim; ++j) row[j] = static_cast<float>(row[j] / norm);
}

void TransHModel::NormalizeRelationNormal(int relation) {
  float* row = relation_normals_.RowPtr(relation);
  const int dim = relation_normals_.cols();
  const double norm = std::sqrt(Dot(row, row, dim));
  if (norm < 1e-12) {
    row[0] = 1.0f;  // degenerate normal: reset to a unit axis
    return;
  }
  for (int j = 0; j < dim; ++j) row[j] = static_cast<float>(row[j] / norm);
}

float TransHModel::Distance(const Triple& t) const {
  const int dim = entity_embeddings_.cols();
  const float* h = entity_embeddings_.RowPtr(t.head);
  const float* tl = entity_embeddings_.RowPtr(t.tail);
  const float* d_r = relation_translations_.RowPtr(t.relation);
  const float* w = relation_normals_.RowPtr(t.relation);
  const double wh = Dot(w, h, dim);
  const double wt = Dot(w, tl, dim);
  double acc = 0.0;
  for (int j = 0; j < dim; ++j) {
    const double delta = (h[j] - wh * w[j]) + d_r[j] - (tl[j] - wt * w[j]);
    acc += delta * delta;
  }
  return static_cast<float>(std::sqrt(acc));
}

float TransHModel::TrainEpoch(const TripleStore& store, util::Rng& rng) {
  const auto& triples = store.triples();
  DSSDDI_CHECK(!triples.empty()) << "TransH needs at least one triple";
  std::vector<int> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(order);

  const int dim = config_.embedding_dim;
  const float lr = config_.learning_rate;
  double total_loss = 0.0;
  std::vector<double> g(dim);

  for (int idx : order) {
    const Triple positive = triples[idx];
    Triple negative = positive;
    for (int attempt = 0; attempt < 8; ++attempt) {
      negative = positive;
      if (rng.Bernoulli(0.5)) {
        negative.head = static_cast<int>(rng.NextBelow(store.num_entities()));
      } else {
        negative.tail = static_cast<int>(rng.NextBelow(store.num_entities()));
      }
      if (!store.Contains(negative)) break;
    }

    const float pos_dist = Distance(positive);
    const float neg_dist = Distance(negative);
    const float loss = config_.margin + pos_dist - neg_dist;
    if (loss <= 0.0f) continue;
    total_loss += loss;

    // SGD step on margin + d(pos) - d(neg). For the L2 hyperplane
    // distance with residual delta and unit gradient g = delta / dist:
    //   grad_h   =  g - (w.g) w
    //   grad_t   = -(g - (w.g) w)
    //   grad_d_r =  g
    //   grad_w   = -((g.w) h + (w.h) g) + ((g.w) t + (w.t) g)
    auto apply = [&](const Triple& t, float sign) {
      float* h = entity_embeddings_.RowPtr(t.head);
      float* tl = entity_embeddings_.RowPtr(t.tail);
      float* d_r = relation_translations_.RowPtr(t.relation);
      float* w = relation_normals_.RowPtr(t.relation);
      const double wh = Dot(w, h, dim);
      const double wt = Dot(w, tl, dim);

      double dist = 0.0;
      for (int j = 0; j < dim; ++j) {
        g[j] = (h[j] - wh * w[j]) + d_r[j] - (tl[j] - wt * w[j]);
        dist += g[j] * g[j];
      }
      dist = std::sqrt(dist);
      if (dist < 1e-12) return;
      for (int j = 0; j < dim; ++j) g[j] /= dist;

      double gw = 0.0;
      for (int j = 0; j < dim; ++j) gw += g[j] * w[j];
      const float step = sign * lr;
      for (int j = 0; j < dim; ++j) {
        const double grad_shared = g[j] - gw * w[j];
        const double grad_w =
            -(gw * h[j] + wh * g[j]) + (gw * tl[j] + wt * g[j]);
        h[j] -= static_cast<float>(step * grad_shared);
        tl[j] += static_cast<float>(step * grad_shared);
        d_r[j] -= static_cast<float>(step * g[j]);
        w[j] -= static_cast<float>(step * grad_w);
      }
      NormalizeEntity(t.head);
      NormalizeEntity(t.tail);
      NormalizeRelationNormal(t.relation);
    };
    apply(positive, +1.0f);   // decrease the positive distance
    apply(negative, -1.0f);   // increase the negative distance
  }
  return static_cast<float>(total_loss / static_cast<double>(triples.size()));
}

float TransHModel::Train(const TripleStore& store, util::Rng& rng) {
  float last = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    last = TrainEpoch(store, rng);
  }
  return last;
}

tensor::Matrix TransHModel::EmbeddingsFor(const std::vector<int>& entity_ids) const {
  return entity_embeddings_.GatherRows(entity_ids);
}

}  // namespace dssddi::kg
