#include "kg/transe.h"

#include <algorithm>
#include <cmath>

#include "tensor/init.h"
#include "util/logging.h"

namespace dssddi::kg {

int TripleStore::AddEntity(const std::string& name) {
  entity_names_.push_back(name);
  return static_cast<int>(entity_names_.size()) - 1;
}

int TripleStore::AddRelation(const std::string& name) {
  relation_names_.push_back(name);
  return static_cast<int>(relation_names_.size()) - 1;
}

void TripleStore::AddTriple(int head, int relation, int tail) {
  DSSDDI_CHECK(head >= 0 && head < num_entities()) << "bad head id";
  DSSDDI_CHECK(tail >= 0 && tail < num_entities()) << "bad tail id";
  DSSDDI_CHECK(relation >= 0 && relation < num_relations()) << "bad relation id";
  triples_.push_back({head, relation, tail});
}

int TripleStore::FindEntity(const std::string& name) const {
  for (int i = 0; i < num_entities(); ++i) {
    if (entity_names_[i] == name) return i;
  }
  return -1;
}

bool TripleStore::Contains(const Triple& t) const {
  for (const auto& existing : triples_) {
    if (existing.head == t.head && existing.relation == t.relation &&
        existing.tail == t.tail) {
      return true;
    }
  }
  return false;
}

TransEModel::TransEModel(int num_entities, int num_relations,
                         const TransEConfig& config, util::Rng& rng)
    : config_(config) {
  const float bound = 6.0f / std::sqrt(static_cast<float>(config.embedding_dim));
  entity_embeddings_ =
      tensor::UniformInit(num_entities, config.embedding_dim, -bound, bound, rng);
  relation_embeddings_ =
      tensor::UniformInit(num_relations, config.embedding_dim, -bound, bound, rng);
  // Relations are normalized once at init (standard TransE practice).
  relation_embeddings_ = relation_embeddings_.RowL2Normalized();
  for (int e = 0; e < num_entities; ++e) NormalizeEntity(e);
}

void TransEModel::NormalizeEntity(int entity) {
  float* row = entity_embeddings_.RowPtr(entity);
  double norm_sq = 0.0;
  for (int j = 0; j < entity_embeddings_.cols(); ++j) {
    norm_sq += static_cast<double>(row[j]) * row[j];
  }
  const double norm = std::sqrt(norm_sq);
  if (norm < 1e-12) return;
  for (int j = 0; j < entity_embeddings_.cols(); ++j) {
    row[j] = static_cast<float>(row[j] / norm);
  }
}

float TransEModel::Distance(const Triple& t) const {
  const float* h = entity_embeddings_.RowPtr(t.head);
  const float* r = relation_embeddings_.RowPtr(t.relation);
  const float* tl = entity_embeddings_.RowPtr(t.tail);
  double acc = 0.0;
  for (int j = 0; j < entity_embeddings_.cols(); ++j) {
    const double d = static_cast<double>(h[j]) + r[j] - tl[j];
    acc += config_.use_l1 ? std::fabs(d) : d * d;
  }
  return static_cast<float>(config_.use_l1 ? acc : std::sqrt(acc));
}

float TransEModel::TrainEpoch(const TripleStore& store, util::Rng& rng) {
  const auto& triples = store.triples();
  DSSDDI_CHECK(!triples.empty()) << "TransE needs at least one triple";
  std::vector<int> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(order);

  const int dim = config_.embedding_dim;
  const float lr = config_.learning_rate;
  double total_loss = 0.0;

  for (int idx : order) {
    const Triple positive = triples[idx];
    // Corrupt head or tail uniformly; re-draw if the corruption is a
    // known true triple (up to a few attempts).
    Triple negative = positive;
    for (int attempt = 0; attempt < 8; ++attempt) {
      negative = positive;
      if (rng.Bernoulli(0.5)) {
        negative.head = static_cast<int>(rng.NextBelow(store.num_entities()));
      } else {
        negative.tail = static_cast<int>(rng.NextBelow(store.num_entities()));
      }
      if (!store.Contains(negative)) break;
    }

    const float pos_dist = Distance(positive);
    const float neg_dist = Distance(negative);
    const float loss = config_.margin + pos_dist - neg_dist;
    if (loss <= 0.0f) continue;
    total_loss += loss;

    // Gradient of margin + d(pos) - d(neg) w.r.t. embeddings, for the L2
    // distance d = ||h + r - t||: dd/dh = (h + r - t) / d, etc.
    auto apply = [&](const Triple& t, float sign) {
      float* h = entity_embeddings_.RowPtr(t.head);
      float* r = relation_embeddings_.RowPtr(t.relation);
      float* tl = entity_embeddings_.RowPtr(t.tail);
      const float dist = std::max(Distance(t), 1e-6f);
      for (int j = 0; j < dim; ++j) {
        float grad;
        const float diff = h[j] + r[j] - tl[j];
        if (config_.use_l1) {
          grad = diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f);
        } else {
          grad = diff / dist;
        }
        grad *= sign;
        h[j] -= lr * grad;
        r[j] -= lr * grad;
        tl[j] += lr * grad;
      }
    };
    apply(positive, +1.0f);   // decrease positive distance
    apply(negative, -1.0f);   // increase negative distance

    NormalizeEntity(positive.head);
    NormalizeEntity(positive.tail);
    NormalizeEntity(negative.head);
    NormalizeEntity(negative.tail);
  }
  return static_cast<float>(total_loss / triples.size());
}

float TransEModel::Train(const TripleStore& store, util::Rng& rng) {
  float loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    loss = TrainEpoch(store, rng);
  }
  return loss;
}

tensor::Matrix TransEModel::EmbeddingsFor(const std::vector<int>& entity_ids) const {
  return entity_embeddings_.GatherRows(entity_ids);
}

}  // namespace dssddi::kg
