#ifndef DSSDDI_NET_HTTP_SERVER_H_
#define DSSDDI_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/binary.h"
#include "net/event_loop.h"
#include "net/fault.h"
#include "net/http.h"
#include "obs/log.h"

namespace dssddi::net {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; see HttpServer::port().
  int port = 8080;
  /// Event-loop threads. With SO_REUSEPORT each loop gets its own
  /// listening socket and the kernel spreads accepts; without it, loop 0
  /// accepts and hands connections to the others round-robin.
  int num_loops = 1;
  int backlog = 128;
  /// Concurrent connections across all loops; excess accepts are closed
  /// with a canned 503 (connection-level shedding, distinct from the
  /// admission controller's per-request 429).
  int max_connections = 1024;
  HttpParser::Limits limits;
  /// Optional flight recorder: connection-level error paths (parse
  /// failures, overload closes) record wide events into it, so /logz
  /// sees faults that never reach the request handler. Null = off.
  std::shared_ptr<obs::FlightRecorder> recorder;
  /// Optional fault injector (chaos testing): consulted on every
  /// accept / read / write when armed. Null (default) costs one branch.
  std::shared_ptr<fault::FaultInjector> fault;
  /// Stop() first closes the listeners and waits up to this long for
  /// dispatched requests to be answered and flushed before tearing the
  /// loops down, so a restart under load drops no in-flight responses.
  /// 0 restores the old stop-immediately behavior.
  int drain_timeout_ms = 2000;
};

class HttpServer;

/// One-shot completion handle for a dispatched request. Copy it
/// anywhere, call `Send` from any thread exactly once; duplicate sends
/// are ignored, and sends that outlive the connection (or the server)
/// are dropped harmlessly.
class ResponseWriter {
 public:
  void Send(HttpResponse response) const;

 private:
  friend class HttpServer;
  struct Target {
    std::shared_ptr<EventLoop> loop;
    HttpServer* server = nullptr;
    size_t loop_index = 0;
    uint64_t conn_id = 0;
    std::atomic<bool> used{false};
  };
  std::shared_ptr<Target> target_;
};

/// Dependency-free epoll HTTP/1.1 server: N edge-triggered event loops,
/// keep-alive with pipelining (one request dispatched at a time per
/// connection), fixed-length bodies only, hard parse limits. The handler
/// runs on the loop thread and must not block on request-rate work — it
/// forwards scoring (e.g. SuggestionService::TrySubmitAsync) and answers
/// later through the ResponseWriter. Rare admin operations (bundle
/// reload) may run inline at the cost of stalling that one loop; with
/// num_loops > 1 the other loops keep serving.
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, ResponseWriter)>;

  HttpServer(const HttpServerOptions& options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, registers acceptors, and spawns the loop threads.
  io::Status Start();
  /// Graceful stop: closes the listeners, drains dispatched requests
  /// and unflushed responses for up to options.drain_timeout_ms, then
  /// stops the loops, joins their threads and closes every socket.
  /// Idempotent; called by the destructor. ResponseWriters completing
  /// during the drain are delivered; after it they degrade to no-ops.
  void Stop();

  /// True once Stop has begun (the /readyz signal: alive but no longer
  /// accepting work).
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Actual bound port (useful with options.port == 0).
  int port() const { return port_; }
  /// True when each loop owns a SO_REUSEPORT listener (vs fd handoff).
  bool using_reuseport() const { return reuseport_; }
  int num_loops() const { return static_cast<int>(loops_.size()); }

  struct Counters {
    uint64_t accepted = 0;        // connections accepted
    uint64_t active = 0;          // currently open connections
    uint64_t requests = 0;        // requests dispatched to the handler
    uint64_t responses = 0;       // responses written back
    uint64_t parse_errors = 0;    // connections failed by the parser
    uint64_t overload_closed = 0; // accepts shed by max_connections
  };
  Counters counters() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string in;          // received, not yet parsed
    std::string out;         // serialized, not yet sent
    size_t out_offset = 0;
    HttpParser parser;
    bool awaiting_response = false;
    bool keep_alive = true;
    bool close_after_flush = false;
    bool want_write = false;  // EPOLLOUT armed
    bool eof = false;         // peer closed its write side
    bool counted_pending = false;  // contributes to pending_out_

    explicit Connection(const HttpParser::Limits& limits) : parser(limits) {}
  };

  struct Loop {
    std::shared_ptr<EventLoop> events;
    std::thread thread;
    int listen_fd = -1;
    /// Loop-thread-only connection table.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
  };

  void HandleAccept(size_t loop_index);
  void RegisterConnection(size_t loop_index, int fd);
  void HandleIo(size_t loop_index, uint64_t conn_id, uint32_t events);
  /// All three return false when they closed the connection.
  bool ReadInput(size_t loop_index, Connection* conn);
  bool ProcessConnection(size_t loop_index, Connection* conn);
  bool FlushOutput(size_t loop_index, Connection* conn);
  void CompleteRequest(size_t loop_index, uint64_t conn_id,
                       HttpResponse response);
  void CloseConnection(size_t loop_index, uint64_t conn_id);
  /// Keeps pending_out_ equal to the number of connections holding
  /// unflushed bytes (the drain loop's second condition).
  void SyncPendingOut(Connection* conn);
  /// Sends an RST (SO_LINGER 0) instead of a FIN — injected "resets"
  /// should look like resets to the peer.
  void AbortConnection(size_t loop_index, uint64_t conn_id);

  friend class ResponseWriter;

  HttpServerOptions options_;
  Handler handler_;
  std::vector<std::unique_ptr<Loop>> loops_;
  int port_ = 0;
  bool reuseport_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_loop_{0};  // round-robin fd handoff
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> overload_closed_{0};
  std::atomic<bool> draining_{false};
  /// Requests dispatched to the handler and not yet answered (or their
  /// connection closed); what the graceful drain waits on.
  std::atomic<uint64_t> in_flight_{0};
  /// Connections with serialized-but-unsent response bytes.
  std::atomic<uint64_t> pending_out_{0};
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_HTTP_SERVER_H_
