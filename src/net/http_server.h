#ifndef DSSDDI_NET_HTTP_SERVER_H_
#define DSSDDI_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "io/binary.h"
#include "net/event_loop.h"
#include "net/fault.h"
#include "net/http.h"
#include "obs/log.h"

namespace dssddi::net {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; see HttpServer::port().
  int port = 8080;
  /// Event-loop threads. With SO_REUSEPORT each loop gets its own
  /// listening socket and the kernel spreads accepts; without it, loop 0
  /// accepts and hands connections to the others round-robin.
  int num_loops = 1;
  /// Force SO_REUSEPORT on the listeners even with num_loops == 1 — how
  /// N shard *processes* share one port and let the kernel spread
  /// connections across them (examples/shard_cluster).
  bool reuseport = false;
  int backlog = 128;
  /// Concurrent connections across all loops; excess accepts are closed
  /// with a canned 503 (connection-level shedding, distinct from the
  /// admission controller's per-request 429).
  int max_connections = 1024;
  HttpParser::Limits limits;
  /// Pipelined frame mode: requests concurrently in flight per
  /// connection before the server stops reading from it (per-connection
  /// admission; the global admission controller still applies per
  /// request).
  int max_pipeline_depth = 32;
  /// Pipelined frame mode: unflushed response bytes queued on a
  /// connection before the server stops reading from it (write-queue
  /// backpressure — a peer that stops reading cannot balloon memory).
  size_t max_pipeline_write_bytes = 1 << 20;
  /// Optional flight recorder: connection-level error paths (parse
  /// failures, overload closes) record wide events into it, so /logz
  /// sees faults that never reach the request handler. Null = off.
  std::shared_ptr<obs::FlightRecorder> recorder;
  /// Optional fault injector (chaos testing): consulted on every
  /// accept / read / write when armed. Null (default) costs one branch.
  std::shared_ptr<fault::FaultInjector> fault;
  /// Stop() first closes the listeners and waits up to this long for
  /// dispatched requests to be answered and flushed before tearing the
  /// loops down, so a restart under load drops no in-flight responses.
  /// 0 restores the old stop-immediately behavior.
  int drain_timeout_ms = 2000;
};

class HttpServer;

/// One-shot completion handle for a dispatched request. Copy it
/// anywhere, call `Send` from any thread exactly once; duplicate sends
/// are ignored, and sends that outlive the connection (or the server)
/// are dropped harmlessly.
class ResponseWriter {
 public:
  void Send(HttpResponse response) const;

 private:
  friend class HttpServer;
  struct Target {
    std::shared_ptr<EventLoop> loop;
    HttpServer* server = nullptr;
    size_t loop_index = 0;
    uint64_t conn_id = 0;
    /// Pipelined frame mode: the response body is a raw wire frame
    /// (no HTTP envelope) correlated by request_id.
    bool frame = false;
    uint64_t request_id = 0;
    std::atomic<bool> used{false};
  };
  std::shared_ptr<Target> target_;
};

/// Dependency-free epoll HTTP/1.1 server: N edge-triggered event loops,
/// keep-alive with pipelining, fixed-length bodies only, hard parse
/// limits. The handler runs on the loop thread and must not block on
/// request-rate work — it forwards scoring (e.g.
/// SuggestionService::TrySubmitAsync) and answers later through the
/// ResponseWriter. Rare admin operations (bundle reload) may run inline
/// at the cost of stalling that one loop; with num_loops > 1 the other
/// loops keep serving.
///
/// Two protocols share every port, told apart by the first bytes of a
/// fresh connection:
///
///   HTTP mode   one request dispatched at a time per connection;
///               responses go back in arrival order (HTTP/1.1
///               pipelining semantics).
///   Frame mode  the connection's first bytes are the wire-frame magic:
///               both directions carry raw frames, up to
///               max_pipeline_depth requests are dispatched
///               concurrently, and responses complete out of order
///               correlated by the frames' request_id. Reading pauses
///               while the in-flight set is full or the write queue is
///               over max_pipeline_write_bytes, and resumes as
///               completions drain them. Queued response frames are
///               coalesced into single vectored writes (one syscall per
///               flush, not per frame).
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, ResponseWriter)>;

  HttpServer(const HttpServerOptions& options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, registers acceptors, and spawns the loop threads.
  io::Status Start();
  /// Graceful stop: closes the listeners, drains dispatched requests
  /// and unflushed responses for up to options.drain_timeout_ms, then
  /// stops the loops, joins their threads and closes every socket.
  /// Idempotent; called by the destructor. ResponseWriters completing
  /// during the drain are delivered; after it they degrade to no-ops.
  void Stop();

  /// True once Stop has begun (the /readyz signal: alive but no longer
  /// accepting work).
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Actual bound port (useful with options.port == 0).
  int port() const { return port_; }
  /// True when each loop owns a SO_REUSEPORT listener (vs fd handoff).
  bool using_reuseport() const { return reuseport_; }
  int num_loops() const { return static_cast<int>(loops_.size()); }

  struct Counters {
    uint64_t accepted = 0;        // connections accepted
    uint64_t active = 0;          // currently open connections
    uint64_t requests = 0;        // requests dispatched to the handler
    uint64_t responses = 0;       // responses written back
    uint64_t parse_errors = 0;    // connections failed by the parser
    uint64_t overload_closed = 0; // accepts shed by max_connections
  };
  Counters counters() const;

 private:
  struct Connection {
    /// Decided from the first bytes: kUnknown until enough arrived.
    enum class Mode { kUnknown, kHttp, kFrame };

    int fd = -1;
    uint64_t id = 0;
    Mode mode = Mode::kUnknown;
    std::string in;  // received, not yet parsed
    /// Serialized, not yet sent: a queue of buffers flushed as one
    /// vectored write; out_offset is the sent prefix of the front
    /// buffer, out_bytes the queued total.
    std::deque<std::string> outq;
    size_t out_offset = 0;
    size_t out_bytes = 0;
    HttpParser parser;
    bool awaiting_response = false;  // HTTP mode: one at a time
    bool keep_alive = true;
    bool close_after_flush = false;
    bool want_write = false;  // EPOLLOUT armed
    bool eof = false;         // peer closed its write side
    bool counted_pending = false;  // contributes to pending_out_
    /// Frame mode: request_ids dispatched and not yet answered.
    std::unordered_set<uint64_t> frame_pending;
    /// Frame mode: reads suspended by depth/write-queue backpressure.
    bool read_paused = false;
    /// A coalescing flush task is queued on the loop.
    bool flush_scheduled = false;

    explicit Connection(const HttpParser::Limits& limits) : parser(limits) {}
  };

  struct Loop {
    std::shared_ptr<EventLoop> events;
    std::thread thread;
    int listen_fd = -1;
    /// Loop-thread-only connection table.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
  };

  void HandleAccept(size_t loop_index);
  void RegisterConnection(size_t loop_index, int fd);
  void HandleIo(size_t loop_index, uint64_t conn_id, uint32_t events);
  /// All of these return false when they closed the connection.
  bool ReadInput(size_t loop_index, Connection* conn);
  bool ProcessConnection(size_t loop_index, Connection* conn);
  bool ProcessHttp(size_t loop_index, Connection* conn);
  bool ProcessFrames(size_t loop_index, Connection* conn);
  bool FlushOutput(size_t loop_index, Connection* conn);
  /// Frame mode: un-pause reading when backpressure has drained, then
  /// dispatch whatever is buffered.
  bool ResumeFrameProcessing(size_t loop_index, Connection* conn);
  void CompleteRequest(size_t loop_index, uint64_t conn_id,
                       HttpResponse response, bool frame, uint64_t request_id);
  void CloseConnection(size_t loop_index, uint64_t conn_id);
  /// Appends one serialized buffer to the connection's write queue.
  void QueueOutput(Connection* conn, std::string bytes);
  /// Queues a single coalescing flush task on the loop (frame-mode
  /// completions batch their frames into one writev this way).
  void ScheduleFlush(size_t loop_index, Connection* conn);
  /// True while the pipeline admission says "stop reading".
  bool PipelineSaturated(const Connection* conn) const;
  /// Keeps pending_out_ equal to the number of connections holding
  /// unflushed bytes (the drain loop's second condition).
  void SyncPendingOut(Connection* conn);
  /// Sends an RST (SO_LINGER 0) instead of a FIN — injected "resets"
  /// should look like resets to the peer.
  void AbortConnection(size_t loop_index, uint64_t conn_id);

  friend class ResponseWriter;

  HttpServerOptions options_;
  Handler handler_;
  std::vector<std::unique_ptr<Loop>> loops_;
  int port_ = 0;
  bool reuseport_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_loop_{0};  // round-robin fd handoff
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> overload_closed_{0};
  std::atomic<bool> draining_{false};
  /// Requests dispatched to the handler and not yet answered (or their
  /// connection closed); what the graceful drain waits on.
  std::atomic<uint64_t> in_flight_{0};
  /// Connections with serialized-but-unsent response bytes.
  std::atomic<uint64_t> pending_out_{0};
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_HTTP_SERVER_H_
