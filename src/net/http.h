#ifndef DSSDDI_NET_HTTP_H_
#define DSSDDI_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dssddi::net {

/// One parsed HTTP/1.x request.
struct HttpRequest {
  std::string method;   // uppercase token, e.g. "GET"
  std::string target;   // origin-form, e.g. "/v1/suggest"
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close, both overridable by `Connection`.
  bool keep_alive = true;

  /// First header named `name` (ASCII case-insensitive), or nullptr.
  const std::string* FindHeader(const std::string& name) const;
};

/// One response as the handler produces it; the server fills in framing
/// (Content-Length, Connection) when serializing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Force Connection: close after this response.
  bool close = false;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Canonical reason phrase ("OK", "Too Many Requests", ...).
const char* StatusReason(int status);

/// ASCII case-insensitive equality, as header-name comparison requires.
/// Shared by the server-side parser and the test client.
bool AsciiEqualsIgnoreCase(const std::string& a, const std::string& b);

/// Full wire bytes for `response`. `keep_alive` reflects the request's
/// connection semantics; `response.close` can only force closing.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Incremental HTTP/1.0–1.1 request parser with hard limits. Bytes are
/// pushed with `Feed`, which consumes at most one request's worth and
/// leaves pipelined followers to the caller's buffer. No chunked
/// transfer encoding: requests declaring one are rejected with 501 — the
/// suggest API uses small fixed-length JSON bodies, and refusing chunked
/// keeps the parser's state machine (and its attack surface) minimal.
class HttpParser {
 public:
  struct Limits {
    size_t max_request_line = 8192;
    /// All header lines together, excluding the request line.
    size_t max_header_bytes = 32768;
    int max_headers = 64;
    size_t max_body_bytes = 1 << 20;
  };

  enum class Result {
    kNeedMore,   // consumed everything offered, request incomplete
    kComplete,   // one full request parsed; leftover bytes unconsumed
    kError,      // protocol violation; see error_status()/error_reason()
  };

  HttpParser() = default;
  explicit HttpParser(const Limits& limits) : limits_(limits) {}

  /// Consumes up to `size` bytes, advancing `*consumed`. Once kComplete
  /// or kError is returned, further Feeds return the same result until
  /// `Reset`.
  Result Feed(const char* data, size_t size, size_t* consumed);

  /// Valid after kComplete. The parser keeps ownership until Reset.
  const HttpRequest& request() const { return request_; }
  /// Moves the request out (parser must be Reset before reuse).
  HttpRequest TakeRequest() { return std::move(request_); }

  /// Valid after kError: the HTTP status that describes the violation
  /// (400, 413, 431, 501, 505) and a human-readable reason.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Back to a fresh parser for the next request on the connection.
  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  Result Error(int status, std::string reason);
  bool ProcessRequestLine(const std::string& line);
  bool ProcessHeaderLine(const std::string& line);
  bool FinishHeaders();

  Limits limits_;
  State state_ = State::kRequestLine;
  std::string line_;          // current, possibly partial, CRLF line
  size_t header_bytes_ = 0;
  size_t body_remaining_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_HTTP_H_
