#include "net/fault.h"

#include <cstdlib>
#include <utility>

#include "net/json.h"

namespace dssddi::net::fault {
namespace {

/// splitmix64 step: the decision stream is hash(seed, ticket) so every
/// (seed, op-index) pair lands on the same action forever.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from one 64-bit word (53 mantissa bits).
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

bool ParseProbability(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (!(value >= 0.0) || !(value <= 1.0)) return false;
  *out = value;
  return true;
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

std::string StripSpace(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) --end;
  return text.substr(begin, end - begin);
}

}  // namespace

io::Status FaultSpec::Parse(const std::string& text, FaultSpec* out) {
  FaultSpec spec;
  spec.source = text;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t next = text.find(';', pos);
    if (next == std::string::npos) next = text.size();
    const std::string clause = StripSpace(text.substr(pos, next - pos));
    pos = next + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return io::Status::Error("fault spec clause '" + clause +
                               "' is not key=value");
    }
    const std::string key = StripSpace(clause.substr(0, eq));
    const std::string value = StripSpace(clause.substr(eq + 1));
    if (key == "seed") {
      if (!ParseUint(value, &spec.seed)) {
        return io::Status::Error("fault spec: bad seed '" + value + "'");
      }
    } else if (key == "reset") {
      if (!ParseProbability(value, &spec.reset)) {
        return io::Status::Error("fault spec: reset wants a probability in "
                                 "[0,1], got '" + value + "'");
      }
    } else if (key == "truncate") {
      if (!ParseProbability(value, &spec.truncate)) {
        return io::Status::Error("fault spec: truncate wants a probability in "
                                 "[0,1], got '" + value + "'");
      }
    } else if (key == "corrupt") {
      if (!ParseProbability(value, &spec.corrupt)) {
        return io::Status::Error("fault spec: corrupt wants a probability in "
                                 "[0,1], got '" + value + "'");
      }
    } else if (key == "blackout") {
      if (value == "1" || value == "true") {
        spec.blackout = true;
      } else if (value == "0" || value == "false") {
        spec.blackout = false;
      } else {
        return io::Status::Error("fault spec: blackout wants 0/1, got '" +
                                 value + "'");
      }
    } else if (key == "stall") {
      // P or P:MIN-MAX or P:MS
      const size_t colon = value.find(':');
      const std::string prob = value.substr(0, colon);
      if (!ParseProbability(prob, &spec.stall)) {
        return io::Status::Error("fault spec: stall wants a probability in "
                                 "[0,1], got '" + prob + "'");
      }
      if (colon != std::string::npos) {
        const std::string range = value.substr(colon + 1);
        const size_t dash = range.find('-');
        uint64_t lo = 0;
        uint64_t hi = 0;
        if (dash == std::string::npos) {
          if (!ParseUint(range, &lo)) {
            return io::Status::Error("fault spec: bad stall duration '" +
                                     range + "'");
          }
          hi = lo;
        } else if (!ParseUint(range.substr(0, dash), &lo) ||
                   !ParseUint(range.substr(dash + 1), &hi) || hi < lo) {
          return io::Status::Error("fault spec: bad stall range '" + range +
                                   "'");
        }
        if (hi > 60000) {
          return io::Status::Error("fault spec: stall above 60000 ms refused");
        }
        spec.stall_min_ms = static_cast<int>(lo);
        spec.stall_max_ms = static_cast<int>(hi);
      }
    } else {
      return io::Status::Error("fault spec: unknown key '" + key + "'");
    }
  }
  *out = std::move(spec);
  return io::Status::Ok();
}

io::Status FaultInjector::Install(const std::string& text) {
  FaultSpec spec;
  if (const io::Status parsed = FaultSpec::Parse(text, &spec); !parsed.ok) {
    return parsed;
  }
  Install(std::move(spec));
  return io::Status::Ok();
}

void FaultInjector::Install(FaultSpec spec) {
  const bool armed = !spec.inert();
  std::atomic_store_explicit(
      &spec_, std::shared_ptr<const FaultSpec>(
                  std::make_shared<FaultSpec>(std::move(spec))),
      std::memory_order_release);
  ticket_.store(0, std::memory_order_relaxed);
  active_.store(armed, std::memory_order_release);
}

void FaultInjector::Clear() { Install(FaultSpec{}); }

std::shared_ptr<const FaultSpec> FaultInjector::spec() const {
  auto spec = std::atomic_load_explicit(&spec_, std::memory_order_acquire);
  if (!spec) spec = std::make_shared<const FaultSpec>();
  return spec;
}

FaultAction FaultInjector::Decide(FaultOp op) {
  const auto spec =
      std::atomic_load_explicit(&spec_, std::memory_order_acquire);
  if (!spec || spec->inert()) return {};
  decisions_.fetch_add(1, std::memory_order_relaxed);
  if (spec->blackout) {
    blackouts_.fetch_add(1, std::memory_order_relaxed);
    return {FaultAction::Kind::kBlackout, 0};
  }
  const uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);
  // Independent uniform draws per fault class, all derived from
  // (seed, ticket) — the stream replays exactly under the same seed.
  uint64_t state = Mix(spec->seed ^ Mix(ticket));
  const double u_reset = ToUnit(state = Mix(state));
  const double u_stall = ToUnit(state = Mix(state));
  const double u_trunc = ToUnit(state = Mix(state));
  const double u_corrupt = ToUnit(state = Mix(state));
  const uint64_t stall_draw = state = Mix(state);

  if (op == FaultOp::kWrite) {
    if (spec->truncate > 0.0 && u_trunc < spec->truncate) {
      truncates_.fetch_add(1, std::memory_order_relaxed);
      return {FaultAction::Kind::kTruncate, 0};
    }
    if (spec->corrupt > 0.0 && u_corrupt < spec->corrupt) {
      corrupts_.fetch_add(1, std::memory_order_relaxed);
      return {FaultAction::Kind::kCorrupt, 0};
    }
  }
  if (op != FaultOp::kAccept && spec->reset > 0.0 && u_reset < spec->reset) {
    resets_.fetch_add(1, std::memory_order_relaxed);
    return {FaultAction::Kind::kReset, 0};
  }
  if (spec->stall > 0.0 && u_stall < spec->stall) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    const int span = spec->stall_max_ms - spec->stall_min_ms + 1;
    const int ms = spec->stall_min_ms +
                   static_cast<int>(stall_draw % static_cast<uint64_t>(span));
    return {FaultAction::Kind::kStall, ms};
  }
  return {};
}

FaultCounters FaultInjector::counters() const {
  FaultCounters counters;
  counters.decisions = decisions_.load(std::memory_order_relaxed);
  counters.resets = resets_.load(std::memory_order_relaxed);
  counters.stalls = stalls_.load(std::memory_order_relaxed);
  counters.truncates = truncates_.load(std::memory_order_relaxed);
  counters.corrupts = corrupts_.load(std::memory_order_relaxed);
  counters.blackouts = blackouts_.load(std::memory_order_relaxed);
  return counters;
}

std::string FaultInjector::DescribeJson() const {
  const auto current = spec();
  const FaultCounters counts = counters();
  JsonWriter w;
  w.BeginObject()
      .Key("active").Bool(active())
      .Key("spec").String(current->source)
      .Key("seed").UInt(current->seed)
      .Key("counters").BeginObject()
      .Key("decisions").UInt(counts.decisions)
      .Key("resets").UInt(counts.resets)
      .Key("stalls").UInt(counts.stalls)
      .Key("truncates").UInt(counts.truncates)
      .Key("corrupts").UInt(counts.corrupts)
      .Key("blackouts").UInt(counts.blackouts)
      .EndObject()
      .EndObject();
  return w.str();
}

std::shared_ptr<FaultInjector> InjectorFromEnv(io::Status* status) {
  auto injector = std::make_shared<FaultInjector>();
  if (status != nullptr) *status = io::Status::Ok();
  const char* spec = std::getenv("DSSDDI_FAULT_SPEC");
  if (spec != nullptr && spec[0] != '\0') {
    const io::Status installed = injector->Install(spec);
    if (status != nullptr) *status = installed;
  }
  return injector;
}

}  // namespace dssddi::net::fault
