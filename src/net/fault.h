#ifndef DSSDDI_NET_FAULT_H_
#define DSSDDI_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "io/binary.h"

namespace dssddi::net::fault {

/// Deterministic, seeded fault injection for the socket layer.
///
/// A FaultInjector sits (optionally) on HttpServer and HttpClient socket
/// paths and decides, per socket operation, whether to inject a fault:
/// connection resets, accept/read/write stalls, truncated or corrupted
/// writes, or a full blackout of the endpoint. Decisions are a pure
/// function of (seed, operation ticket): the ticket is a process-order
/// counter, so a single-threaded driver replays the exact same fault
/// schedule for the same seed, and a concurrent driver still gets the
/// same *distribution* with a reproducible total count.
///
/// Spec grammar (semicolon-separated clauses, whitespace ignored):
///
///   seed=N                 decision stream seed (default 1)
///   reset=P                P(connection reset) per read/write op
///   stall=P:MIN-MS         P(stall) per accept/read/write op; the stall
///   stall=P:MIN-MAX        duration is MIN..MAX ms (uniform, seeded)
///   truncate=P             P(short write then reset) per write op
///   corrupt=P              P(one flipped payload byte) per write op
///   blackout=1             endpoint fully dead: every accept/read/write
///                          is aborted (0 turns it back off)
///
/// Example: "seed=7;reset=0.05;stall=0.10:50-200;blackout=0".
///
/// The empty spec (or Clear()) disarms the injector. The armed check is
/// one inline relaxed atomic load on a (usually null) pointer — serving
/// paths pay nothing when chaos is off.
struct FaultSpec {
  uint64_t seed = 1;
  double reset = 0.0;
  double stall = 0.0;
  int stall_min_ms = 50;
  int stall_max_ms = 200;
  double truncate = 0.0;
  double corrupt = 0.0;
  bool blackout = false;
  /// The spec text as installed (canonical echo for /admin/fault).
  std::string source;

  /// Parses the grammar above. Empty text parses to a disarmed spec.
  static io::Status Parse(const std::string& text, FaultSpec* out);
  /// True when every probability is zero and blackout is off.
  bool inert() const {
    return reset <= 0.0 && stall <= 0.0 && truncate <= 0.0 &&
           corrupt <= 0.0 && !blackout;
  }
};

/// Which socket operation is asking for a decision.
enum class FaultOp : int { kAccept = 0, kRead = 1, kWrite = 2 };

/// One decision. `stall_ms` is meaningful only for kStall.
struct FaultAction {
  enum class Kind : int {
    kNone = 0,
    kReset,     // abort the connection (RST where the caller can)
    kStall,     // sleep stall_ms, then proceed
    kTruncate,  // write only part of the pending bytes, then abort
    kCorrupt,   // flip one payload byte, then proceed
    kBlackout,  // endpoint dead: abort without touching the socket
  };
  Kind kind = Kind::kNone;
  int stall_ms = 0;
};

/// Injection totals since construction (monotonic).
struct FaultCounters {
  uint64_t decisions = 0;  // ops that consulted an armed spec
  uint64_t resets = 0;
  uint64_t stalls = 0;
  uint64_t truncates = 0;
  uint64_t corrupts = 0;
  uint64_t blackouts = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Parses and installs `text` atomically; empty text disarms. The op
  /// ticket restarts at zero on every install so a replay is a replay.
  io::Status Install(const std::string& text);
  void Install(FaultSpec spec);
  void Clear();

  /// One relaxed load; false whenever the installed spec is inert.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Draws the decision for one socket operation. Call only when
  /// active() (Probe below does the guard).
  FaultAction Decide(FaultOp op);

  /// Snapshot of the installed spec (never null; default when disarmed).
  std::shared_ptr<const FaultSpec> spec() const;
  FaultCounters counters() const;
  /// {"spec":...,"active":...,"counters":{...}} for /admin/fault.
  std::string DescribeJson() const;

  /// Op observation: Probe() counts every socket operation that passed
  /// through it — armed or not — so tests can assert syscall-level
  /// behavior (e.g. "N responses flushed in one writev") by attaching a
  /// disarmed injector and reading the per-op totals.
  uint64_t op_count(FaultOp op) const {
    return op_observed_[static_cast<int>(op)].load(std::memory_order_relaxed);
  }
  void ObserveOp(FaultOp op) {
    op_observed_[static_cast<int>(op)].fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> op_observed_[3] = {{0}, {0}, {0}};
  std::atomic<bool> active_{false};
  std::shared_ptr<const FaultSpec> spec_;  // guarded by atomic_load/store
  std::atomic<uint64_t> ticket_{0};
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> truncates_{0};
  std::atomic<uint64_t> corrupts_{0};
  std::atomic<uint64_t> blackouts_{0};
};

/// The zero-overhead guard every socket call site uses: one pointer
/// compare plus one relaxed load when an injector is attached, a single
/// branch when none is.
inline FaultAction Probe(FaultInjector* injector, FaultOp op) {
  if (injector == nullptr) return {};
  injector->ObserveOp(op);
  if (!injector->active()) return {};
  return injector->Decide(op);
}

/// Fresh injector pre-armed from DSSDDI_FAULT_SPEC when the variable is
/// set and parseable (a bad spec aborts startup loudly rather than
/// silently running without the faults the operator asked for).
/// Always returns an injector so /admin/fault can arm it later.
std::shared_ptr<FaultInjector> InjectorFromEnv(io::Status* status = nullptr);

}  // namespace dssddi::net::fault

#endif  // DSSDDI_NET_FAULT_H_
