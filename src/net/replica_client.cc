#include "net/replica_client.h"

#include <algorithm>
#include <utility>

#include "net/wire.h"

namespace dssddi::net {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half_open";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  if (options_.window < 1) options_.window = 1;
  if (options_.min_volume < 1) options_.min_volume = 1;
  if (options_.min_volume > options_.window) {
    options_.min_volume = options_.window;
  }
  if (options_.half_open_successes < 1) options_.half_open_successes = 1;
  outcomes_.assign(static_cast<size_t>(options_.window), 0);
}

void CircuitBreaker::set_transition_hook(TransitionHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  hook_ = std::move(hook);
}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  if (state_ == to) return;
  const BreakerState from = state_;
  state_ = to;
  ++epoch_;  // invalidate tokens admitted under the previous state
  if (to == BreakerState::kOpen) {
    opened_at_ = std::chrono::steady_clock::now();
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  } else if (to == BreakerState::kHalfOpen) {
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  } else {  // kClosed: forgive history
    std::fill(outcomes_.begin(), outcomes_.end(), 0);
    outcome_pos_ = 0;
    outcome_count_ = 0;
    failures_ = 0;
  }
  if (hook_) hook_(from, to);
}

void CircuitBreaker::PushOutcomeLocked(bool failure) {
  failures_ -= outcomes_[outcome_pos_];
  outcomes_[outcome_pos_] = failure ? 1 : 0;
  failures_ += outcomes_[outcome_pos_];
  outcome_pos_ = (outcome_pos_ + 1) % outcomes_.size();
  if (outcome_count_ < outcomes_.size()) ++outcome_count_;
}

uint64_t CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return epoch_;
    case BreakerState::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      if (now - opened_at_ <
          std::chrono::milliseconds(options_.open_cooldown_ms)) {
        return 0;
      }
      TransitionLocked(BreakerState::kHalfOpen);
      ++probes_in_flight_;
      return epoch_;
    }
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ > 0) return 0;
      ++probes_in_flight_;
      return epoch_;
  }
  return 0;
}

void CircuitBreaker::RecordSuccess(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A stale token is a straggler from before a state transition (e.g. a
  // closed-era try completing after open → half-open): its outcome must
  // not drive the current probe, so it is ignored.
  if (token != epoch_) return;
  if (state_ == BreakerState::kHalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    if (++probe_successes_ >= options_.half_open_successes) {
      TransitionLocked(BreakerState::kClosed);
    }
    return;
  }
  if (state_ == BreakerState::kClosed) PushOutcomeLocked(false);
}

void CircuitBreaker::RecordFailure(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (token != epoch_) return;  // straggler from an earlier era
  if (state_ == BreakerState::kHalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  PushOutcomeLocked(true);
  if (outcome_count_ >= static_cast<size_t>(options_.min_volume) &&
      static_cast<double>(failures_) >=
          options_.failure_threshold * static_cast<double>(outcome_count_)) {
    TransitionLocked(BreakerState::kOpen);
  }
}

void CircuitBreaker::Abandon(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (token != epoch_) return;
  if (state_ == BreakerState::kHalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

// ---------------------------------------------------------------------
// ReplicaClient
// ---------------------------------------------------------------------

ReplicaClient::ReplicaClient(const ReplicaClientOptions& options)
    : options_(options),
      name_(options.host + ":" + std::to_string(options.port)),
      breaker_(options.breaker) {
  if (options_.max_pool < 1) options_.max_pool = 1;
  if (options_.pipelined) {
    PipelinedClientOptions pipelined_options;
    pipelined_options.host = options_.host;
    pipelined_options.port = options_.port;
    pipelined_options.connect_timeout_ms = options_.connect_timeout_ms;
    pipelined_ = std::make_unique<PipelinedClient>(pipelined_options);
  }
}

std::unique_ptr<HttpClient> ReplicaClient::Acquire(io::Status* status,
                                                   bool* from_pool) {
  *from_pool = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pool_.empty()) {
      auto client = std::move(pool_.back());
      pool_.pop_back();
      *status = io::Status::Ok();
      *from_pool = true;
      return client;
    }
  }
  auto client = std::make_unique<HttpClient>();
  *status = client->Connect(options_.host, options_.port,
                            options_.connect_timeout_ms);
  if (!status->ok) return nullptr;
  return client;
}

void ReplicaClient::Release(std::unique_ptr<HttpClient> client,
                            bool reusable) {
  if (!reusable || client == nullptr || !client->connected()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_.size() < options_.max_pool) pool_.push_back(std::move(client));
}

size_t ReplicaClient::pooled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_.size();
}

io::Status ReplicaClient::ExchangePipelined(
    const std::string& frame, const ClientRequestOptions& options,
    ClientResponse* out, uint64_t admission) {
  const bool was_connected = pipelined_->connected();
  io::Status status = pipelined_->Exchange(frame, options, out);
  if (!status.ok && was_connected &&
      status.message.find("deadline") == std::string::npos &&
      status.message.find("cancelled") == std::string::npos) {
    // The shared connection may have been idle-reaped by the server
    // between exchanges; the next Exchange redials, so redo once before
    // charging the replica. Deadline/cancel aborts are excluded — the
    // connection stays healthy through those and a redo would double
    // the per-try budget.
    status = pipelined_->Exchange(frame, options, out);
  }
  if (!status.ok) {
    if (status.message.find("cancelled") != std::string::npos) {
      breaker_.Abandon(admission);
    } else {
      breaker_.RecordFailure(admission);
    }
    return io::Status::Error(name_ + ": " + status.message);
  }
  if (out->status >= 500) {
    breaker_.RecordFailure(admission);
  } else {
    breaker_.RecordSuccess(admission);
  }
  return io::Status::Ok();
}

io::Status ReplicaClient::Exchange(const std::string& method,
                                   const std::string& target,
                                   const std::string& body,
                                   const ClientRequestOptions& options,
                                   ClientResponse* out, uint64_t admission) {
  if (pipelined_ != nullptr && method == "POST" && target == "/v1/suggest" &&
      options.content_type == wire::kContentType) {
    // Binary suggest traffic multiplexes onto the shared pipelined
    // connection; everything else (JSON, admin probes) stays on the
    // one-exchange HTTP pool.
    return ExchangePipelined(body, options, out, admission);
  }
  io::Status status;
  bool from_pool = false;
  std::unique_ptr<HttpClient> client = Acquire(&status, &from_pool);
  if (client == nullptr) {
    breaker_.RecordFailure(admission);
    return io::Status::Error("connect " + name_ + ": " + status.message);
  }
  status = client->Request(method, target, body, options, out);
  if (!status.ok && from_pool &&
      status.message.find("deadline") == std::string::npos &&
      status.message.find("cancelled") == std::string::npos) {
    // An idle pooled connection may have been reaped by the server
    // between exchanges; redo the try once on a fresh socket before
    // charging the replica with a failure. Deadline/cancel aborts are
    // excluded — redoing those would double the per-try budget.
    auto fresh = std::make_unique<HttpClient>();
    const io::Status connected = fresh->Connect(options_.host, options_.port,
                                                options_.connect_timeout_ms);
    if (connected.ok) {
      status = fresh->Request(method, target, body, options, out);
      client = std::move(fresh);
    }
  }
  if (!status.ok) {
    if (status.message.find("cancelled") != std::string::npos) {
      // The caller aborted the try (hedge loser, request deadline) —
      // the replica did nothing wrong, so the outcome is neutral. A
      // burst of tight-deadline cancellations must never open breakers
      // on a healthy cluster.
      breaker_.Abandon(admission);
    } else {
      breaker_.RecordFailure(admission);
    }
    return io::Status::Error(name_ + ": " + status.message);
  }
  // Any parsed response means the replica is alive; only 5xx counts
  // against it (429/504 are policy answers, not replica faults).
  if (out->status >= 500) {
    breaker_.RecordFailure(admission);
  } else {
    breaker_.RecordSuccess(admission);
  }
  Release(std::move(client), out->keep_alive);
  return io::Status::Ok();
}

}  // namespace dssddi::net
