#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace dssddi::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  DSSDDI_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DSSDDI_CHECK(wake_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  struct epoll_event event {};
  event.events = EPOLLIN;  // level-triggered wakeup channel
  event.data.fd = wake_fd_;
  DSSDDI_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0)
      << "epoll_ctl(wake): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  Stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Add(int fd, uint32_t events, IoHandler handler) {
  DSSDDI_CHECK(handler != nullptr) << "EventLoop::Add needs a handler";
  struct epoll_event event {};
  event.events = events | EPOLLET;
  event.data.fd = fd;
  DSSDDI_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) == 0)
      << "epoll_ctl(add fd " << fd << "): " << std::strerror(errno);
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
}

void EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event event {};
  event.events = events | EPOLLET;
  event.data.fd = fd;
  DSSDDI_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0)
      << "epoll_ctl(mod fd " << fd << "): " << std::strerror(errno);
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

bool EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    if (closed_) return false;
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still means the loop will wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  return true;
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    closed_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeups() {
  uint64_t counter = 0;
  while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
  }
}

void EventLoop::RunPosted() {
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  std::vector<struct epoll_event> events(64);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready =
        ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      DSSDDI_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeups();
        continue;
      }
      // Copy the handler: it may Remove(fd) (closing the connection)
      // while we are inside it.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<IoHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    RunPosted();
  }
  // Final drain so tasks posted just before Stop still observe a live
  // loop (connections are closed by the owner after Run returns).
  RunPosted();
}

}  // namespace dssddi::net
