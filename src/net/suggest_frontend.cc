#include "net/suggest_frontend.h"

#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/inference_bundle.h"
#include "net/json.h"

namespace dssddi::net {
namespace {

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  JsonWriter writer;
  writer.BeginObject().Key("error").String(message).EndObject();
  response.body = writer.str();
  return response;
}

void WriteEdges(JsonWriter& writer, const char* key,
                const std::vector<core::InteractionEdge>& edges) {
  writer.Key(key).BeginArray();
  for (const core::InteractionEdge& edge : edges) {
    writer.BeginArray().Int(edge.drug_u).Int(edge.drug_v).EndArray();
  }
  writer.EndArray();
}

std::string SuggestionToJson(const core::Suggestion& suggestion,
                             const serve::ModelSnapshot& snapshot,
                             int64_t patient_id, bool explain) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("patient_id").Int(patient_id);
  writer.Key("model_version").UInt(snapshot.version);
  writer.Key("drugs").BeginArray();
  for (const int drug : suggestion.drugs) writer.Int(drug);
  writer.EndArray();
  // %.9g round-trips binary32 exactly: a client parsing these decimals
  // recovers the very floats the model produced.
  writer.Key("scores").BeginArray();
  for (const float score : suggestion.scores) writer.Float(score);
  writer.EndArray();
  writer.Key("drug_names").BeginArray();
  for (const int drug : suggestion.drugs) {
    if (drug >= 0 &&
        drug < static_cast<int>(snapshot.bundle.drug_names.size())) {
      writer.String(snapshot.bundle.drug_names[drug]);
    } else {
      writer.Null();
    }
  }
  writer.EndArray();
  if (explain) {
    const core::Explanation& explanation = suggestion.explanation;
    writer.Key("explanation").BeginObject();
    writer.Key("suggestion_satisfaction")
        .Double(explanation.suggestion_satisfaction);
    writer.Key("subgraph_drugs").BeginArray();
    for (const int drug : explanation.subgraph_drugs) writer.Int(drug);
    writer.EndArray();
    WriteEdges(writer, "synergies_within", explanation.synergies_within);
    WriteEdges(writer, "antagonisms_within", explanation.antagonisms_within);
    WriteEdges(writer, "antagonisms_outward", explanation.antagonisms_outward);
    writer.Key("trussness").Int(explanation.trussness);
    writer.Key("diameter").Int(explanation.diameter);
    writer.Key("density").Double(explanation.density);
    writer.EndObject();
  }
  writer.EndObject();
  return writer.str();
}

}  // namespace

void SuggestFrontend::Handle(const HttpRequest& request,
                             ResponseWriter writer) {
  const std::string& target = request.target;
  if (target == "/v1/suggest") {
    if (request.method != "POST") {
      writer.Send(JsonError(405, "use POST for /v1/suggest"));
      return;
    }
    HandleSuggest(request, writer);
    return;
  }
  // HEAD is rejected along with everything else non-GET: the server
  // always writes the body it declares, and silently serving HEAD with
  // a body would desync keep-alive clients.
  if (target == "/healthz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /healthz"));
      return;
    }
    HandleHealth(writer);
    return;
  }
  if (target == "/statsz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /statsz"));
      return;
    }
    HandleStats(writer);
    return;
  }
  if (target == "/admin/reload") {
    if (request.method != "POST") {
      writer.Send(JsonError(405, "use POST for /admin/reload"));
      return;
    }
    HandleReload(request, writer);
    return;
  }
  writer.Send(JsonError(404, "no route for '" + target + "'"));
}

void SuggestFrontend::HandleSuggest(const HttpRequest& request,
                                    ResponseWriter writer) {
  JsonValue document;
  std::string parse_error;
  if (!ParseJson(request.body, &document, &parse_error)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "bad JSON: " + parse_error));
    return;
  }
  if (!document.is_object()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "body must be a JSON object"));
    return;
  }
  const JsonValue* features = document.Find("features");
  if (features == nullptr || !features->is_array()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "'features' must be an array of numbers"));
    return;
  }

  serve::Request suggest;
  suggest.features.reserve(features->Items().size());
  for (const JsonValue& value : features->Items()) {
    if (!value.is_number()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(JsonError(400, "'features' must be an array of numbers"));
      return;
    }
    suggest.features.push_back(static_cast<float>(value.AsDouble()));
  }
  if (const JsonValue* patient_id = document.Find("patient_id")) {
    suggest.patient_id = patient_id->AsInt(-1);
  }
  if (const JsonValue* k = document.Find("k")) {
    suggest.k = static_cast<int>(k->AsInt(3));
  }
  if (const JsonValue* explain = document.Find("explain")) {
    suggest.explain = explain->AsBool(true);
  }

  const int64_t patient_id = suggest.patient_id;
  const bool explain = suggest.explain;
  serve::SuggestionService* service = service_;
  const bool admitted = service_->TrySubmitAsync(
      std::move(suggest),
      [writer, service, patient_id, explain](
          core::Suggestion suggestion,
          std::shared_ptr<const serve::ModelSnapshot> snapshot,
          std::exception_ptr error) {
        if (error) {
          try {
            std::rethrow_exception(error);
          } catch (const std::invalid_argument& e) {
            writer.Send(JsonError(400, e.what()));
          } catch (const std::exception& e) {
            writer.Send(JsonError(500, e.what()));
          }
          return;
        }
        // Serialize against the snapshot that actually produced the
        // suggestion: under a concurrent reload the service's current
        // snapshot may already be a different model with different
        // drug names and version.
        if (!snapshot) snapshot = service->snapshot();
        HttpResponse response;
        response.body =
            SuggestionToJson(suggestion, *snapshot, patient_id, explain);
        writer.Send(std::move(response));
      });
  if (!admitted) {
    HttpResponse shed = JsonError(429, "overloaded, retry later");
    shed.extra_headers.emplace_back("Retry-After", "1");
    writer.Send(std::move(shed));
  }
}

void SuggestFrontend::HandleHealth(ResponseWriter writer) const {
  const serve::ServiceStats stats = service_->Stats();
  HttpResponse response;
  JsonWriter json;
  json.BeginObject()
      .Key("status").String("ok")
      .Key("model_version").UInt(stats.model_version)
      .Key("uptime_seconds").Double(stats.uptime_seconds)
      .EndObject();
  response.body = json.str();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleStats(ResponseWriter writer) const {
  const serve::ServiceStats stats = service_->Stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("service").BeginObject()
      .Key("requests").UInt(stats.requests)
      .Key("completed").UInt(stats.completed)
      .Key("in_flight").UInt(stats.in_flight)
      .Key("queue_depth").UInt(stats.queue_depth)
      .Key("batches").UInt(stats.batches)
      .Key("mean_batch_size").Double(stats.mean_batch_size)
      .Key("qps").Double(stats.qps)
      .Key("p50_latency_ms").Double(stats.p50_latency_ms)
      .Key("p99_latency_ms").Double(stats.p99_latency_ms)
      .Key("num_threads").Int(stats.num_threads)
      .Key("gemm_backend").String(stats.gemm_backend)
      .Key("quantization").String(stats.quantization)
      .Key("uptime_seconds").Double(stats.uptime_seconds)
      .EndObject();
  json.Key("admission").BeginObject()
      .Key("admitted").UInt(stats.admitted)
      .Key("shed").UInt(stats.shed)
      .EndObject();
  json.Key("cache").BeginObject()
      .Key("hits").UInt(stats.cache_hits)
      .Key("misses").UInt(stats.cache_misses)
      .Key("hit_rate").Double(stats.cache_hit_rate)
      .Key("coalesced").UInt(stats.coalesced)
      .EndObject();
  json.Key("model").BeginObject()
      .Key("version").UInt(stats.model_version)
      .Key("reloads").UInt(stats.reloads)
      .Key("display_name").String(service_->snapshot()->bundle.display_name)
      .Key("quantization").String(stats.quantization);
  // Per-layer weight-quantization error (patient encoder layers first,
  // then decoder layers); empty on the float path.
  json.Key("quant_layer_max_abs_error").BeginArray();
  for (const double error : stats.quant_layer_max_abs_error) json.Double(error);
  json.EndArray();
  json.EndObject();
  if (http_ != nullptr) {
    const HttpServer::Counters http = http_->counters();
    json.Key("http").BeginObject()
        .Key("accepted").UInt(http.accepted)
        .Key("active").UInt(http.active)
        .Key("requests").UInt(http.requests)
        .Key("responses").UInt(http.responses)
        .Key("parse_errors").UInt(http.parse_errors)
        .Key("overload_closed").UInt(http.overload_closed)
        .Key("bad_requests").UInt(bad_requests())
        .EndObject();
  }
  json.EndObject();
  HttpResponse response;
  response.body = json.str();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleReload(const HttpRequest& request,
                                   ResponseWriter writer) {
  JsonValue document;
  std::string parse_error;
  if (!ParseJson(request.body, &document, &parse_error) ||
      !document.is_object()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "bad JSON: " + parse_error));
    return;
  }
  const JsonValue* path = document.Find("path");
  if (path == nullptr || !path->is_string() || path->AsString().empty()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "'path' must name a bundle file"));
    return;
  }

  // Optional "quantize": "auto" (default) follows the process-wide
  // mode, "none"/"float" pins float, "int8" pins the quantized path —
  // so one reload call flips a live server between float and int8.
  int quantization = io::kQuantizeAuto;
  if (const JsonValue* quantize = document.Find("quantize")) {
    tensor::kernels::QuantMode mode;
    if (!quantize->is_string() ||
        (quantize->AsString() != "auto" &&
         !tensor::kernels::ParseQuantMode(quantize->AsString(), &mode))) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(JsonError(400, "'quantize' must be auto, none or int8"));
      return;
    }
    if (quantize->AsString() != "auto") quantization = static_cast<int>(mode);
  }

  io::InferenceBundle bundle;
  if (const io::Status loaded = io::LoadInferenceBundle(path->AsString(), &bundle);
      !loaded.ok) {
    writer.Send(JsonError(400, "cannot load bundle: " + loaded.message));
    return;
  }
  bundle.quantization = quantization;
  const int num_drugs = bundle.num_drugs();
  const std::string display_name = bundle.display_name;
  if (const io::Status swapped = service_->Reload(std::move(bundle));
      !swapped.ok) {
    writer.Send(JsonError(409, swapped.message));
    return;
  }
  HttpResponse response;
  JsonWriter json;
  json.BeginObject()
      .Key("model_version").UInt(service_->model_version())
      .Key("display_name").String(display_name)
      .Key("num_drugs").Int(num_drugs)
      .Key("quantization").String(service_->snapshot()->quantization_name())
      .EndObject();
  response.body = json.str();
  writer.Send(std::move(response));
}

}  // namespace dssddi::net
