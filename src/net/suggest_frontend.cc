#include "net/suggest_frontend.h"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/inference_bundle.h"
#include "net/json.h"
#include "net/wire.h"
#include "tensor/kernels/gemm_backend.h"

// Build identity for dssddi_build_info; CMake passes the real values,
// these fallbacks keep non-CMake builds (and tooling) compiling.
#ifndef DSSDDI_VERSION
#define DSSDDI_VERSION "dev"
#endif
#ifndef DSSDDI_GIT_SHA
#define DSSDDI_GIT_SHA "unknown"
#endif

namespace dssddi::net {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  JsonWriter writer;
  writer.BeginObject().Key("error").String(message).EndObject();
  response.body = writer.str();
  return response;
}

/// Error in the codec the client spoke: binary requests get binary
/// error frames (same HTTP status), JSON requests get JSON bodies.
/// `trace_id` rides in the binary frame (0 = request failed before a
/// trace id existed) so rejections stay correlatable with /tracez;
/// `request_id` echoes the failed request's multiplexing correlator.
HttpResponse CodecError(bool binary, int status, const std::string& message,
                        uint64_t trace_id = 0, uint64_t request_id = 0) {
  if (!binary) return JsonError(status, message);
  HttpResponse response;
  response.status = status;
  response.content_type = wire::kContentType;
  response.body = wire::EncodeError(
      {static_cast<uint32_t>(status), message, trace_id, request_id});
  return response;
}

/// Server-Timing value from a trace's stamped stages, e.g.
/// "queue_wait;dur=0.213, gemm;dur=1.871". Only stages with nonzero
/// time appear; durations are milliseconds per the header's spec.
std::string ServerTimingValue(const obs::Trace& trace) {
  std::string out;
  char buf[64];
  for (int s = 0; s < obs::kNumStages; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const uint64_t ns = trace.StageNs(stage);
    if (ns == 0) continue;
    if (!out.empty()) out += ", ";
    std::snprintf(buf, sizeof(buf), "%s;dur=%.3f", obs::StageName(stage),
                  static_cast<double>(ns) / 1e6);
    out += buf;
  }
  return out;
}

void WriteEdges(JsonWriter& writer, const char* key,
                const std::vector<core::InteractionEdge>& edges) {
  writer.Key(key).BeginArray();
  for (const core::InteractionEdge& edge : edges) {
    writer.BeginArray().Int(edge.drug_u).Int(edge.drug_v).EndArray();
  }
  writer.EndArray();
}

std::string SuggestionToJson(const core::Suggestion& suggestion,
                             const serve::ModelSnapshot& snapshot,
                             int64_t patient_id, bool explain,
                             uint64_t trace_id) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("patient_id").Int(patient_id);
  writer.Key("model_version").UInt(snapshot.version);
  writer.Key("trace_id").UInt(trace_id);
  writer.Key("drugs").BeginArray();
  for (const int drug : suggestion.drugs) writer.Int(drug);
  writer.EndArray();
  // %.9g round-trips binary32 exactly: a client parsing these decimals
  // recovers the very floats the model produced.
  writer.Key("scores").BeginArray();
  for (const float score : suggestion.scores) writer.Float(score);
  writer.EndArray();
  writer.Key("drug_names").BeginArray();
  for (const int drug : suggestion.drugs) {
    if (drug >= 0 &&
        drug < static_cast<int>(snapshot.bundle.drug_names.size())) {
      writer.String(snapshot.bundle.drug_names[drug]);
    } else {
      writer.Null();
    }
  }
  writer.EndArray();
  if (explain) {
    const core::Explanation& explanation = suggestion.explanation;
    writer.Key("explanation").BeginObject();
    writer.Key("suggestion_satisfaction")
        .Double(explanation.suggestion_satisfaction);
    writer.Key("subgraph_drugs").BeginArray();
    for (const int drug : explanation.subgraph_drugs) writer.Int(drug);
    writer.EndArray();
    WriteEdges(writer, "synergies_within", explanation.synergies_within);
    WriteEdges(writer, "antagonisms_within", explanation.antagonisms_within);
    WriteEdges(writer, "antagonisms_outward", explanation.antagonisms_outward);
    writer.Key("trussness").Int(explanation.trussness);
    writer.Key("diameter").Int(explanation.diameter);
    writer.Key("density").Double(explanation.density);
    writer.EndObject();
  }
  writer.EndObject();
  return writer.str();
}

std::string SuggestionToFrame(const core::Suggestion& suggestion,
                              const serve::ModelSnapshot& snapshot,
                              uint64_t trace_id, uint64_t request_id) {
  wire::SuggestResponseFrame frame;
  frame.model_version = snapshot.version;
  frame.trace_id = trace_id;
  frame.request_id = request_id;
  frame.drugs.assign(suggestion.drugs.begin(), suggestion.drugs.end());
  frame.scores = suggestion.scores;
  return wire::EncodeSuggestResponse(frame);
}

/// True when `value` names the binary frame media type, ignoring any
/// parameters ("application/x-dssddi; charset=binary" still counts —
/// proxies and client libraries append parameters routinely).
bool IsBinaryContentType(const std::string& value) {
  size_t end = value.find(';');
  if (end == std::string::npos) end = value.size();
  while (end > 0 && (value[end - 1] == ' ' || value[end - 1] == '\t')) --end;
  size_t begin = 0;
  while (begin < end && (value[begin] == ' ' || value[begin] == '\t')) ++begin;
  return AsciiEqualsIgnoreCase(value.substr(begin, end - begin),
                               wire::kContentType);
}

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Value of `key` in a raw query string ("a=1&b=2"), empty when absent.
/// No percent-decoding: every value this API accepts (severities, trace
/// ids, routes, format names) is literal-safe, and '/' needs no escape
/// in a query per RFC 3986.
std::string QueryParam(const std::string& query, const char* key) {
  const size_t key_len = std::strlen(key);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (end - pos > key_len && query.compare(pos, key_len, key) == 0 &&
        query[pos + key_len] == '=') {
      return query.substr(pos + key_len + 1, end - pos - key_len - 1);
    }
    pos = end + 1;
  }
  return "";
}

/// Strictly-numeric header parse for X-Deadline-Ms / X-Trace-Id; a
/// malformed value is a client bug worth a 400, not a silent default.
bool ParseUintHeader(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    if (parsed > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

SuggestFrontend::RouteMetrics::RouteMetrics(
    std::shared_ptr<obs::Registry> owner, const char* name)
    : route(name),
      registry(std::move(owner)),
      requests(registry->GetCounter("dssddi_http_requests_total",
                                    "HTTP requests handled, by route",
                                    {{"route", name}})),
      responses_2xx(registry->GetCounter(
          "dssddi_http_responses_total",
          "HTTP responses by route and status class",
          {{"route", name}, {"class", "2xx"}})),
      responses_4xx(registry->GetCounter(
          "dssddi_http_responses_total",
          "HTTP responses by route and status class",
          {{"route", name}, {"class", "4xx"}})),
      responses_5xx(registry->GetCounter(
          "dssddi_http_responses_total",
          "HTTP responses by route and status class",
          {{"route", name}, {"class", "5xx"}})),
      latency(registry->GetHistogram(
          "dssddi_request_latency_ms",
          "Handler-observed latency (dispatch to response send) in "
          "milliseconds, by route",
          {{"route", name}})) {}

SuggestFrontend::SuggestFrontend(serve::SuggestionService* service,
                                 const SuggestFrontendOptions& options)
    : service_(service),
      options_(options),
      recorder_(service->flight_recorder()),
      suggest_metrics_(std::make_shared<RouteMetrics>(service->registry(),
                                                      "/v1/suggest")),
      healthz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/healthz")),
      statsz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/statsz")),
      metricsz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/metricsz")),
      tracez_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/tracez")),
      logz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/logz")),
      sloz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/sloz")),
      reload_metrics_(std::make_shared<RouteMetrics>(service->registry(),
                                                     "/admin/reload")),
      readyz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/readyz")),
      fault_metrics_(std::make_shared<RouteMetrics>(service->registry(),
                                                    "/admin/fault")) {
  suggest_sampler_ = service_->trace_collector()->SamplerForRoute("/v1/suggest");
  suggest_sampler_->set_every(options_.trace_sample_every);
  // Build/runtime identity as an info-style gauge: the value is always 1,
  // the labels carry the facts — so dashboards and alert annotations can
  // join any series against what was running when it was scraped.
  service_->registry()
      ->GetGauge("dssddi_build_info",
                 "Build and runtime identity (constant 1; see labels)",
                 {{"version", DSSDDI_VERSION},
                  {"gemm_backend", tensor::kernels::ActiveBackendName()},
                  {"quantize", service_->snapshot()->quantization_name()},
                  {"git_sha", DSSDDI_GIT_SHA}})
      ->Set(1.0);
}

void SuggestFrontend::RecordRejection(RouteMetrics& metrics,
                                      const char* detail) {
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  metrics.responses_4xx->Increment();
  recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kBadRequest,
                    metrics.route, 400, 0, 0.0, nullptr, detail);
}

void SuggestFrontend::Handle(const HttpRequest& request,
                             ResponseWriter writer) {
  const Clock::time_point start = Clock::now();
  // Split the target at '?': routes match on the path, observability
  // endpoints (/metricsz format, /logz filters) read the query.
  const size_t question = request.target.find('?');
  const std::string path = question == std::string::npos
                               ? request.target
                               : request.target.substr(0, question);
  const std::string query = question == std::string::npos
                                ? std::string()
                                : request.target.substr(question + 1);
  if (path == "/v1/suggest") {
    if (request.method != "POST") {
      writer.Send(JsonError(405, "use POST for /v1/suggest"));
      return;
    }
    HandleSuggest(request, writer, start);
    return;
  }
  // HEAD is rejected along with everything else non-GET: the server
  // always writes the body it declares, and silently serving HEAD with
  // a body would desync keep-alive clients.
  if (path == "/healthz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /healthz"));
      return;
    }
    HandleHealth(writer);
    healthz_metrics_->requests->Increment();
    healthz_metrics_->CountResponse(200);
    healthz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/readyz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /readyz"));
      return;
    }
    const int status = HandleReadyz(writer);
    readyz_metrics_->requests->Increment();
    readyz_metrics_->CountResponse(status);
    readyz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/admin/fault") {
    const int status = HandleAdminFault(request, writer);
    fault_metrics_->requests->Increment();
    fault_metrics_->CountResponse(status);
    fault_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/statsz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /statsz"));
      return;
    }
    HandleStats(writer);
    statsz_metrics_->requests->Increment();
    statsz_metrics_->CountResponse(200);
    statsz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/metricsz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /metricsz"));
      return;
    }
    const std::string format = QueryParam(query, "format");
    if (!format.empty() && format != "openmetrics" && format != "prometheus") {
      RecordRejection(*metricsz_metrics_,
                      "unknown /metricsz format (want openmetrics)");
      writer.Send(JsonError(400, "unknown format '" + format +
                                     "' (want openmetrics or prometheus)"));
      return;
    }
    HandleMetrics(writer, format == "openmetrics");
    metricsz_metrics_->requests->Increment();
    metricsz_metrics_->CountResponse(200);
    metricsz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/tracez") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /tracez"));
      return;
    }
    HandleTracez(writer);
    tracez_metrics_->requests->Increment();
    tracez_metrics_->CountResponse(200);
    tracez_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/logz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /logz"));
      return;
    }
    const int status = HandleLogz(query, writer);
    logz_metrics_->requests->Increment();
    logz_metrics_->CountResponse(status);
    logz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/sloz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /sloz"));
      return;
    }
    const int status = HandleSloz(writer);
    sloz_metrics_->requests->Increment();
    sloz_metrics_->CountResponse(status);
    sloz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (path == "/admin/reload") {
    if (request.method != "POST") {
      writer.Send(JsonError(405, "use POST for /admin/reload"));
      return;
    }
    const int status = HandleReload(request, writer);
    reload_metrics_->requests->Increment();
    reload_metrics_->CountResponse(status);
    reload_metrics_->latency.Record(MillisSince(start));
    return;
  }
  writer.Send(JsonError(404, "no route for '" + path + "'"));
}

void SuggestFrontend::HandleSuggest(const HttpRequest& request,
                                    ResponseWriter writer,
                                    Clock::time_point start) {
  // Content negotiation: the same route speaks JSON (default) or the
  // binary frame codec, selected per request by Content-Type. The
  // response always mirrors the request's codec.
  const std::string* content_type = request.FindHeader("Content-Type");
  const bool binary = content_type != nullptr && IsBinaryContentType(*content_type);

  serve::Request suggest;
  int64_t budget_ms = 0;  // 0 = fall through to the route default
  uint64_t trace_id = 0;
  uint64_t request_id = 0;  // multiplexing correlator, echoed verbatim
  serve::RequestPriority priority = serve::RequestPriority::kInteractive;

  if (binary) {
    wire::SuggestRequestFrame frame;
    std::string frame_error;
    if (!wire::DecodeSuggestRequest(request.body, &frame, &frame_error)) {
      uint64_t bad_id = 0;
      wire::PeekRequestId(request.body, &bad_id);
      RecordRejection(*suggest_metrics_, "binary frame decode failed");
      writer.Send(
          CodecError(binary, 400, "bad frame: " + frame_error, 0, bad_id));
      return;
    }
    suggest.patient_id = frame.patient_id;
    suggest.features = std::move(frame.features);
    suggest.k = frame.k;
    suggest.explain = frame.explain;
    budget_ms = frame.deadline_ms;
    trace_id = frame.trace_id;
    request_id = frame.request_id;
    if (frame.batch_priority) priority = serve::RequestPriority::kBatch;
  } else {
    JsonValue document;
    std::string parse_error;
    if (!ParseJson(request.body, &document, &parse_error)) {
      RecordRejection(*suggest_metrics_, "request body is not valid JSON");
      writer.Send(JsonError(400, "bad JSON: " + parse_error));
      return;
    }
    if (!document.is_object()) {
      RecordRejection(*suggest_metrics_, "request body is not a JSON object");
      writer.Send(JsonError(400, "body must be a JSON object"));
      return;
    }
    const JsonValue* features = document.Find("features");
    if (features == nullptr || !features->is_array()) {
      RecordRejection(*suggest_metrics_, "'features' missing or not an array");
      writer.Send(JsonError(400, "'features' must be an array of numbers"));
      return;
    }
    suggest.features.reserve(features->Items().size());
    for (const JsonValue& value : features->Items()) {
      if (!value.is_number()) {
        RecordRejection(*suggest_metrics_, "non-numeric 'features' element");
        writer.Send(JsonError(400, "'features' must be an array of numbers"));
        return;
      }
      suggest.features.push_back(static_cast<float>(value.AsDouble()));
    }
    if (const JsonValue* patient_id = document.Find("patient_id")) {
      suggest.patient_id = patient_id->AsInt(-1);
    }
    if (const JsonValue* k = document.Find("k")) {
      suggest.k = static_cast<int>(k->AsInt(3));
    }
    if (const JsonValue* explain = document.Find("explain")) {
      suggest.explain = explain->AsBool(true);
    }
  }

  // Deadline / priority / trace headers apply to both codecs (for
  // binary, a nonzero in-frame field wins over the header twin). The
  // headers are validated whenever present — a garbage value is a
  // client bug worth a 400 even when an in-frame field outranks it.
  if (const std::string* header = request.FindHeader("X-Deadline-Ms")) {
    uint64_t parsed = 0;
    if (!ParseUintHeader(*header, &parsed) || parsed == 0 ||
        parsed > INT32_MAX) {
      RecordRejection(*suggest_metrics_, "malformed X-Deadline-Ms header");
      writer.Send(CodecError(binary, 400,
                             "X-Deadline-Ms must be a positive integer", 0,
                             request_id));
      return;
    }
    if (budget_ms == 0) budget_ms = static_cast<int64_t>(parsed);
  }
  if (const std::string* header = request.FindHeader("X-Trace-Id")) {
    uint64_t parsed = 0;
    if (!ParseUintHeader(*header, &parsed)) {
      RecordRejection(*suggest_metrics_, "malformed X-Trace-Id header");
      writer.Send(CodecError(binary, 400, "X-Trace-Id must be an integer", 0,
                             request_id));
      return;
    }
    if (trace_id == 0) trace_id = parsed;
  }
  if (const std::string* header = request.FindHeader("X-Priority")) {
    if (AsciiEqualsIgnoreCase(*header, "batch")) {
      priority = serve::RequestPriority::kBatch;
    } else if (!AsciiEqualsIgnoreCase(*header, "interactive")) {
      RecordRejection(*suggest_metrics_, "unknown X-Priority header value");
      writer.Send(CodecError(binary, 400,
                             "X-Priority must be interactive or batch", 0,
                             request_id));
      return;
    }
  }
  if (budget_ms == 0) budget_ms = options_.DefaultBudgetMs(request.target);
  if (options_.max_budget_ms > 0 && budget_ms > options_.max_budget_ms) {
    budget_ms = options_.max_budget_ms;
  }
  if (trace_id == 0) {
    trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Head-based sampling decision, made once the request has a trace id.
  // An unsampled request (the common case) carries a null trace: every
  // stamp downstream is a pointer check, and nothing here allocated.
  // http_parse is stamped out-of-band — the span covers dispatch to
  // here, i.e. content negotiation + body decode + header validation.
  std::shared_ptr<obs::Trace> trace =
      service_->trace_collector()->MaybeStartTrace(suggest_sampler_,
                                                   "/v1/suggest", trace_id);
  if (trace) {
    trace->start = start;
    trace->AddStageNs(
        obs::Stage::kHttpParse,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start)
                .count()));
  }

  // The edge: one RequestContext, created here, carried through every
  // layer. Arrival anchors at dispatch time (not post-parse), so parse
  // cost already counts against the budget.
  suggest.context.arrival = start;
  suggest.context.priority = priority;
  suggest.context.trace_id = trace_id;
  suggest.context.trace = trace;
  if (budget_ms > 0) {
    suggest.context.deadline = start + std::chrono::milliseconds(budget_ms);
  }

  const int64_t patient_id = suggest.patient_id;
  const bool explain = suggest.explain;
  const bool server_timing = options_.server_timing;
  serve::SuggestionService* service = service_;
  std::shared_ptr<RouteMetrics> metrics = suggest_metrics_;
  std::shared_ptr<obs::FlightRecorder> recorder = recorder_;
  const serve::AdmissionController::Decision decision =
      service_->TrySubmitAsync(
          std::move(suggest),
          [writer, service, patient_id, explain, binary, trace_id, request_id,
           metrics, recorder, start, trace, server_timing](
              core::Suggestion suggestion,
              std::shared_ptr<const serve::ModelSnapshot> snapshot,
              std::exception_ptr error) {
            metrics->requests->Increment();
            // One latency record per completion, exemplar attached: the
            // bucket this request lands in remembers its trace id, so an
            // OpenMetrics scrape links tail buckets to /tracez//logz.
            const double total_ms = MillisSince(start);
            metrics->latency.Record(total_ms, trace_id, UnixSecondsNow());
            if (error) {
              int status = 500;
              std::string message;
              try {
                std::rethrow_exception(error);
              } catch (const serve::DeadlineExceeded& e) {
                status = 504;
                message = e.what();
              } catch (const std::invalid_argument& e) {
                status = 400;
                message = e.what();
              } catch (const std::exception& e) {
                message = e.what();
              }
              if (trace) trace->SetStatus(status);
              metrics->CountResponse(status);
              recorder->Record(
                  status >= 500 ? obs::LogSeverity::kError
                                : obs::LogSeverity::kWarning,
                  status == 504   ? obs::LogReason::kExpired
                  : status == 400 ? obs::LogReason::kBadRequest
                                  : obs::LogReason::kScoringError,
                  "/v1/suggest", status, trace_id, total_ms, trace.get());
              obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
              HttpResponse response =
                  CodecError(binary, status, message, trace_id, request_id);
              response.extra_headers.emplace_back("X-Trace-Id",
                                                  std::to_string(trace_id));
              writer.Send(std::move(response));
              return;
            }
            metrics->CountResponse(200);
            recorder->Record(obs::LogSeverity::kInfo, obs::LogReason::kNone,
                             "/v1/suggest", 200, trace_id, total_ms,
                             trace.get());
            // Serialize against the snapshot that actually produced the
            // suggestion: under a concurrent reload the service's current
            // snapshot may already be a different model with different
            // drug names and version.
            if (!snapshot) snapshot = service->snapshot();
            obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
            HttpResponse response;
            if (binary) {
              response.content_type = wire::kContentType;
              response.body =
                  SuggestionToFrame(suggestion, *snapshot, trace_id, request_id);
            } else {
              response.body = SuggestionToJson(suggestion, *snapshot,
                                               patient_id, explain, trace_id);
            }
            response.extra_headers.emplace_back("X-Trace-Id",
                                                std::to_string(trace_id));
            serialize_span.Stop();
            // The header reports the stages stamped so far; serialize is
            // closed above just so it can be included here.
            if (server_timing && trace) {
              std::string timing = ServerTimingValue(*trace);
              if (!timing.empty()) {
                response.extra_headers.emplace_back("Server-Timing",
                                                    std::move(timing));
              }
            }
            writer.Send(std::move(response));
          });
  switch (decision) {
    case serve::AdmissionController::Decision::kAdmit:
      break;
    case serve::AdmissionController::Decision::kShedLoad: {
      suggest_metrics_->requests->Increment();
      suggest_metrics_->latency.Record(MillisSince(start));
      suggest_metrics_->CountResponse(429);
      recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kShedLoad,
                        "/v1/suggest", 429, trace_id, MillisSince(start),
                        trace.get());
      if (trace) trace->SetStatus(429);
      obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
      HttpResponse shed = CodecError(binary, 429, "overloaded, retry later",
                                     trace_id, request_id);
      shed.extra_headers.emplace_back("Retry-After", "1");
      shed.extra_headers.emplace_back("X-Trace-Id", std::to_string(trace_id));
      writer.Send(std::move(shed));
      break;
    }
    case serve::AdmissionController::Decision::kShedDeadline: {
      // No Retry-After: the client's budget, not our load, was the
      // problem — retrying with the same budget would shed again.
      suggest_metrics_->requests->Increment();
      suggest_metrics_->latency.Record(MillisSince(start));
      suggest_metrics_->CountResponse(504);
      recorder_->Record(obs::LogSeverity::kWarning,
                        obs::LogReason::kShedDeadline, "/v1/suggest", 504,
                        trace_id, MillisSince(start), trace.get());
      if (trace) trace->SetStatus(504);
      obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
      HttpResponse shed = CodecError(
          binary, 504,
          "deadline infeasible: remaining budget below observed service time",
          trace_id, request_id);
      shed.extra_headers.emplace_back("X-Trace-Id", std::to_string(trace_id));
      writer.Send(std::move(shed));
      break;
    }
  }
}

void SuggestFrontend::HandleHealth(ResponseWriter writer) const {
  const serve::ServiceStats stats = service_->Stats();
  HttpResponse response;
  JsonWriter json;
  json.BeginObject()
      .Key("status").String("ok")
      .Key("model_version").UInt(stats.model_version)
      .Key("uptime_seconds").Double(stats.uptime_seconds)
      .EndObject();
  response.body = json.str();
  writer.Send(std::move(response));
}

int SuggestFrontend::HandleReadyz(ResponseWriter writer) const {
  // Liveness (healthz) and readiness diverge during graceful shutdown:
  // a draining server still answers in-flight work but must drop out of
  // load-balancer rotation.
  const bool draining = http_ != nullptr && http_->draining();
  const serve::ServiceStats stats = service_->Stats();
  HttpResponse response;
  response.status = draining ? 503 : 200;
  JsonWriter json;
  json.BeginObject()
      .Key("ready").Bool(!draining)
      .Key("draining").Bool(draining)
      .Key("model_version").UInt(stats.model_version)
      .EndObject();
  response.body = json.str();
  const int status = response.status;
  writer.Send(std::move(response));
  return status;
}

int SuggestFrontend::HandleAdminFault(const HttpRequest& request,
                                      ResponseWriter writer) {
  fault::FaultInjector* injector = options_.fault_injector.get();
  if (injector == nullptr) {
    writer.Send(JsonError(404, "no fault injector attached"));
    return 404;
  }
  if (request.method == "GET") {
    HttpResponse response;
    response.body = injector->DescribeJson();
    writer.Send(std::move(response));
    return 200;
  }
  if (request.method != "POST") {
    writer.Send(JsonError(405, "use GET or POST for /admin/fault"));
    return 405;
  }
  JsonValue body;
  std::string error;
  const JsonValue* spec = nullptr;
  if (!ParseJson(request.body, &body, &error) ||
      (spec = body.Find("spec")) == nullptr || !spec->is_string()) {
    RecordRejection(*fault_metrics_, "bad /admin/fault body (want {\"spec\"})");
    writer.Send(JsonError(400, "body wants {\"spec\":\"seed=1;reset=0.05\"}"));
    return 400;
  }
  if (spec->AsString().empty()) {
    injector->Clear();
    HttpResponse response;
    response.body = "{\"installed\":false,\"active\":false}";
    writer.Send(std::move(response));
    return 200;
  }
  const io::Status installed = injector->Install(spec->AsString());
  if (!installed.ok) {
    RecordRejection(*fault_metrics_, "unparseable fault spec");
    writer.Send(JsonError(400, installed.message));
    return 400;
  }
  recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kReplicaState,
                    "/admin/fault", 200, 0, 0.0, nullptr,
                    "fault spec installed");
  HttpResponse response;
  response.body = "{\"installed\":true,\"active\":true}";
  writer.Send(std::move(response));
  return 200;
}

void SuggestFrontend::HandleStats(ResponseWriter writer) const {
  const serve::ServiceStats stats = service_->Stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("service").BeginObject()
      .Key("requests").UInt(stats.requests)
      .Key("completed").UInt(stats.completed)
      .Key("expired").UInt(stats.expired)
      .Key("in_flight").UInt(stats.in_flight)
      .Key("queue_depth").UInt(stats.queue_depth)
      .Key("batches").UInt(stats.batches)
      .Key("mean_batch_size").Double(stats.mean_batch_size)
      .Key("qps").Double(stats.qps)
      .Key("p50_latency_ms").Double(stats.p50_latency_ms)
      .Key("p90_latency_ms").Double(stats.p90_latency_ms)
      .Key("p99_latency_ms").Double(stats.p99_latency_ms)
      .Key("max_latency_ms").Double(stats.max_latency_ms)
      .Key("num_threads").Int(stats.num_threads)
      .Key("gemm_backend").String(stats.gemm_backend)
      .Key("quantization").String(stats.quantization)
      .Key("uptime_seconds").Double(stats.uptime_seconds)
      .EndObject();
  json.Key("admission").BeginObject()
      .Key("admitted").UInt(stats.admitted)
      .Key("shed").UInt(stats.shed)
      .Key("deadline_shed").UInt(stats.deadline_shed)
      .Key("degraded_shed").UInt(stats.degraded_shed)
      .Key("slo_degraded").Bool(stats.slo_degraded)
      .EndObject();
  json.Key("cache").BeginObject()
      .Key("hits").UInt(stats.cache_hits)
      .Key("misses").UInt(stats.cache_misses)
      .Key("hit_rate").Double(stats.cache_hit_rate)
      .Key("coalesced").UInt(stats.coalesced)
      .EndObject();
  // Handler-observed per-route latency (dispatch to response send) —
  // distinct from the service's scoring latency: it includes codec and
  // queueing cost, which is exactly what per-route budgets bound.
  json.Key("routes").BeginObject();
  for (const auto* metrics :
       {suggest_metrics_.get(), healthz_metrics_.get(), statsz_metrics_.get(),
        metricsz_metrics_.get(), tracez_metrics_.get(),
        reload_metrics_.get()}) {
    const serve::LatencyTracker::Percentiles latency =
        metrics->latency.Snapshot();
    json.Key(metrics->route).BeginObject()
        .Key("requests").UInt(metrics->requests->Value())
        .Key("default_budget_ms").Int(options_.DefaultBudgetMs(metrics->route))
        .Key("p50_ms").Double(latency.p50_ms)
        .Key("p90_ms").Double(latency.p90_ms)
        .Key("p99_ms").Double(latency.p99_ms)
        .Key("max_ms").Double(latency.max_ms)
        .EndObject();
  }
  json.EndObject();
  json.Key("model").BeginObject()
      .Key("version").UInt(stats.model_version)
      .Key("reloads").UInt(stats.reloads)
      .Key("display_name").String(service_->snapshot()->bundle.display_name)
      .Key("quantization").String(stats.quantization)
      .Key("format").String(stats.bundle_format)
      .Key("load_ms").Double(stats.bundle_load_ms)
      .Key("bytes_mapped").UInt(stats.bundle_bytes_mapped);
  // Per-layer weight-quantization error (patient encoder layers first,
  // then decoder layers); empty on the float path.
  json.Key("quant_layer_max_abs_error").BeginArray();
  for (const double error : stats.quant_layer_max_abs_error) json.Double(error);
  json.EndArray();
  json.EndObject();
  if (http_ != nullptr) {
    const HttpServer::Counters http = http_->counters();
    json.Key("http").BeginObject()
        .Key("accepted").UInt(http.accepted)
        .Key("active").UInt(http.active)
        .Key("requests").UInt(http.requests)
        .Key("responses").UInt(http.responses)
        .Key("parse_errors").UInt(http.parse_errors)
        .Key("overload_closed").UInt(http.overload_closed)
        .Key("bad_requests").UInt(bad_requests())
        .EndObject();
  }
  json.EndObject();
  HttpResponse response;
  response.body = json.str();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleMetrics(ResponseWriter writer,
                                    bool openmetrics) const {
  // Two sections, one writer: the ServiceStats counters (rendered from
  // the same atomics Stats()/statsz read, so the views agree by
  // construction) followed by every registry metric — per-route request
  // counters and latency histograms, per-stage trace histograms, the
  // service latency histogram, trace sampling counters. FamilyHeader
  // applies the dialect's naming rules, so the same calls emit valid
  // 0.0.4 and valid OpenMetrics 1.0.
  const serve::ServiceStats stats = service_->Stats();
  obs::PrometheusTextWriter prom(openmetrics
                                     ? obs::ExpositionFormat::kOpenMetrics100
                                     : obs::ExpositionFormat::kPrometheus004);
  prom.FamilyHeader("dssddi_service_requests_total", "counter",
                    "Requests accepted by Submit")
      .Value("dssddi_service_requests_total", {}, stats.requests);
  prom.FamilyHeader("dssddi_service_completed_total", "counter",
                    "Completions fired")
      .Value("dssddi_service_completed_total", {}, stats.completed);
  prom.FamilyHeader(
          "dssddi_service_expired_total", "counter",
          "Requests dropped post-admission because their deadline passed")
      .Value("dssddi_service_expired_total", {}, stats.expired);
  prom.FamilyHeader("dssddi_service_batches_total", "counter",
                    "Matrix passes dispatched")
      .Value("dssddi_service_batches_total", {}, stats.batches);
  prom.FamilyHeader("dssddi_service_coalesced_total", "counter",
                    "Requests that rode an identical in-flight query")
      .Value("dssddi_service_coalesced_total", {}, stats.coalesced);
  prom.FamilyHeader("dssddi_admission_total", "counter",
                    "Admission gate outcomes, by decision")
      .Value("dssddi_admission_total", {{"decision", "admitted"}},
             stats.admitted)
      .Value("dssddi_admission_total", {{"decision", "shed_load"}}, stats.shed)
      .Value("dssddi_admission_total", {{"decision", "shed_deadline"}},
             stats.deadline_shed)
      .Value("dssddi_admission_total", {{"decision", "shed_degraded"}},
             stats.degraded_shed);
  prom.FamilyHeader("dssddi_cache_total", "counter",
                    "Suggestion cache outcomes")
      .Value("dssddi_cache_total", {{"outcome", "hit"}}, stats.cache_hits)
      .Value("dssddi_cache_total", {{"outcome", "miss"}}, stats.cache_misses);
  prom.FamilyHeader("dssddi_http_bad_requests_total", "counter",
                    "Requests rejected before reaching the service")
      .Value("dssddi_http_bad_requests_total", {}, bad_requests());
  prom.FamilyHeader("dssddi_in_flight", "gauge",
                    "Accepted requests not yet completed")
      .Value("dssddi_in_flight", {}, stats.in_flight);
  prom.FamilyHeader("dssddi_queue_depth", "gauge",
                    "Requests queued in batcher + pool")
      .Value("dssddi_queue_depth", {}, stats.queue_depth);
  prom.FamilyHeader("dssddi_model_version", "gauge",
                    "Version of the served model snapshot")
      .Value("dssddi_model_version", {}, stats.model_version);
  prom.FamilyHeader("dssddi_model_reloads_total", "counter",
                    "Successful hot reloads")
      .Value("dssddi_model_reloads_total", {}, stats.reloads);
  prom.FamilyHeader("dssddi_uptime_seconds", "gauge", "Service uptime")
      .Value("dssddi_uptime_seconds", {}, stats.uptime_seconds);

  HttpResponse response;
  if (openmetrics) {
    response.content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    response.body =
        prom.str() + service_->registry()->RenderOpenMetricsText() + "# EOF\n";
  } else {
    response.content_type = "text/plain; version=0.0.4";
    response.body = prom.str() + service_->registry()->RenderPrometheusText();
  }
  writer.Send(std::move(response));
}

int SuggestFrontend::HandleLogz(const std::string& query,
                                ResponseWriter writer) {
  // Rejections here skip RecordRejection: the caller counts the response
  // class from the returned status, so the helper's 4xx bump would
  // double-count.
  obs::LogSeverity min_severity = obs::LogSeverity::kInfo;
  const std::string severity = QueryParam(query, "severity");
  if (!severity.empty() && !obs::ParseLogSeverity(severity, &min_severity)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kBadRequest,
                      "/logz", 400, 0, 0.0, nullptr,
                      "unknown /logz severity filter");
    writer.Send(JsonError(400, "severity must be info, warning or error"));
    return 400;
  }
  uint64_t trace_filter = 0;
  const std::string trace = QueryParam(query, "trace");
  if (!trace.empty() && !ParseUintHeader(trace, &trace_filter)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kBadRequest,
                      "/logz", 400, 0, 0.0, nullptr,
                      "non-numeric /logz trace filter");
    writer.Send(JsonError(400, "trace must be a trace id"));
    return 400;
  }
  HttpResponse response;
  response.content_type = "application/x-ndjson";
  response.body = recorder_->RenderLogzJson(min_severity, trace_filter,
                                            QueryParam(query, "route"));
  writer.Send(std::move(response));
  return 200;
}

int SuggestFrontend::HandleSloz(ResponseWriter writer) const {
  const obs::SloEngine* slo = service_->slo_engine();
  if (slo == nullptr) {
    writer.Send(JsonError(404, "SLO engine disabled (ServiceOptions::slo_enabled)"));
    return 404;
  }
  HttpResponse response;
  response.body = slo->RenderSlozJson();
  writer.Send(std::move(response));
  return 200;
}

void SuggestFrontend::HandleTracez(ResponseWriter writer) const {
  HttpResponse response;
  response.body = service_->trace_collector()->RenderTracezJson();
  writer.Send(std::move(response));
}

int SuggestFrontend::HandleReload(const HttpRequest& request,
                                  ResponseWriter writer) {
  JsonValue document;
  std::string parse_error;
  if (!ParseJson(request.body, &document, &parse_error) ||
      !document.is_object()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kBadRequest,
                      "/admin/reload", 400, 0, 0.0, nullptr,
                      "reload body is not a JSON object");
    writer.Send(JsonError(400, "bad JSON: " + parse_error));
    return 400;
  }
  const JsonValue* path = document.Find("path");
  if (path == nullptr || !path->is_string() || path->AsString().empty()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kBadRequest,
                      "/admin/reload", 400, 0, 0.0, nullptr,
                      "reload 'path' missing or empty");
    writer.Send(JsonError(400, "'path' must name a bundle file"));
    return 400;
  }

  // Optional "quantize": "auto" (default) follows the process-wide
  // mode, "none"/"float" pins float, "int8" pins the quantized path —
  // so one reload call flips a live server between float and int8.
  int quantization = io::kQuantizeAuto;
  if (const JsonValue* quantize = document.Find("quantize")) {
    tensor::kernels::QuantMode mode;
    if (!quantize->is_string() ||
        (quantize->AsString() != "auto" &&
         !tensor::kernels::ParseQuantMode(quantize->AsString(), &mode))) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      recorder_->Record(obs::LogSeverity::kWarning,
                        obs::LogReason::kBadRequest, "/admin/reload", 400, 0,
                        0.0, nullptr, "unknown reload 'quantize' value");
      writer.Send(JsonError(400, "'quantize' must be auto, none or int8"));
      return 400;
    }
    if (quantize->AsString() != "auto") quantization = static_cast<int>(mode);
  }

  io::InferenceBundle bundle;
  if (const io::Status loaded = io::LoadInferenceBundle(path->AsString(), &bundle);
      !loaded.ok) {
    recorder_->Record(obs::LogSeverity::kError, obs::LogReason::kReloadError,
                      "/admin/reload", 400, 0, 0.0, nullptr,
                      "bundle load failed");
    // Structured failure body: the loader's own diagnosis, the path as
    // given, and the (untouched) served version, so an operator can see
    // what failed and what is still running from the response alone.
    HttpResponse response;
    response.status = 400;
    JsonWriter error;
    error.BeginObject()
        .Key("error").String("cannot load bundle")
        .Key("detail").String(loaded.message)
        .Key("path").String(path->AsString())
        .Key("model_version").UInt(service_->model_version())
        .EndObject();
    response.body = error.str();
    writer.Send(std::move(response));
    return 400;
  }
  bundle.quantization = quantization;
  const int num_drugs = bundle.num_drugs();
  const std::string display_name = bundle.display_name;
  if (const io::Status swapped = service_->Reload(std::move(bundle));
      !swapped.ok) {
    recorder_->Record(obs::LogSeverity::kError, obs::LogReason::kReloadError,
                      "/admin/reload", 409, 0, 0.0, nullptr,
                      "incompatible bundle rejected by Reload");
    writer.Send(JsonError(409, swapped.message));
    return 409;
  }
  HttpResponse response;
  JsonWriter json;
  const std::shared_ptr<const serve::ModelSnapshot> installed =
      service_->snapshot();
  json.BeginObject()
      .Key("model_version").UInt(service_->model_version())
      .Key("display_name").String(display_name)
      .Key("num_drugs").Int(num_drugs)
      .Key("quantization").String(installed->quantization_name())
      .Key("format").String(installed->format_name())
      .Key("load_ms").Double(installed->bundle.load_ms)
      .Key("bytes_mapped").UInt(installed->bundle.bytes_mapped())
      .EndObject();
  response.body = json.str();
  writer.Send(std::move(response));
  return 200;
}

}  // namespace dssddi::net
