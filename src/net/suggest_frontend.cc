#include "net/suggest_frontend.h"

#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/inference_bundle.h"
#include "net/json.h"
#include "net/wire.h"

namespace dssddi::net {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  JsonWriter writer;
  writer.BeginObject().Key("error").String(message).EndObject();
  response.body = writer.str();
  return response;
}

/// Error in the codec the client spoke: binary requests get binary
/// error frames (same HTTP status), JSON requests get JSON bodies.
/// `trace_id` rides in the binary frame (0 = request failed before a
/// trace id existed) so rejections stay correlatable with /tracez.
HttpResponse CodecError(bool binary, int status, const std::string& message,
                        uint64_t trace_id = 0) {
  if (!binary) return JsonError(status, message);
  HttpResponse response;
  response.status = status;
  response.content_type = wire::kContentType;
  response.body =
      wire::EncodeError({static_cast<uint32_t>(status), message, trace_id});
  return response;
}

/// Server-Timing value from a trace's stamped stages, e.g.
/// "queue_wait;dur=0.213, gemm;dur=1.871". Only stages with nonzero
/// time appear; durations are milliseconds per the header's spec.
std::string ServerTimingValue(const obs::Trace& trace) {
  std::string out;
  char buf[64];
  for (int s = 0; s < obs::kNumStages; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const uint64_t ns = trace.StageNs(stage);
    if (ns == 0) continue;
    if (!out.empty()) out += ", ";
    std::snprintf(buf, sizeof(buf), "%s;dur=%.3f", obs::StageName(stage),
                  static_cast<double>(ns) / 1e6);
    out += buf;
  }
  return out;
}

void WriteEdges(JsonWriter& writer, const char* key,
                const std::vector<core::InteractionEdge>& edges) {
  writer.Key(key).BeginArray();
  for (const core::InteractionEdge& edge : edges) {
    writer.BeginArray().Int(edge.drug_u).Int(edge.drug_v).EndArray();
  }
  writer.EndArray();
}

std::string SuggestionToJson(const core::Suggestion& suggestion,
                             const serve::ModelSnapshot& snapshot,
                             int64_t patient_id, bool explain,
                             uint64_t trace_id) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("patient_id").Int(patient_id);
  writer.Key("model_version").UInt(snapshot.version);
  writer.Key("trace_id").UInt(trace_id);
  writer.Key("drugs").BeginArray();
  for (const int drug : suggestion.drugs) writer.Int(drug);
  writer.EndArray();
  // %.9g round-trips binary32 exactly: a client parsing these decimals
  // recovers the very floats the model produced.
  writer.Key("scores").BeginArray();
  for (const float score : suggestion.scores) writer.Float(score);
  writer.EndArray();
  writer.Key("drug_names").BeginArray();
  for (const int drug : suggestion.drugs) {
    if (drug >= 0 &&
        drug < static_cast<int>(snapshot.bundle.drug_names.size())) {
      writer.String(snapshot.bundle.drug_names[drug]);
    } else {
      writer.Null();
    }
  }
  writer.EndArray();
  if (explain) {
    const core::Explanation& explanation = suggestion.explanation;
    writer.Key("explanation").BeginObject();
    writer.Key("suggestion_satisfaction")
        .Double(explanation.suggestion_satisfaction);
    writer.Key("subgraph_drugs").BeginArray();
    for (const int drug : explanation.subgraph_drugs) writer.Int(drug);
    writer.EndArray();
    WriteEdges(writer, "synergies_within", explanation.synergies_within);
    WriteEdges(writer, "antagonisms_within", explanation.antagonisms_within);
    WriteEdges(writer, "antagonisms_outward", explanation.antagonisms_outward);
    writer.Key("trussness").Int(explanation.trussness);
    writer.Key("diameter").Int(explanation.diameter);
    writer.Key("density").Double(explanation.density);
    writer.EndObject();
  }
  writer.EndObject();
  return writer.str();
}

std::string SuggestionToFrame(const core::Suggestion& suggestion,
                              const serve::ModelSnapshot& snapshot,
                              uint64_t trace_id) {
  wire::SuggestResponseFrame frame;
  frame.model_version = snapshot.version;
  frame.trace_id = trace_id;
  frame.drugs.assign(suggestion.drugs.begin(), suggestion.drugs.end());
  frame.scores = suggestion.scores;
  return wire::EncodeSuggestResponse(frame);
}

/// True when `value` names the binary frame media type, ignoring any
/// parameters ("application/x-dssddi; charset=binary" still counts —
/// proxies and client libraries append parameters routinely).
bool IsBinaryContentType(const std::string& value) {
  size_t end = value.find(';');
  if (end == std::string::npos) end = value.size();
  while (end > 0 && (value[end - 1] == ' ' || value[end - 1] == '\t')) --end;
  size_t begin = 0;
  while (begin < end && (value[begin] == ' ' || value[begin] == '\t')) ++begin;
  return AsciiEqualsIgnoreCase(value.substr(begin, end - begin),
                               wire::kContentType);
}

/// Strictly-numeric header parse for X-Deadline-Ms / X-Trace-Id; a
/// malformed value is a client bug worth a 400, not a silent default.
bool ParseUintHeader(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    if (parsed > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

SuggestFrontend::RouteMetrics::RouteMetrics(
    std::shared_ptr<obs::Registry> owner, const char* name)
    : route(name),
      registry(std::move(owner)),
      requests(registry->GetCounter("dssddi_http_requests_total",
                                    "HTTP requests handled, by route",
                                    {{"route", name}})),
      latency(registry->GetHistogram(
          "dssddi_request_latency_ms",
          "Handler-observed latency (dispatch to response send) in "
          "milliseconds, by route",
          {{"route", name}})) {}

SuggestFrontend::SuggestFrontend(serve::SuggestionService* service,
                                 const SuggestFrontendOptions& options)
    : service_(service),
      options_(options),
      suggest_metrics_(std::make_shared<RouteMetrics>(service->registry(),
                                                      "/v1/suggest")),
      healthz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/healthz")),
      statsz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/statsz")),
      metricsz_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/metricsz")),
      tracez_metrics_(
          std::make_shared<RouteMetrics>(service->registry(), "/tracez")),
      reload_metrics_(std::make_shared<RouteMetrics>(service->registry(),
                                                     "/admin/reload")) {
  suggest_sampler_ = service_->trace_collector()->SamplerForRoute("/v1/suggest");
  suggest_sampler_->set_every(options_.trace_sample_every);
}

void SuggestFrontend::Handle(const HttpRequest& request,
                             ResponseWriter writer) {
  const Clock::time_point start = Clock::now();
  const std::string& target = request.target;
  if (target == "/v1/suggest") {
    if (request.method != "POST") {
      writer.Send(JsonError(405, "use POST for /v1/suggest"));
      return;
    }
    HandleSuggest(request, writer, start);
    return;
  }
  // HEAD is rejected along with everything else non-GET: the server
  // always writes the body it declares, and silently serving HEAD with
  // a body would desync keep-alive clients.
  if (target == "/healthz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /healthz"));
      return;
    }
    HandleHealth(writer);
    healthz_metrics_->requests->Increment();
    healthz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (target == "/statsz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /statsz"));
      return;
    }
    HandleStats(writer);
    statsz_metrics_->requests->Increment();
    statsz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (target == "/metricsz") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /metricsz"));
      return;
    }
    HandleMetrics(writer);
    metricsz_metrics_->requests->Increment();
    metricsz_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (target == "/tracez") {
    if (request.method != "GET") {
      writer.Send(JsonError(405, "use GET for /tracez"));
      return;
    }
    HandleTracez(writer);
    tracez_metrics_->requests->Increment();
    tracez_metrics_->latency.Record(MillisSince(start));
    return;
  }
  if (target == "/admin/reload") {
    if (request.method != "POST") {
      writer.Send(JsonError(405, "use POST for /admin/reload"));
      return;
    }
    HandleReload(request, writer);
    reload_metrics_->requests->Increment();
    reload_metrics_->latency.Record(MillisSince(start));
    return;
  }
  writer.Send(JsonError(404, "no route for '" + target + "'"));
}

void SuggestFrontend::HandleSuggest(const HttpRequest& request,
                                    ResponseWriter writer,
                                    Clock::time_point start) {
  // Content negotiation: the same route speaks JSON (default) or the
  // binary frame codec, selected per request by Content-Type. The
  // response always mirrors the request's codec.
  const std::string* content_type = request.FindHeader("Content-Type");
  const bool binary = content_type != nullptr && IsBinaryContentType(*content_type);

  serve::Request suggest;
  int64_t budget_ms = 0;  // 0 = fall through to the route default
  uint64_t trace_id = 0;
  serve::RequestPriority priority = serve::RequestPriority::kInteractive;

  if (binary) {
    wire::SuggestRequestFrame frame;
    std::string frame_error;
    if (!wire::DecodeSuggestRequest(request.body, &frame, &frame_error)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(CodecError(binary, 400, "bad frame: " + frame_error));
      return;
    }
    suggest.patient_id = frame.patient_id;
    suggest.features = std::move(frame.features);
    suggest.k = frame.k;
    suggest.explain = frame.explain;
    budget_ms = frame.deadline_ms;
    trace_id = frame.trace_id;
    if (frame.batch_priority) priority = serve::RequestPriority::kBatch;
  } else {
    JsonValue document;
    std::string parse_error;
    if (!ParseJson(request.body, &document, &parse_error)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(JsonError(400, "bad JSON: " + parse_error));
      return;
    }
    if (!document.is_object()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(JsonError(400, "body must be a JSON object"));
      return;
    }
    const JsonValue* features = document.Find("features");
    if (features == nullptr || !features->is_array()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(JsonError(400, "'features' must be an array of numbers"));
      return;
    }
    suggest.features.reserve(features->Items().size());
    for (const JsonValue& value : features->Items()) {
      if (!value.is_number()) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        writer.Send(JsonError(400, "'features' must be an array of numbers"));
        return;
      }
      suggest.features.push_back(static_cast<float>(value.AsDouble()));
    }
    if (const JsonValue* patient_id = document.Find("patient_id")) {
      suggest.patient_id = patient_id->AsInt(-1);
    }
    if (const JsonValue* k = document.Find("k")) {
      suggest.k = static_cast<int>(k->AsInt(3));
    }
    if (const JsonValue* explain = document.Find("explain")) {
      suggest.explain = explain->AsBool(true);
    }
  }

  // Deadline / priority / trace headers apply to both codecs (for
  // binary, a nonzero in-frame field wins over the header twin). The
  // headers are validated whenever present — a garbage value is a
  // client bug worth a 400 even when an in-frame field outranks it.
  if (const std::string* header = request.FindHeader("X-Deadline-Ms")) {
    uint64_t parsed = 0;
    if (!ParseUintHeader(*header, &parsed) || parsed == 0 ||
        parsed > INT32_MAX) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(CodecError(binary, 400,
                             "X-Deadline-Ms must be a positive integer"));
      return;
    }
    if (budget_ms == 0) budget_ms = static_cast<int64_t>(parsed);
  }
  if (const std::string* header = request.FindHeader("X-Trace-Id")) {
    uint64_t parsed = 0;
    if (!ParseUintHeader(*header, &parsed)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(CodecError(binary, 400, "X-Trace-Id must be an integer"));
      return;
    }
    if (trace_id == 0) trace_id = parsed;
  }
  if (const std::string* header = request.FindHeader("X-Priority")) {
    if (AsciiEqualsIgnoreCase(*header, "batch")) {
      priority = serve::RequestPriority::kBatch;
    } else if (!AsciiEqualsIgnoreCase(*header, "interactive")) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(CodecError(binary, 400,
                             "X-Priority must be interactive or batch"));
      return;
    }
  }
  if (budget_ms == 0) budget_ms = options_.DefaultBudgetMs(request.target);
  if (options_.max_budget_ms > 0 && budget_ms > options_.max_budget_ms) {
    budget_ms = options_.max_budget_ms;
  }
  if (trace_id == 0) {
    trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Head-based sampling decision, made once the request has a trace id.
  // An unsampled request (the common case) carries a null trace: every
  // stamp downstream is a pointer check, and nothing here allocated.
  // http_parse is stamped out-of-band — the span covers dispatch to
  // here, i.e. content negotiation + body decode + header validation.
  std::shared_ptr<obs::Trace> trace =
      service_->trace_collector()->MaybeStartTrace(suggest_sampler_,
                                                   "/v1/suggest", trace_id);
  if (trace) {
    trace->start = start;
    trace->AddStageNs(
        obs::Stage::kHttpParse,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start)
                .count()));
  }

  // The edge: one RequestContext, created here, carried through every
  // layer. Arrival anchors at dispatch time (not post-parse), so parse
  // cost already counts against the budget.
  suggest.context.arrival = start;
  suggest.context.priority = priority;
  suggest.context.trace_id = trace_id;
  suggest.context.trace = trace;
  if (budget_ms > 0) {
    suggest.context.deadline = start + std::chrono::milliseconds(budget_ms);
  }

  const int64_t patient_id = suggest.patient_id;
  const bool explain = suggest.explain;
  const bool server_timing = options_.server_timing;
  serve::SuggestionService* service = service_;
  std::shared_ptr<RouteMetrics> metrics = suggest_metrics_;
  const serve::AdmissionController::Decision decision =
      service_->TrySubmitAsync(
          std::move(suggest),
          [writer, service, patient_id, explain, binary, trace_id, metrics,
           start, trace, server_timing](
              core::Suggestion suggestion,
              std::shared_ptr<const serve::ModelSnapshot> snapshot,
              std::exception_ptr error) {
            metrics->requests->Increment();
            metrics->latency.Record(MillisSince(start));
            if (error) {
              int status = 500;
              std::string message;
              try {
                std::rethrow_exception(error);
              } catch (const serve::DeadlineExceeded& e) {
                status = 504;
                message = e.what();
              } catch (const std::invalid_argument& e) {
                status = 400;
                message = e.what();
              } catch (const std::exception& e) {
                message = e.what();
              }
              if (trace) trace->SetStatus(status);
              obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
              HttpResponse response =
                  CodecError(binary, status, message, trace_id);
              response.extra_headers.emplace_back("X-Trace-Id",
                                                  std::to_string(trace_id));
              writer.Send(std::move(response));
              return;
            }
            // Serialize against the snapshot that actually produced the
            // suggestion: under a concurrent reload the service's current
            // snapshot may already be a different model with different
            // drug names and version.
            if (!snapshot) snapshot = service->snapshot();
            obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
            HttpResponse response;
            if (binary) {
              response.content_type = wire::kContentType;
              response.body = SuggestionToFrame(suggestion, *snapshot, trace_id);
            } else {
              response.body = SuggestionToJson(suggestion, *snapshot,
                                               patient_id, explain, trace_id);
            }
            response.extra_headers.emplace_back("X-Trace-Id",
                                                std::to_string(trace_id));
            serialize_span.Stop();
            // The header reports the stages stamped so far; serialize is
            // closed above just so it can be included here.
            if (server_timing && trace) {
              std::string timing = ServerTimingValue(*trace);
              if (!timing.empty()) {
                response.extra_headers.emplace_back("Server-Timing",
                                                    std::move(timing));
              }
            }
            writer.Send(std::move(response));
          });
  switch (decision) {
    case serve::AdmissionController::Decision::kAdmit:
      break;
    case serve::AdmissionController::Decision::kShedLoad: {
      suggest_metrics_->requests->Increment();
      suggest_metrics_->latency.Record(MillisSince(start));
      if (trace) trace->SetStatus(429);
      obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
      HttpResponse shed =
          CodecError(binary, 429, "overloaded, retry later", trace_id);
      shed.extra_headers.emplace_back("Retry-After", "1");
      shed.extra_headers.emplace_back("X-Trace-Id", std::to_string(trace_id));
      writer.Send(std::move(shed));
      break;
    }
    case serve::AdmissionController::Decision::kShedDeadline: {
      // No Retry-After: the client's budget, not our load, was the
      // problem — retrying with the same budget would shed again.
      suggest_metrics_->requests->Increment();
      suggest_metrics_->latency.Record(MillisSince(start));
      if (trace) trace->SetStatus(504);
      obs::TraceSpan serialize_span(trace, obs::Stage::kSerialize);
      HttpResponse shed = CodecError(
          binary, 504,
          "deadline infeasible: remaining budget below observed service time",
          trace_id);
      shed.extra_headers.emplace_back("X-Trace-Id", std::to_string(trace_id));
      writer.Send(std::move(shed));
      break;
    }
  }
}

void SuggestFrontend::HandleHealth(ResponseWriter writer) const {
  const serve::ServiceStats stats = service_->Stats();
  HttpResponse response;
  JsonWriter json;
  json.BeginObject()
      .Key("status").String("ok")
      .Key("model_version").UInt(stats.model_version)
      .Key("uptime_seconds").Double(stats.uptime_seconds)
      .EndObject();
  response.body = json.str();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleStats(ResponseWriter writer) const {
  const serve::ServiceStats stats = service_->Stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("service").BeginObject()
      .Key("requests").UInt(stats.requests)
      .Key("completed").UInt(stats.completed)
      .Key("expired").UInt(stats.expired)
      .Key("in_flight").UInt(stats.in_flight)
      .Key("queue_depth").UInt(stats.queue_depth)
      .Key("batches").UInt(stats.batches)
      .Key("mean_batch_size").Double(stats.mean_batch_size)
      .Key("qps").Double(stats.qps)
      .Key("p50_latency_ms").Double(stats.p50_latency_ms)
      .Key("p90_latency_ms").Double(stats.p90_latency_ms)
      .Key("p99_latency_ms").Double(stats.p99_latency_ms)
      .Key("max_latency_ms").Double(stats.max_latency_ms)
      .Key("num_threads").Int(stats.num_threads)
      .Key("gemm_backend").String(stats.gemm_backend)
      .Key("quantization").String(stats.quantization)
      .Key("uptime_seconds").Double(stats.uptime_seconds)
      .EndObject();
  json.Key("admission").BeginObject()
      .Key("admitted").UInt(stats.admitted)
      .Key("shed").UInt(stats.shed)
      .Key("deadline_shed").UInt(stats.deadline_shed)
      .EndObject();
  json.Key("cache").BeginObject()
      .Key("hits").UInt(stats.cache_hits)
      .Key("misses").UInt(stats.cache_misses)
      .Key("hit_rate").Double(stats.cache_hit_rate)
      .Key("coalesced").UInt(stats.coalesced)
      .EndObject();
  // Handler-observed per-route latency (dispatch to response send) —
  // distinct from the service's scoring latency: it includes codec and
  // queueing cost, which is exactly what per-route budgets bound.
  json.Key("routes").BeginObject();
  for (const auto* metrics :
       {suggest_metrics_.get(), healthz_metrics_.get(), statsz_metrics_.get(),
        metricsz_metrics_.get(), tracez_metrics_.get(),
        reload_metrics_.get()}) {
    const serve::LatencyTracker::Percentiles latency =
        metrics->latency.Snapshot();
    json.Key(metrics->route).BeginObject()
        .Key("requests").UInt(metrics->requests->Value())
        .Key("default_budget_ms").Int(options_.DefaultBudgetMs(metrics->route))
        .Key("p50_ms").Double(latency.p50_ms)
        .Key("p90_ms").Double(latency.p90_ms)
        .Key("p99_ms").Double(latency.p99_ms)
        .Key("max_ms").Double(latency.max_ms)
        .EndObject();
  }
  json.EndObject();
  json.Key("model").BeginObject()
      .Key("version").UInt(stats.model_version)
      .Key("reloads").UInt(stats.reloads)
      .Key("display_name").String(service_->snapshot()->bundle.display_name)
      .Key("quantization").String(stats.quantization);
  // Per-layer weight-quantization error (patient encoder layers first,
  // then decoder layers); empty on the float path.
  json.Key("quant_layer_max_abs_error").BeginArray();
  for (const double error : stats.quant_layer_max_abs_error) json.Double(error);
  json.EndArray();
  json.EndObject();
  if (http_ != nullptr) {
    const HttpServer::Counters http = http_->counters();
    json.Key("http").BeginObject()
        .Key("accepted").UInt(http.accepted)
        .Key("active").UInt(http.active)
        .Key("requests").UInt(http.requests)
        .Key("responses").UInt(http.responses)
        .Key("parse_errors").UInt(http.parse_errors)
        .Key("overload_closed").UInt(http.overload_closed)
        .Key("bad_requests").UInt(bad_requests())
        .EndObject();
  }
  json.EndObject();
  HttpResponse response;
  response.body = json.str();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleMetrics(ResponseWriter writer) const {
  // Two sections, one writer: the ServiceStats counters (rendered from
  // the same atomics Stats()/statsz read, so the views agree by
  // construction) followed by every registry metric — per-route request
  // counters and latency histograms, per-stage trace histograms, the
  // service latency histogram, trace sampling counters.
  const serve::ServiceStats stats = service_->Stats();
  obs::PrometheusTextWriter prom;
  prom.Help("dssddi_service_requests_total", "Requests accepted by Submit")
      .Type("dssddi_service_requests_total", "counter")
      .Value("dssddi_service_requests_total", {}, stats.requests);
  prom.Help("dssddi_service_completed_total", "Completions fired")
      .Type("dssddi_service_completed_total", "counter")
      .Value("dssddi_service_completed_total", {}, stats.completed);
  prom.Help("dssddi_service_expired_total",
            "Requests dropped post-admission because their deadline passed")
      .Type("dssddi_service_expired_total", "counter")
      .Value("dssddi_service_expired_total", {}, stats.expired);
  prom.Help("dssddi_service_batches_total", "Matrix passes dispatched")
      .Type("dssddi_service_batches_total", "counter")
      .Value("dssddi_service_batches_total", {}, stats.batches);
  prom.Help("dssddi_service_coalesced_total",
            "Requests that rode an identical in-flight query")
      .Type("dssddi_service_coalesced_total", "counter")
      .Value("dssddi_service_coalesced_total", {}, stats.coalesced);
  prom.Help("dssddi_admission_total", "Admission gate outcomes, by decision")
      .Type("dssddi_admission_total", "counter")
      .Value("dssddi_admission_total", {{"decision", "admitted"}},
             stats.admitted)
      .Value("dssddi_admission_total", {{"decision", "shed_load"}}, stats.shed)
      .Value("dssddi_admission_total", {{"decision", "shed_deadline"}},
             stats.deadline_shed);
  prom.Help("dssddi_cache_total", "Suggestion cache outcomes")
      .Type("dssddi_cache_total", "counter")
      .Value("dssddi_cache_total", {{"outcome", "hit"}}, stats.cache_hits)
      .Value("dssddi_cache_total", {{"outcome", "miss"}}, stats.cache_misses);
  prom.Help("dssddi_http_bad_requests_total",
            "Requests rejected before reaching the service")
      .Type("dssddi_http_bad_requests_total", "counter")
      .Value("dssddi_http_bad_requests_total", {}, bad_requests());
  prom.Help("dssddi_in_flight", "Accepted requests not yet completed")
      .Type("dssddi_in_flight", "gauge")
      .Value("dssddi_in_flight", {}, stats.in_flight);
  prom.Help("dssddi_queue_depth", "Requests queued in batcher + pool")
      .Type("dssddi_queue_depth", "gauge")
      .Value("dssddi_queue_depth", {}, stats.queue_depth);
  prom.Help("dssddi_model_version", "Version of the served model snapshot")
      .Type("dssddi_model_version", "gauge")
      .Value("dssddi_model_version", {}, stats.model_version);
  prom.Help("dssddi_model_reloads_total", "Successful hot reloads")
      .Type("dssddi_model_reloads_total", "counter")
      .Value("dssddi_model_reloads_total", {}, stats.reloads);
  prom.Help("dssddi_uptime_seconds", "Service uptime")
      .Type("dssddi_uptime_seconds", "gauge")
      .Value("dssddi_uptime_seconds", {}, stats.uptime_seconds);

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = prom.str() + service_->registry()->RenderPrometheusText();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleTracez(ResponseWriter writer) const {
  HttpResponse response;
  response.body = service_->trace_collector()->RenderTracezJson();
  writer.Send(std::move(response));
}

void SuggestFrontend::HandleReload(const HttpRequest& request,
                                   ResponseWriter writer) {
  JsonValue document;
  std::string parse_error;
  if (!ParseJson(request.body, &document, &parse_error) ||
      !document.is_object()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "bad JSON: " + parse_error));
    return;
  }
  const JsonValue* path = document.Find("path");
  if (path == nullptr || !path->is_string() || path->AsString().empty()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    writer.Send(JsonError(400, "'path' must name a bundle file"));
    return;
  }

  // Optional "quantize": "auto" (default) follows the process-wide
  // mode, "none"/"float" pins float, "int8" pins the quantized path —
  // so one reload call flips a live server between float and int8.
  int quantization = io::kQuantizeAuto;
  if (const JsonValue* quantize = document.Find("quantize")) {
    tensor::kernels::QuantMode mode;
    if (!quantize->is_string() ||
        (quantize->AsString() != "auto" &&
         !tensor::kernels::ParseQuantMode(quantize->AsString(), &mode))) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      writer.Send(JsonError(400, "'quantize' must be auto, none or int8"));
      return;
    }
    if (quantize->AsString() != "auto") quantization = static_cast<int>(mode);
  }

  io::InferenceBundle bundle;
  if (const io::Status loaded = io::LoadInferenceBundle(path->AsString(), &bundle);
      !loaded.ok) {
    writer.Send(JsonError(400, "cannot load bundle: " + loaded.message));
    return;
  }
  bundle.quantization = quantization;
  const int num_drugs = bundle.num_drugs();
  const std::string display_name = bundle.display_name;
  if (const io::Status swapped = service_->Reload(std::move(bundle));
      !swapped.ok) {
    writer.Send(JsonError(409, swapped.message));
    return;
  }
  HttpResponse response;
  JsonWriter json;
  json.BeginObject()
      .Key("model_version").UInt(service_->model_version())
      .Key("display_name").String(display_name)
      .Key("num_drugs").Int(num_drugs)
      .Key("quantization").String(service_->snapshot()->quantization_name())
      .EndObject();
  response.body = json.str();
  writer.Send(std::move(response));
}

}  // namespace dssddi::net
