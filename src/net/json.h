#ifndef DSSDDI_NET_JSON_H_
#define DSSDDI_NET_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dssddi::net {

/// Minimal JSON document tree, just enough for the HTTP front-end's
/// request bodies (`/v1/suggest`, `/admin/reload`). Parsed numbers are
/// kept as double — binary32 feature values printed with 9 significant
/// digits round-trip exactly through this representation, which is what
/// keeps served scores bit-identical across the wire.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  /// Integer view of a number. Values outside int64's range — including
  /// NaN, which fails both comparisons — return `fallback` instead of
  /// hitting the undefined float->int conversion (clients control this
  /// input; 1e300 must not be able to crash a UBSan-instrumented server).
  int64_t AsInt(int64_t fallback = 0) const {
    if (!is_number() || !(number_ >= -9223372036854775808.0) ||
        !(number_ < 9223372036854775808.0)) {
      return fallback;
    }
    return static_cast<int64_t>(number_);
  }
  const std::string& AsString() const { return string_; }

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& Items() const { return items_; }
  /// Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }
  /// First member named `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` (a complete JSON document) into `*out`. On failure
/// returns false and puts a position-annotated message in `*error`.
/// Nesting is limited to 64 levels; input size is the caller's limit
/// (the HTTP server already bounds body bytes).
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

/// `text` with JSON string escaping applied (no surrounding quotes).
std::string JsonEscape(const std::string& text);

/// Append-style JSON writer with automatic comma placement. Numbers are
/// printed with shortest-round-trip-safe precision: Float uses %.9g
/// (exact for binary32), Double uses %.17g (exact for binary64).
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("drugs").BeginArray().Int(3).Int(7).EndArray()
///    .Key("ok").Bool(true).EndObject();
///   w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Bool(bool value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Float(float value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true until its first element lands.
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_JSON_H_
