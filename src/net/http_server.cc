#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/json.h"
#include "net/wire.h"
#include "util/logging.h"

namespace dssddi::net {
namespace {

/// Canned response for connections shed before a parser even exists.
constexpr char kOverloadResponse[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 36\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\":\"connection limit reached\"}";

/// iovec batch size per vectored write; far above what a flush
/// typically holds, far below IOV_MAX.
constexpr int kMaxIov = 64;

io::Status MakeListenSocket(const std::string& host, int port, int backlog,
                            bool want_reuseport, bool* got_reuseport,
                            int* out_fd, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return io::Status::Error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  *got_reuseport = false;
  if (want_reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) == 0) {
    *got_reuseport = true;
  }

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return io::Status::Error("unparseable listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const io::Status status = io::Status::Error(
        "bind " + host + ":" + std::to_string(port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const io::Status status =
        io::Status::Error(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  struct sockaddr_in bound {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &bound_len) != 0) {
    const io::Status status =
        io::Status::Error(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  *out_fd = fd;
  *bound_port = ntohs(bound.sin_port);
  return io::Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------
// ResponseWriter
// ---------------------------------------------------------------------

void ResponseWriter::Send(HttpResponse response) const {
  if (!target_) return;
  if (target_->used.exchange(true, std::memory_order_acq_rel)) return;
  HttpServer* const server = target_->server;
  const size_t loop_index = target_->loop_index;
  const uint64_t conn_id = target_->conn_id;
  const bool frame = target_->frame;
  const uint64_t request_id = target_->request_id;
  // The posted task only runs while the loop is alive, and the loop only
  // dies inside HttpServer::Stop — which joins before the server's
  // connection tables are torn down. A Send after Stop returns false
  // here and the response is dropped (the socket is gone anyway).
  target_->loop->Post([server, loop_index, conn_id, frame, request_id,
                       response = std::move(response)]() mutable {
    server->CompleteRequest(loop_index, conn_id, std::move(response), frame,
                            request_id);
  });
}

// ---------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------

HttpServer::HttpServer(const HttpServerOptions& options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  DSSDDI_CHECK(handler_ != nullptr) << "HttpServer needs a handler";
  if (options_.num_loops < 1) options_.num_loops = 1;
  if (options_.backlog < 1) options_.backlog = 1;
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_pipeline_depth < 1) options_.max_pipeline_depth = 1;
  if (options_.max_pipeline_write_bytes < 4096) {
    options_.max_pipeline_write_bytes = 4096;
  }
}

HttpServer::~HttpServer() { Stop(); }

io::Status HttpServer::Start() {
  DSSDDI_CHECK(!started_) << "HttpServer::Start called twice";

  // First listener: resolves the port (maybe ephemeral) and tells us
  // whether this kernel honors SO_REUSEPORT.
  int first_fd = -1;
  bool first_reuseport = false;
  const bool want_reuseport = options_.num_loops > 1 || options_.reuseport;
  io::Status status =
      MakeListenSocket(options_.host, options_.port, options_.backlog,
                       want_reuseport, &first_reuseport, &first_fd, &port_);
  if (!status.ok) return status;
  reuseport_ = want_reuseport && first_reuseport;

  loops_.clear();
  for (int i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->events = std::make_shared<EventLoop>();
    if (i == 0) {
      loop->listen_fd = first_fd;
    } else if (reuseport_) {
      bool got = false;
      status = MakeListenSocket(options_.host, port_, options_.backlog,
                                /*want_reuseport=*/true, &got, &loop->listen_fd,
                                &port_);
      if (!status.ok) {
        ::close(first_fd);
        for (auto& l : loops_) {
          if (l->listen_fd >= 0) ::close(l->listen_fd);
        }
        loops_.clear();
        return status;
      }
    }
    loops_.push_back(std::move(loop));
  }

  for (size_t i = 0; i < loops_.size(); ++i) {
    Loop& loop = *loops_[i];
    if (loop.listen_fd >= 0) {
      loop.events->Add(loop.listen_fd, EPOLLIN,
                       [this, i](uint32_t) { HandleAccept(i); });
    }
    loop.thread = std::thread([events = loop.events] { events->Run(); });
  }
  started_ = true;
  return io::Status::Ok();
}

void HttpServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  draining_.store(true, std::memory_order_relaxed);
  if (options_.drain_timeout_ms > 0) {
    // Phase 1: stop accepting. Listener teardown must run on the loop
    // threads (epoll registration is loop-owned); existing connections
    // keep being served.
    for (auto& loop_ptr : loops_) {
      Loop* loop = loop_ptr.get();
      loop->events->Post([loop] {
        if (loop->listen_fd >= 0) {
          loop->events->Remove(loop->listen_fd);
          ::close(loop->listen_fd);
          loop->listen_fd = -1;
        }
      });
    }
    // Phase 2: wait (bounded) until every dispatched request has been
    // answered and every answer has left the socket buffers. A peer
    // that stops reading cannot stretch this past the deadline.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_timeout_ms);
    while (std::chrono::steady_clock::now() < deadline &&
           (in_flight_.load(std::memory_order_relaxed) > 0 ||
            pending_out_.load(std::memory_order_relaxed) > 0)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& loop : loops_) loop->events->Stop();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loop threads are dead; tear the sockets down from here.
  for (auto& loop : loops_) {
    for (auto& [id, conn] : loop->conns) {
      ::close(conn->fd);
      active_.fetch_sub(1, std::memory_order_relaxed);
    }
    loop->conns.clear();
    if (loop->listen_fd >= 0) {
      ::close(loop->listen_fd);
      loop->listen_fd = -1;
    }
  }
}

HttpServer::Counters HttpServer::counters() const {
  Counters counters;
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.active = active_.load(std::memory_order_relaxed);
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.responses = responses_.load(std::memory_order_relaxed);
  counters.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  counters.overload_closed = overload_closed_.load(std::memory_order_relaxed);
  return counters;
}

void HttpServer::HandleAccept(size_t loop_index) {
  Loop& loop = *loops_[loop_index];
  for (;;) {  // edge-triggered: drain the accept queue
    const int fd = ::accept4(loop.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ECONNABORTED) {
        DSSDDI_LOG(Warning) << "accept4: " << std::strerror(errno);
      }
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const fault::FaultAction accept_fault =
        fault::Probe(options_.fault.get(), fault::FaultOp::kAccept);
    if (accept_fault.kind == fault::FaultAction::Kind::kBlackout ||
        accept_fault.kind == fault::FaultAction::Kind::kReset) {
      // Blacked-out replica / injected accept reset: RST the peer so
      // clients observe a dead endpoint, not a polite close.
      struct linger rst {1, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &rst, sizeof(rst));
      ::close(fd);
      continue;
    }
    if (accept_fault.kind == fault::FaultAction::Kind::kStall) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(accept_fault.stall_ms));
    }
    if (active_.load(std::memory_order_relaxed) >=
        static_cast<uint64_t>(options_.max_connections)) {
      overload_closed_.fetch_add(1, std::memory_order_relaxed);
      if (options_.recorder) {
        options_.recorder->Record(
            obs::LogSeverity::kWarning, obs::LogReason::kOverloadClosed,
            "http", 503, 0, 0.0, nullptr,
            "accept shed: connection cap reached");
      }
      // Best-effort courtesy 503; the fresh socket buffer makes a short
      // write all but guaranteed.
      [[maybe_unused]] const ssize_t n =
          ::send(fd, kOverloadResponse, sizeof(kOverloadResponse) - 1,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const size_t target =
        reuseport_ ? loop_index
                   : next_loop_.fetch_add(1, std::memory_order_relaxed) %
                         loops_.size();
    if (target == loop_index) {
      RegisterConnection(target, fd);
    } else if (!loops_[target]->events->Post(
                   [this, target, fd] { RegisterConnection(target, fd); })) {
      ::close(fd);  // target loop already stopped
    }
  }
}

void HttpServer::RegisterConnection(size_t loop_index, int fd) {
  Loop& loop = *loops_[loop_index];
  auto conn = std::make_unique<Connection>(options_.limits);
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = conn->id;
  active_.fetch_add(1, std::memory_order_relaxed);
  loop.conns.emplace(id, std::move(conn));
  loop.events->Add(fd, EPOLLIN | EPOLLRDHUP,
                   [this, loop_index, id](uint32_t events) {
                     HandleIo(loop_index, id, events);
                   });
}

void HttpServer::HandleIo(size_t loop_index, uint64_t conn_id, uint32_t events) {
  Loop& loop = *loops_[loop_index];
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  Connection* conn = it->second.get();

  if (events & EPOLLERR) {
    CloseConnection(loop_index, conn_id);
    return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
    // Backpressured frame connections leave bytes in the kernel buffer;
    // the completion path resumes reading explicitly, which re-arms the
    // edge-triggered readiness we are ignoring here.
    if (!conn->read_paused) {
      if (!ReadInput(loop_index, conn)) return;
      if (!ProcessConnection(loop_index, conn)) return;
    }
  }
  if (events & EPOLLOUT) {
    if (!FlushOutput(loop_index, conn)) return;
    if (conn->mode == Connection::Mode::kFrame) {
      ResumeFrameProcessing(loop_index, conn);
    } else if (!conn->awaiting_response && !conn->close_after_flush) {
      ProcessConnection(loop_index, conn);
    }
  }
}

bool HttpServer::ReadInput(size_t loop_index, Connection* conn) {
  const fault::FaultAction read_fault =
      fault::Probe(options_.fault.get(), fault::FaultOp::kRead);
  if (read_fault.kind == fault::FaultAction::Kind::kBlackout ||
      read_fault.kind == fault::FaultAction::Kind::kReset) {
    AbortConnection(loop_index, conn->id);
    return false;
  }
  if (read_fault.kind == fault::FaultAction::Kind::kStall) {
    // Stalls the loop thread on purpose: a wedged replica is slow for
    // every connection it owns, which is exactly the tail chaos tests
    // need to produce.
    std::this_thread::sleep_for(std::chrono::milliseconds(read_fault.stall_ms));
  }
  // Pipelining / slowloris guard: a connection may buffer at most one
  // maximal request plus a read chunk before we stop trusting it.
  const size_t input_cap = options_.limits.max_request_line +
                           options_.limits.max_header_bytes +
                           options_.limits.max_body_bytes + 8192;
  char buffer[8192];
  for (;;) {  // edge-triggered: drain until EAGAIN or EOF
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      if (conn->in.size() > input_cap) {
        CloseConnection(loop_index, conn->id);
        return false;
      }
      continue;
    }
    if (n == 0) {
      conn->eof = true;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    CloseConnection(loop_index, conn->id);
    return false;
  }
}

bool HttpServer::ProcessConnection(size_t loop_index, Connection* conn) {
  if (conn->mode == Connection::Mode::kUnknown) {
    // Sniff the protocol from the first bytes: the frame magic ("SD")
    // collides with no HTTP method. One ambiguous buffered byte ('S')
    // waits for its successor rather than feeding the HTTP parser bytes
    // that may turn out to be a frame.
    if (conn->in.size() >= 2) {
      conn->mode = wire::LooksLikeFramePrefix(conn->in.data(), 2)
                       ? Connection::Mode::kFrame
                       : Connection::Mode::kHttp;
    } else if (!conn->in.empty() &&
               !wire::LooksLikeFramePrefix(conn->in.data(), conn->in.size())) {
      conn->mode = Connection::Mode::kHttp;
    } else if (conn->eof) {
      conn->mode = Connection::Mode::kHttp;  // let the parser 400 it
    } else {
      return true;  // undecidable with 0-1 bytes; wait for more
    }
  }
  if (conn->mode == Connection::Mode::kFrame) {
    return ProcessFrames(loop_index, conn);
  }
  return ProcessHttp(loop_index, conn);
}

bool HttpServer::ProcessHttp(size_t loop_index, Connection* conn) {
  while (!conn->awaiting_response && !conn->close_after_flush &&
         !conn->in.empty()) {
    size_t consumed = 0;
    const HttpParser::Result result =
        conn->parser.Feed(conn->in.data(), conn->in.size(), &consumed);
    conn->in.erase(0, consumed);
    if (result == HttpParser::Result::kNeedMore) break;
    if (result == HttpParser::Result::kError) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      if (options_.recorder) {
        options_.recorder->Record(
            obs::LogSeverity::kError, obs::LogReason::kParseError, "http",
            conn->parser.error_status(), 0, 0.0, nullptr,
            "request parse failed; connection closing");
      }
      HttpResponse error;
      error.status = conn->parser.error_status();
      // The reason can embed raw client bytes (method, version token);
      // escape them or the error body itself is malformed JSON.
      error.body = "{\"error\":\"" + JsonEscape(conn->parser.error_reason()) + "\"}";
      error.close = true;
      QueueOutput(conn, SerializeResponse(error, /*keep_alive=*/false));
      conn->close_after_flush = true;
      break;
    }
    // One complete request: dispatch and stop parsing until it is
    // answered (pipelined successors stay buffered in `in`).
    requests_.fetch_add(1, std::memory_order_relaxed);
    HttpRequest request = conn->parser.TakeRequest();
    conn->parser.Reset();
    conn->awaiting_response = true;
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    conn->keep_alive = request.keep_alive;

    ResponseWriter writer;
    writer.target_ = std::make_shared<ResponseWriter::Target>();
    writer.target_->loop = loops_[loop_index]->events;
    writer.target_->server = this;
    writer.target_->loop_index = loop_index;
    writer.target_->conn_id = conn->id;
    handler_(request, writer);
  }
  if (conn->eof && !conn->awaiting_response && conn->out_bytes == 0) {
    CloseConnection(loop_index, conn->id);
    return false;
  }
  return FlushOutput(loop_index, conn);
}

bool HttpServer::PipelineSaturated(const Connection* conn) const {
  return conn->frame_pending.size() >=
             static_cast<size_t>(options_.max_pipeline_depth) ||
         conn->out_bytes > options_.max_pipeline_write_bytes;
}

bool HttpServer::ProcessFrames(size_t loop_index, Connection* conn) {
  // A forged length prefix may not balloon the buffer: frames are capped
  // at the same body limit the HTTP route enforces (plus its own
  // envelope slack, which frames don't need).
  const size_t max_payload = options_.limits.max_body_bytes;
  while (!conn->close_after_flush && !conn->in.empty() &&
         !PipelineSaturated(conn)) {
    wire::FrameView view;
    std::string error;
    const wire::ExtractResult result = wire::ExtractFrame(
        conn->in.data(), conn->in.size(), max_payload, &view, &error);
    if (result == wire::ExtractResult::kNeedMore) break;
    if (result == wire::ExtractResult::kError) {
      // Stream-level violation (bad magic/version/type, hostile
      // length): answer with a connection-level error frame
      // (request_id 0) and hang up — the stream has no recoverable
      // frame boundary to resume from.
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      if (options_.recorder) {
        options_.recorder->Record(
            obs::LogSeverity::kError, obs::LogReason::kParseError, "wire",
            400, 0, 0.0, nullptr, "frame parse failed; connection closing");
      }
      wire::ErrorFrame reject;
      reject.status = 400;
      reject.message = "frame error: " + error;
      QueueOutput(conn, wire::EncodeError(reject));
      conn->close_after_flush = true;
      break;
    }
    std::string frame = conn->in.substr(0, view.frame_bytes);
    conn->in.erase(0, view.frame_bytes);
    if (view.type != wire::FrameType::kSuggestRequest) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      wire::ErrorFrame reject;
      reject.status = 400;
      reject.message = "only request frames are accepted on this connection";
      reject.request_id = view.request_id;
      QueueOutput(conn, wire::EncodeError(reject));
      conn->close_after_flush = true;
      break;
    }
    if (!conn->frame_pending.insert(view.request_id).second) {
      // Duplicate in-flight id: the client broke the multiplexing
      // contract for this one request; reject it with a structured
      // error frame but keep the connection (and the original
      // request) alive.
      wire::ErrorFrame reject;
      reject.status = 400;
      reject.message = "duplicate in-flight request_id";
      reject.request_id = view.request_id;
      QueueOutput(conn, wire::EncodeError(reject));
      ScheduleFlush(loop_index, conn);
      continue;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_relaxed);

    // Synthesize the HTTP request the frontend already speaks: the
    // frame rides as a binary POST /v1/suggest body, so admission,
    // deadlines, tracing and metrics behave identically on both
    // transports.
    HttpRequest request;
    request.method = "POST";
    request.target = "/v1/suggest";
    request.version_minor = 1;
    request.headers.push_back({"content-type", wire::kContentType});
    request.body = std::move(frame);
    request.keep_alive = true;

    ResponseWriter writer;
    writer.target_ = std::make_shared<ResponseWriter::Target>();
    writer.target_->loop = loops_[loop_index]->events;
    writer.target_->server = this;
    writer.target_->loop_index = loop_index;
    writer.target_->conn_id = conn->id;
    writer.target_->frame = true;
    writer.target_->request_id = view.request_id;
    handler_(request, writer);
  }
  conn->read_paused = PipelineSaturated(conn) && !conn->close_after_flush;
  if (conn->eof && conn->frame_pending.empty() && conn->out_bytes == 0 &&
      !conn->flush_scheduled) {
    CloseConnection(loop_index, conn->id);
    return false;
  }
  return FlushOutput(loop_index, conn);
}

bool HttpServer::FlushOutput(size_t loop_index, Connection* conn) {
  while (conn->out_bytes > 0) {
    const fault::FaultAction write_fault =
        fault::Probe(options_.fault.get(), fault::FaultOp::kWrite);
    switch (write_fault.kind) {
      case fault::FaultAction::Kind::kBlackout:
      case fault::FaultAction::Kind::kReset:
        AbortConnection(loop_index, conn->id);
        return false;
      case fault::FaultAction::Kind::kTruncate: {
        // Deliver a prefix of the pending bytes, then RST: the peer
        // sees a frame cut mid-payload.
        const std::string& front = conn->outq.front();
        const size_t remaining = front.size() - conn->out_offset;
        const size_t part = remaining / 2;
        if (part > 0) {
          [[maybe_unused]] const ssize_t n =
              ::send(conn->fd, front.data() + conn->out_offset, part,
                     MSG_NOSIGNAL | MSG_DONTWAIT);
        }
        AbortConnection(loop_index, conn->id);
        return false;
      }
      case fault::FaultAction::Kind::kCorrupt: {
        // Flip one bit mid-way through the unsent bytes — lands in the
        // response body for anything but tiny heads, so binary-frame
        // clients must detect it by strict decode.
        size_t target = conn->out_bytes / 2;
        size_t skip = conn->out_offset;
        for (auto& buf : conn->outq) {
          const size_t avail = buf.size() - skip;
          if (target < avail) {
            buf[skip + target] ^= 0x20;
            break;
          }
          target -= avail;
          skip = 0;
        }
        break;
      }
      case fault::FaultAction::Kind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(write_fault.stall_ms));
        break;
      case fault::FaultAction::Kind::kNone:
        break;
    }
    // Coalesce the queued buffers into one vectored write: pipelined
    // completions batch many response frames per syscall instead of
    // paying one send() per frame.
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    size_t skip = conn->out_offset;
    for (auto& buf : conn->outq) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = const_cast<char*>(buf.data()) + skip;
      iov[iovcnt].iov_len = buf.size() - skip;
      ++iovcnt;
      skip = 0;
    }
    struct msghdr msg {};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      size_t sent = static_cast<size_t>(n);
      conn->out_bytes -= sent;
      while (sent > 0) {
        std::string& front = conn->outq.front();
        const size_t avail = front.size() - conn->out_offset;
        if (sent < avail) {
          conn->out_offset += sent;
          sent = 0;
        } else {
          sent -= avail;
          conn->out_offset = 0;
          conn->outq.pop_front();
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loops_[loop_index]->events->Modify(conn->fd,
                                           EPOLLIN | EPOLLRDHUP | EPOLLOUT);
      }
      SyncPendingOut(conn);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(loop_index, conn->id);
    return false;
  }
  SyncPendingOut(conn);
  if (conn->want_write) {
    conn->want_write = false;
    loops_[loop_index]->events->Modify(conn->fd, EPOLLIN | EPOLLRDHUP);
  }
  const bool idle = conn->mode == Connection::Mode::kFrame
                        ? conn->frame_pending.empty()
                        : !conn->awaiting_response;
  if (conn->close_after_flush || (conn->eof && idle)) {
    CloseConnection(loop_index, conn->id);
    return false;
  }
  return true;
}

bool HttpServer::ResumeFrameProcessing(size_t loop_index, Connection* conn) {
  if (conn->mode != Connection::Mode::kFrame) return true;
  if (conn->read_paused && !PipelineSaturated(conn)) {
    conn->read_paused = false;
    // Edge-triggered epoll reported readiness we ignored while paused;
    // an explicit read is the only way to learn what arrived since.
    if (!ReadInput(loop_index, conn)) return false;
  }
  return ProcessConnection(loop_index, conn);
}

void HttpServer::QueueOutput(Connection* conn, std::string bytes) {
  if (bytes.empty()) return;
  conn->out_bytes += bytes.size();
  conn->outq.push_back(std::move(bytes));
}

void HttpServer::ScheduleFlush(size_t loop_index, Connection* conn) {
  if (conn->flush_scheduled) return;
  conn->flush_scheduled = true;
  const uint64_t conn_id = conn->id;
  // Runs after every completion already queued on the loop: all of
  // their response frames land in one vectored write.
  loops_[loop_index]->events->Post([this, loop_index, conn_id] {
    Loop& loop = *loops_[loop_index];
    auto it = loop.conns.find(conn_id);
    if (it == loop.conns.end()) return;
    Connection* conn = it->second.get();
    conn->flush_scheduled = false;
    if (!FlushOutput(loop_index, conn)) return;
    ResumeFrameProcessing(loop_index, conn);
  });
}

void HttpServer::CompleteRequest(size_t loop_index, uint64_t conn_id,
                                 HttpResponse response, bool frame,
                                 uint64_t request_id) {
  Loop& loop = *loops_[loop_index];
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;  // connection died while scoring
  Connection* conn = it->second.get();

  if (frame) {
    if (conn->frame_pending.erase(request_id) == 0) return;
    responses_.fetch_add(1, std::memory_order_relaxed);
    std::string body;
    if (response.content_type == wire::kContentType) {
      body = std::move(response.body);
    } else {
      // The handler answered outside the binary codec (it never does
      // for synthesized suggest requests, but a handler swap must not
      // corrupt the stream): wrap it as an error frame.
      wire::ErrorFrame wrapped;
      wrapped.status = static_cast<uint32_t>(response.status);
      wrapped.message = response.body;
      body = wire::EncodeError(wrapped);
    }
    // Transport-level echo enforcement: whatever the codec put in the
    // header, the answer carries the id the request arrived under.
    wire::PatchRequestId(&body, request_id);
    QueueOutput(conn, std::move(body));
    // Count the unflushed bytes before releasing in_flight_ so the
    // drain loop never observes both gauges at zero with a response
    // still buffered.
    SyncPendingOut(conn);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    ScheduleFlush(loop_index, conn);
    return;
  }

  if (!conn->awaiting_response) return;
  responses_.fetch_add(1, std::memory_order_relaxed);
  const bool keep = conn->keep_alive && !response.close;
  QueueOutput(conn, SerializeResponse(response, conn->keep_alive));
  // Count the unflushed bytes before releasing in_flight_ so the drain
  // loop never observes both gauges at zero with a response still
  // buffered.
  SyncPendingOut(conn);
  conn->awaiting_response = false;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (!keep) conn->close_after_flush = true;
  if (!FlushOutput(loop_index, conn)) return;
  if (!conn->close_after_flush) {
    ProcessConnection(loop_index, conn);  // next pipelined request, if any
  }
}

void HttpServer::CloseConnection(size_t loop_index, uint64_t conn_id) {
  Loop& loop = *loops_[loop_index];
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  Connection* conn = it->second.get();
  const uint64_t abandoned = conn->frame_pending.size() +
                             (conn->awaiting_response ? 1 : 0);
  if (abandoned > 0) {
    // The connection died while requests were scoring; the late
    // ResponseWriter::Sends will find the id gone and drop their
    // responses.
    in_flight_.fetch_sub(abandoned, std::memory_order_relaxed);
  }
  if (conn->counted_pending) {
    pending_out_.fetch_sub(1, std::memory_order_relaxed);
  }
  loop.events->Remove(conn->fd);
  ::close(conn->fd);
  loop.conns.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void HttpServer::SyncPendingOut(Connection* conn) {
  const bool pending = conn->out_bytes > 0;
  if (pending == conn->counted_pending) return;
  conn->counted_pending = pending;
  if (pending) {
    pending_out_.fetch_add(1, std::memory_order_relaxed);
  } else {
    pending_out_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void HttpServer::AbortConnection(size_t loop_index, uint64_t conn_id) {
  Loop& loop = *loops_[loop_index];
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  struct linger rst {1, 0};
  ::setsockopt(it->second->fd, SOL_SOCKET, SO_LINGER, &rst, sizeof(rst));
  CloseConnection(loop_index, conn_id);
}

}  // namespace dssddi::net
