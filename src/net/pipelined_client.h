#ifndef DSSDDI_NET_PIPELINED_CLIENT_H_
#define DSSDDI_NET_PIPELINED_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "io/binary.h"
#include "net/fault.h"
#include "net/http_client.h"

namespace dssddi::net {

struct PipelinedClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Socket connect timeout.
  int connect_timeout_ms = 2000;
  /// Reader-side cap on a response frame's declared payload: a corrupt
  /// or hostile length prefix fails the stream instead of ballooning
  /// the receive buffer.
  size_t max_frame_payload = 1 << 20;
};

/// Multiplexed pipelined client for the raw wire-frame protocol: one
/// connection, many concurrent callers. Each Exchange stamps a
/// hop-local request_id onto the caller's encoded frame, sends it, and
/// blocks until the reader thread correlates the response frame back by
/// id — so N in-flight requests share one socket and complete out of
/// order, replacing N one-exchange-at-a-time pooled HTTP connections.
///
/// Contract mirrors HttpClient::Request where it matters to the
/// retry/hedge/breaker machinery above: per-request deadlines fail with
/// a "deadline" message, cooperative cancellation (hedge losers) with
/// "cancelled" — both leave the connection healthy, because abandoning
/// one multiplexed request must not kill its neighbors; the late
/// response is recognized and discarded by id. Transport errors fail
/// every in-flight exchange and disconnect; the next Exchange
/// reconnects automatically.
///
/// The returned ClientResponse carries the raw response (or error)
/// frame as its body with the caller's original request_id restored —
/// codec passthrough above (the router) relays bodies verbatim, so the
/// hop-local ids this client assigns must never leak out of it.
class PipelinedClient {
 public:
  explicit PipelinedClient(const PipelinedClientOptions& options);
  ~PipelinedClient();

  PipelinedClient(const PipelinedClient&) = delete;
  PipelinedClient& operator=(const PipelinedClient&) = delete;

  /// One multiplexed exchange of an encoded kSuggestRequest frame.
  /// Thread-safe. Connects lazily; `options.deadline_ms` bounds the
  /// whole exchange (connect included) and `options.cancel` aborts it.
  /// On success `out->status` is 200 for a response frame or the error
  /// frame's embedded status, and `out->body` is the raw frame.
  io::Status Exchange(const std::string& frame,
                      const ClientRequestOptions& options,
                      ClientResponse* out);

  bool connected() const;
  /// Fails every in-flight exchange and closes the socket. Idempotent;
  /// the next Exchange reconnects.
  void Close();

  /// Requests currently awaiting their response frame (tests).
  size_t in_flight() const;
  /// Bumped on every successful (re)connect — how callers distinguish
  /// "failed on a stale connection" from "failed on a fresh one".
  uint64_t generation() const;

  /// Optional fault injector consulted on sends/receives (chaos
  /// testing). Must outlive the client.
  void set_fault(fault::FaultInjector* injector) { fault_ = injector; }

 private:
  struct Pending {
    bool done = false;
    io::Status status = io::Status::Ok();
    std::string frame;  // raw response/error frame as received
  };

  /// Fails every in-flight exchange. Caller holds mutex_; `reason`
  /// lands in each pending exchange's status.
  void FailAllLocked(const std::string& reason);
  void ReaderLoop(int fd, uint64_t generation);

  PipelinedClientOptions options_;
  fault::FaultInjector* fault_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int fd_ = -1;
  uint64_t generation_ = 0;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;
  /// Ids whose caller gave up (deadline/cancel): the late response is
  /// dropped silently instead of being treated as a protocol error.
  std::unordered_set<uint64_t> abandoned_;
  std::thread reader_;
  /// Set by the reader when it exits (connection dead, pendings
  /// failed); the next Exchange reaps it and reconnects.
  bool reader_done_ = false;
  /// Guards the join + dial window where mutex_ is dropped, so
  /// concurrent exchanges neither double-connect nor race teardown.
  bool connecting_ = false;

  /// Serializes frame writes so concurrent exchanges never interleave
  /// bytes mid-frame. Separate from mutex_: a blocked send must not
  /// stop the reader from completing other exchanges.
  std::mutex write_mutex_;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_PIPELINED_CLIENT_H_
