#ifndef DSSDDI_NET_SUGGEST_FRONTEND_H_
#define DSSDDI_NET_SUGGEST_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/http_server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/latency_tracker.h"
#include "serve/service.h"

namespace dssddi::net {

/// Front-end policy knobs, fixed at construction.
struct SuggestFrontendOptions {
  struct RouteBudget {
    std::string route;  // exact target, e.g. "/v1/suggest"
    int budget_ms = 0;
  };
  /// Default latency budgets applied per route when a request arrives
  /// without an explicit deadline (no X-Deadline-Ms header / zero
  /// binary deadline field). Only queued routes meaningfully expire —
  /// /healthz, /statsz and /admin/reload answer inline on the loop
  /// thread — but the table is keyed by route so new scoring routes get
  /// budgets without new plumbing. Empty (default) = no default budgets.
  std::vector<RouteBudget> route_budgets;
  /// Ceiling clamped onto client-supplied budgets; 0 = no ceiling.
  int max_budget_ms = 0;
  /// Head-based trace sampling for /v1/suggest: every Nth request gets a
  /// full per-stage trace (stage histograms + /tracez retention). 1
  /// traces everything, 0 disables tracing — and the disabled path adds
  /// zero allocations and zero clock reads per request. Per-route
  /// latency histograms are recorded for every request regardless.
  uint32_t trace_sample_every = 64;
  /// Attach a Server-Timing header (stage breakdown in milliseconds) to
  /// /v1/suggest responses whose request was trace-sampled.
  bool server_timing = true;
  /// Optional fault injector (chaos testing): when set, GET/POST
  /// /admin/fault reads/installs its spec, and the same injector should
  /// be handed to HttpServerOptions::fault so installed specs take
  /// effect on this replica's socket ops. Absent -> /admin/fault 404s.
  std::shared_ptr<fault::FaultInjector> fault_injector;

  int DefaultBudgetMs(const std::string& route) const {
    for (const RouteBudget& entry : route_budgets) {
      if (entry.route == route) return entry.budget_ms;
    }
    return 0;
  }
};

/// HTTP API over a SuggestionService. Routes:
///
///   POST /v1/suggest   JSON body {"patient_id":7,"features":[...],"k":3,
///                      "explain":true} — or, when Content-Type is
///                      application/x-dssddi, one binary request frame
///                      (see net/wire.h); the response mirrors the
///                      request's codec.
///                      -> 200 suggestion (JSON object / binary frame)
///                      -> 400 malformed body / wrong feature width / bad k
///                      -> 429 load-shed by the admission controller
///                      -> 504 deadline-shed or expired before scoring
///   GET  /healthz      liveness + model version
///   GET  /statsz       ServiceStats + admission + per-route latency +
///                      HTTP counters as JSON
///   GET  /metricsz     Prometheus exposition text: every registry metric
///                      (per-route latency histograms, per-stage trace
///                      histograms, HTTP counters) plus the ServiceStats
///                      counters rendered from the same atomics /statsz
///                      reads — the two views cannot disagree
///   GET  /tracez       the slow-trace and errored-trace rings as JSON,
///                      per-stage timings included
///   GET  /logz         the flight recorder's wide events as NDJSON,
///                      oldest first; ?severity=info|warning|error sets
///                      a minimum severity, ?trace=<id> keeps one trace,
///                      ?route=<route> keeps one route
///   GET  /sloz         SLO engine state: per-objective fast/slow burn
///                      rates, windowed counts, degraded flag
///
/// `/metricsz?format=openmetrics` switches the exposition to OpenMetrics
/// 1.0: counter families drop `_total` in HELP/TYPE, histogram buckets
/// carry `# {trace_id="..."} ...` exemplars linking tail latency to
/// /tracez//logz entries, and the payload ends with `# EOF`.
///   POST /admin/reload {"path":"/models/new.dssb"} -> hot-swaps the bundle
///                      -> 409 incompatible bundle, 400 bad body/file
///
/// Request-context edge: this is where a serve::RequestContext is born.
/// Arrival is stamped on dispatch; the deadline comes from the
/// X-Deadline-Ms header (JSON) or the frame's deadline field (binary),
/// falling back to the route's default budget; X-Priority / the frame's
/// priority flag picks the class; X-Trace-Id / the frame's trace id
/// names the request (server-assigned when absent, echoed in binary
/// responses). Every layer downstream — admission, batching, scoring —
/// acts on that one context instead of re-deriving budgets.
///
/// Scoring is fully asynchronous: the handler enqueues into the service
/// and the completion (on a worker thread) sends through the
/// ResponseWriter, so event-loop threads never wait on a model pass.
/// JSON scores are serialized with %.9g, which round-trips binary32
/// exactly; binary scores cross as raw binary32 — both routes deliver
/// floats bit-identical to an in-process `DssddiSystem::Suggest` call.
///
/// `/admin/reload` loads the bundle from local disk on the calling loop
/// thread (admin traffic is rare; a short accept stall is acceptable)
/// and swaps it in without draining in-flight requests.
class SuggestFrontend {
 public:
  explicit SuggestFrontend(serve::SuggestionService* service,
                           const SuggestFrontendOptions& options = {});

  /// Optional: include the server's connection counters in /statsz.
  void AttachServer(const HttpServer* server) { http_ = server; }

  /// The HttpServer handler. Runs on an event-loop thread; never blocks
  /// on scoring.
  void Handle(const HttpRequest& request, ResponseWriter writer);

  HttpServer::Handler AsHandler() {
    return [this](const HttpRequest& request, ResponseWriter writer) {
      Handle(request, writer);
    };
  }

  /// Requests rejected before reaching the service (bad JSON, bad
  /// frames, bad deadline headers); 404/405s are not counted.
  uint64_t bad_requests() const { return bad_requests_.load(); }

  const SuggestFrontendOptions& options() const { return options_; }

 private:
  /// Per-route request counter + handler-observed latency (dispatch to
  /// response send), both living in the service's metrics registry so
  /// /metricsz exposes them as dssddi_http_requests_total{route=...} and
  /// dssddi_request_latency_ms{route=...}. The Counter*/Histogram*
  /// handles are cached here at construction — the hot path never takes
  /// the registry's registration mutex. Held by shared_ptr (and holding
  /// the registry by shared_ptr) because suggest completions run on
  /// service worker threads and may outlive the frontend during
  /// shutdown — the lambda keeps its metrics alive.
  struct RouteMetrics {
    RouteMetrics(std::shared_ptr<obs::Registry> owner, const char* name);
    const char* route;
    std::shared_ptr<obs::Registry> registry;
    obs::Counter* requests;
    /// Response status classes, feeding the availability SLO — same
    /// family (name + labels) the SloEngine resolves, so registration
    /// order between engine and frontend does not matter.
    obs::Counter* responses_2xx;
    obs::Counter* responses_4xx;
    obs::Counter* responses_5xx;
    serve::LatencyTracker latency;

    void CountResponse(int status) {
      (status >= 500       ? responses_5xx
       : status >= 400     ? responses_4xx
                           : responses_2xx)
          ->Increment();
    }
  };

  void HandleSuggest(const HttpRequest& request, ResponseWriter writer,
                     std::chrono::steady_clock::time_point start);
  void HandleHealth(ResponseWriter writer) const;
  /// 200 only when the server (if attached) is not draining: liveness
  /// and readiness diverge during graceful shutdown.
  int HandleReadyz(ResponseWriter writer) const;
  int HandleAdminFault(const HttpRequest& request, ResponseWriter writer);
  void HandleStats(ResponseWriter writer) const;
  void HandleMetrics(ResponseWriter writer, bool openmetrics) const;
  void HandleTracez(ResponseWriter writer) const;
  /// Return the status they answered with, so the caller counts the
  /// response class without re-deriving it.
  int HandleLogz(const std::string& query, ResponseWriter writer);
  int HandleSloz(ResponseWriter writer) const;
  int HandleReload(const HttpRequest& request, ResponseWriter writer);
  /// Counts one pre-service rejection: bad_requests_, the route's 4xx
  /// class, and a kBadRequest flight-recorder event. `detail` must be a
  /// string literal (recorder contract).
  void RecordRejection(RouteMetrics& metrics, const char* detail);

  serve::SuggestionService* service_;
  SuggestFrontendOptions options_;
  const HttpServer* http_ = nullptr;
  /// The service's flight recorder (shared; see SuggestionService).
  std::shared_ptr<obs::FlightRecorder> recorder_;
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  /// Cached sampler handle for /v1/suggest (stable for the collector's
  /// lifetime; consulting it is a relaxed load + fetch_add).
  obs::TraceSampler* suggest_sampler_ = nullptr;
  std::shared_ptr<RouteMetrics> suggest_metrics_;
  std::shared_ptr<RouteMetrics> healthz_metrics_;
  std::shared_ptr<RouteMetrics> statsz_metrics_;
  std::shared_ptr<RouteMetrics> metricsz_metrics_;
  std::shared_ptr<RouteMetrics> tracez_metrics_;
  std::shared_ptr<RouteMetrics> logz_metrics_;
  std::shared_ptr<RouteMetrics> sloz_metrics_;
  std::shared_ptr<RouteMetrics> reload_metrics_;
  std::shared_ptr<RouteMetrics> readyz_metrics_;
  std::shared_ptr<RouteMetrics> fault_metrics_;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_SUGGEST_FRONTEND_H_
