#ifndef DSSDDI_NET_SUGGEST_FRONTEND_H_
#define DSSDDI_NET_SUGGEST_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "net/http_server.h"
#include "serve/service.h"

namespace dssddi::net {

/// HTTP API over a SuggestionService. Routes:
///
///   POST /v1/suggest   {"patient_id":7,"features":[...],"k":3,"explain":true}
///                      -> 200 {"drugs":[...],"scores":[...],...}
///                      -> 400 malformed JSON / wrong feature width / bad k
///                      -> 429 shed by the admission controller
///   GET  /healthz      liveness + model version
///   GET  /statsz       ServiceStats + admission + HTTP counters as JSON
///   POST /admin/reload {"path":"/models/new.dssb"} -> hot-swaps the bundle
///                      -> 409 incompatible bundle, 400 bad body/file
///
/// Scoring is fully asynchronous: the handler enqueues into the service
/// and the completion (on a worker thread) sends through the
/// ResponseWriter, so event-loop threads never wait on a model pass.
/// Suggestion scores are serialized with %.9g, which round-trips
/// binary32 exactly — a client parsing the JSON recovers bit-identical
/// floats to an in-process `DssddiSystem::Suggest` call.
///
/// `/admin/reload` loads the bundle from local disk on the calling loop
/// thread (admin traffic is rare; a short accept stall is acceptable)
/// and swaps it in without draining in-flight requests.
class SuggestFrontend {
 public:
  explicit SuggestFrontend(serve::SuggestionService* service)
      : service_(service) {}

  /// Optional: include the server's connection counters in /statsz.
  void AttachServer(const HttpServer* server) { http_ = server; }

  /// The HttpServer handler. Runs on an event-loop thread; never blocks
  /// on scoring.
  void Handle(const HttpRequest& request, ResponseWriter writer);

  HttpServer::Handler AsHandler() {
    return [this](const HttpRequest& request, ResponseWriter writer) {
      Handle(request, writer);
    };
  }

  /// Requests rejected before reaching the service (bad JSON, bad route
  /// bodies); 404/405s are not counted.
  uint64_t bad_requests() const { return bad_requests_.load(); }

 private:
  void HandleSuggest(const HttpRequest& request, ResponseWriter writer);
  void HandleHealth(ResponseWriter writer) const;
  void HandleStats(ResponseWriter writer) const;
  void HandleReload(const HttpRequest& request, ResponseWriter writer);

  serve::SuggestionService* service_;
  const HttpServer* http_ = nullptr;
  std::atomic<uint64_t> bad_requests_{0};
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_SUGGEST_FRONTEND_H_
