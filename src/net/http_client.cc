#include "net/http_client.h"

#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <thread>

namespace dssddi::net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return static_cast<int>(left.count());
}

}  // namespace

const std::string* ClientResponse::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiEqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

io::Status HttpClient::Connect(const std::string& host, int port,
                               int timeout_ms) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return io::Status::Error(std::string("socket: ") + std::strerror(errno));
  }
  struct timeval timeout {};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return io::Status::Error("unparseable address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const io::Status status = io::Status::Error(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    Close();
    return status;
  }
  buffer_.clear();
  return io::Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

io::Status HttpClient::Request(const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               const ClientRequestOptions& options,
                               ClientResponse* out) {
  if (fd_ < 0) return io::Status::Error("not connected");
  const bool has_deadline = options.deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options.deadline_ms);
  int advertise = options.advertise_deadline_ms;
  if (advertise < 0) advertise = has_deadline ? options.deadline_ms : 0;

  std::string wire;
  wire.reserve(160 + body.size());
  wire += method;
  wire.push_back(' ');
  wire += target;
  wire += " HTTP/1.1\r\nHost: dssddi\r\n";
  if (advertise > 0) {
    wire += "X-Deadline-Ms: ";
    wire += std::to_string(advertise);
    wire += "\r\n";
  }
  if (!body.empty()) {
    wire += "Content-Type: ";
    wire += options.content_type;
    wire += "\r\nContent-Length: ";
    wire += std::to_string(body.size());
    wire += "\r\n";
  }
  wire += "\r\n";
  wire += body;

  const fault::FaultAction send_fault =
      fault::Probe(fault_, fault::FaultOp::kWrite);
  if (send_fault.kind == fault::FaultAction::Kind::kReset ||
      send_fault.kind == fault::FaultAction::Kind::kBlackout) {
    Close();
    return io::Status::Error("injected fault: connection reset during send");
  }
  if (send_fault.kind == fault::FaultAction::Kind::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(send_fault.stall_ms));
  }

  size_t sent = 0;
  while (sent < wire.size()) {
    if (has_deadline && RemainingMs(deadline) <= 0) {
      Close();
      return io::Status::Error("request deadline exceeded during send");
    }
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      Close();
      return io::Status::Error("request cancelled");
    }
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const io::Status status =
        io::Status::Error(std::string("send: ") + std::strerror(errno));
    Close();
    return status;
  }
  return ReadResponse(deadline, has_deadline, options.cancel, out);
}

io::Status HttpClient::WaitReadable(Clock::time_point deadline,
                                    bool has_deadline,
                                    const std::atomic<bool>* cancel) {
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      Close();
      return io::Status::Error("request cancelled");
    }
    int wait_ms = 20;  // cancellation granularity
    if (has_deadline) {
      const int remaining = RemainingMs(deadline);
      if (remaining <= 0) {
        Close();
        return io::Status::Error("request deadline exceeded awaiting response");
      }
      wait_ms = cancel != nullptr ? std::min(remaining, 20) : remaining;
    }
    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready > 0) return io::Status::Ok();
    if (ready == 0) {
      if (!has_deadline || RemainingMs(deadline) > 0) continue;
      Close();
      return io::Status::Error("request deadline exceeded awaiting response");
    }
    if (errno == EINTR) continue;
    const io::Status status =
        io::Status::Error(std::string("poll: ") + std::strerror(errno));
    Close();
    return status;
  }
}

io::Status HttpClient::ReadResponse(Clock::time_point deadline,
                                    bool has_deadline,
                                    const std::atomic<bool>* cancel,
                                    ClientResponse* out) {
  *out = ClientResponse{};
  const fault::FaultAction read_fault =
      fault::Probe(fault_, fault::FaultOp::kRead);
  if (read_fault.kind == fault::FaultAction::Kind::kReset ||
      read_fault.kind == fault::FaultAction::Kind::kBlackout) {
    Close();
    return io::Status::Error("injected fault: connection reset during read");
  }
  if (read_fault.kind == fault::FaultAction::Kind::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(read_fault.stall_ms));
  }
  // 1. Accumulate until the header terminator.
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (has_deadline || cancel != nullptr) {
      if (const io::Status waited = WaitReadable(deadline, has_deadline, cancel);
          !waited.ok) {
        return waited;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const io::Status status = io::Status::Error(
        n == 0 ? "connection closed mid-response"
               : std::string("recv: ") + std::strerror(errno));
    Close();
    return status;
  }

  // 2. Status line + headers.
  const std::string head = buffer_.substr(0, header_end);
  buffer_.erase(0, header_end + 4);
  size_t line_start = 0;
  size_t line_end = head.find("\r\n");
  const std::string status_line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  if (status_line.compare(0, 5, "HTTP/") != 0) {
    Close();
    return io::Status::Error("malformed status line '" + status_line + "'");
  }
  const size_t space = status_line.find(' ');
  if (space == std::string::npos || space + 4 > status_line.size()) {
    Close();
    return io::Status::Error("malformed status line '" + status_line + "'");
  }
  out->status = std::atoi(status_line.c_str() + space + 1);
  while (line_end != std::string::npos) {
    line_start = line_end + 2;
    line_end = head.find("\r\n", line_start);
    const std::string line = head.substr(
        line_start, (line_end == std::string::npos ? head.size() : line_end) -
                        line_start);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    size_t value_start = colon + 1;
    while (value_start < line.size() &&
           (line[value_start] == ' ' || line[value_start] == '\t')) {
      ++value_start;
    }
    out->headers.emplace_back(line.substr(0, colon), line.substr(value_start));
  }

  // 3. Fixed-length body.
  size_t content_length = 0;
  if (const std::string* length = out->FindHeader("Content-Length")) {
    content_length = static_cast<size_t>(std::strtoull(length->c_str(), nullptr, 10));
  }
  while (buffer_.size() < content_length) {
    if (has_deadline || cancel != nullptr) {
      if (const io::Status waited = WaitReadable(deadline, has_deadline, cancel);
          !waited.ok) {
        return waited;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const io::Status status = io::Status::Error(
        n == 0 ? "connection closed mid-body"
               : std::string("recv: ") + std::strerror(errno));
    Close();
    return status;
  }
  out->body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);

  out->keep_alive = true;
  if (const std::string* connection = out->FindHeader("Connection")) {
    if (AsciiEqualsIgnoreCase(*connection, "close")) out->keep_alive = false;
  }
  if (!out->keep_alive) Close();
  return io::Status::Ok();
}

}  // namespace dssddi::net
