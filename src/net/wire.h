#ifndef DSSDDI_NET_WIRE_H_
#define DSSDDI_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dssddi::net::wire {

/// Compact binary framing for the suggest API, negotiated per request on
/// the same port/route as JSON: a POST /v1/suggest whose Content-Type is
/// `kContentType` carries one request frame and is answered with one
/// response (or error) frame. Motivation: the JSON codec is the wire-cost
/// ceiling of the serving stack — every feature float is printed to and
/// parsed from decimal text. A frame moves the same floats as raw
/// binary32 bytes, so scores are bit-exact by construction (no decimal
/// round-trip to reason about) and encode/decode is a memcpy.
///
/// The same frames also run raw on the socket (no HTTP envelope) as the
/// pipelined protocol: a connection whose first bytes are the frame
/// magic speaks frames both ways, many requests may be in flight at
/// once, and responses complete out of order correlated by
/// `request_id`. See `ExtractFrame` for the stream parser.
///
/// Frame layout (all integers little-endian, floats as binary32 bit
/// patterns, no padding):
///
///   magic      u16 = 0x4453 ("DS")
///   version    u8  = 2
///   type       u8    (FrameType)
///   length     u32   payload byte count (the length prefix; the frame
///                    is exactly 16 + length bytes; whole-buffer
///                    decoders reject trailing bytes)
///   request_id u64   per-connection multiplexing correlator, echoed
///                    verbatim in the response or error frame answering
///                    this request. 0 is legal for serial traffic (the
///                    HTTP-enveloped route); pipelined clients must use
///                    ids unique among their in-flight requests —
///                    a duplicate in-flight id is rejected with an
///                    error frame. Transport-layer only: it never
///                    reaches the suggestion service.
///   payload
///
/// kSuggestRequest payload:
///   patient_id  i64     cache identity; negative bypasses the cache
///   deadline_ms u32     relative latency budget, 0 = none (the edge
///                       converts it to an absolute RequestContext
///                       deadline on arrival — the binary twin of the
///                       JSON route's X-Deadline-Ms header)
///   k           u16
///   flags       u8      bit0 = explain, bit1 = batch priority class.
///                       The response frame never carries an
///                       explanation, so bit0 exists only to share the
///                       explained-suggestion cache with JSON traffic
///                       (the server computes + caches the full
///                       explanation, answers with ids+scores). Leave
///                       it clear — the default — for pure scoring;
///                       setting it pays the subgraph-explanation cost
///                       on every cache miss for output this codec
///                       cannot return.
///   reserved    u8      must be 0
///   trace_id    u64     0 = server assigns one
///   num_features u32
///   features    f32 * num_features
///
/// kSuggestResponse payload:
///   model_version u64
///   trace_id      u64   echoed (or assigned) by the server
///   count         u32
///   drugs         i32 * count
///   scores        f32 * count   bit-identical to the scoring kernels'
///                               output — the binary route's contract
///
/// kError payload:
///   status   u32   the HTTP status the error also carries
///   trace_id u64   the failed request's trace id (0 when the request
///                  never parsed far enough to have one), so a client
///                  can correlate a binary rejection with /tracez
///   msg_len  u32
///   message  msg_len bytes (UTF-8)
///
/// Decoders are strict: wrong magic/version/type, truncated or oversized
/// buffers, length-prefix mismatches and inconsistent internal counts
/// all fail with a diagnostic instead of reading garbage.
inline constexpr char kContentType[] = "application/x-dssddi";
inline constexpr uint16_t kMagic = 0x4453;
inline constexpr uint8_t kVersion = 2;
inline constexpr size_t kHeaderBytes = 16;
/// Byte offset of the request_id field within the header — the one
/// field the transport may rewrite in place (`PatchRequestId`) without
/// re-encoding the frame.
inline constexpr size_t kRequestIdOffset = 8;

enum class FrameType : uint8_t {
  kSuggestRequest = 1,
  kSuggestResponse = 2,
  kError = 3,
};

struct SuggestRequestFrame {
  int64_t patient_id = -1;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  int k = 3;
  /// Compute + cache the full explained suggestion server-side (shared
  /// with the JSON route's cache); the explanation itself is never
  /// serialized into the response frame. Default off: pure scoring.
  bool explain = false;
  bool batch_priority = false;
  uint64_t trace_id = 0;
  std::vector<float> features;
  /// Header field, not payload: the multiplexing correlator the server
  /// echoes into the answering frame.
  uint64_t request_id = 0;
};

struct SuggestResponseFrame {
  uint64_t model_version = 0;
  uint64_t trace_id = 0;
  std::vector<int32_t> drugs;
  std::vector<float> scores;  // bit-exact binary32
  uint64_t request_id = 0;    // header field: echoed request correlator
};

struct ErrorFrame {
  uint32_t status = 500;
  std::string message;
  uint64_t trace_id = 0;
  uint64_t request_id = 0;  // header field: echoed request correlator
};

std::string EncodeSuggestRequest(const SuggestRequestFrame& frame);
std::string EncodeSuggestResponse(const SuggestResponseFrame& frame);
std::string EncodeError(const ErrorFrame& frame);

/// Each decoder consumes exactly one complete frame of its type. On any
/// violation it returns false with a diagnostic in `*error` and leaves
/// `*out` unspecified.
bool DecodeSuggestRequest(const std::string& buffer, SuggestRequestFrame* out,
                          std::string* error);
bool DecodeSuggestResponse(const std::string& buffer, SuggestResponseFrame* out,
                           std::string* error);
bool DecodeError(const std::string& buffer, ErrorFrame* out,
                 std::string* error);

/// Validates the 16-byte header only (magic, version, known type, length
/// prefix consistent with buffer size) and reports the frame type — how
/// a client tells a response frame from an error frame before decoding.
bool PeekFrameType(const std::string& buffer, FrameType* out,
                   std::string* error);

// -------------------------------------------------------------------
// Pipelined stream parsing
// -------------------------------------------------------------------

/// One complete frame located inside a byte stream.
struct FrameView {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  /// Total frame size (header + payload): how many bytes to consume
  /// from the stream / slice out as a standalone frame buffer.
  size_t frame_bytes = 0;
};

enum class ExtractResult {
  kNeedMore,  // prefix of a valid frame; read more bytes
  kFrame,     // *out describes one complete frame at the buffer start
  kError,     // stream is not frame traffic (bad magic/version/type or
              // declared payload over the cap); unrecoverable
};

/// Incremental frame extractor for pipelined streams, where — unlike
/// the strict whole-buffer decoders above — trailing bytes are the next
/// frame, not an error. Validates magic/version/type as soon as the
/// first 4 bytes arrive (garbage fails fast, long before a forged
/// length prefix could stall the connection) and bounds the declared
/// payload by `max_payload_bytes` so a hostile length can never balloon
/// the receive buffer.
ExtractResult ExtractFrame(const char* data, size_t size,
                           size_t max_payload_bytes, FrameView* out,
                           std::string* error);

/// True when the first bytes of a fresh connection are a frame-magic
/// prefix — how the server tells raw pipelined frame traffic from HTTP
/// on the same port. Needs at most 2 bytes (no HTTP method starts with
/// "SD"); with fewer it answers true only while the prefix is still
/// consistent with the magic.
bool LooksLikeFramePrefix(const char* data, size_t size);

/// Reads the request_id header field of an encoded frame (complete or
/// not — only the first 16 bytes are touched). False when the buffer is
/// too short to contain the field.
bool PeekRequestId(const std::string& buffer, uint64_t* out);

/// Rewrites the request_id header field of an encoded frame in place —
/// how the transport stamps hop-local ids onto caller frames (and
/// restores them) without re-encoding the payload. False when the
/// buffer is too short.
bool PatchRequestId(std::string* frame, uint64_t request_id);

}  // namespace dssddi::net::wire

#endif  // DSSDDI_NET_WIRE_H_
