#ifndef DSSDDI_NET_WIRE_H_
#define DSSDDI_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dssddi::net::wire {

/// Compact binary framing for the suggest API, negotiated per request on
/// the same port/route as JSON: a POST /v1/suggest whose Content-Type is
/// `kContentType` carries one request frame and is answered with one
/// response (or error) frame. Motivation: the JSON codec is the wire-cost
/// ceiling of the serving stack — every feature float is printed to and
/// parsed from decimal text. A frame moves the same floats as raw
/// binary32 bytes, so scores are bit-exact by construction (no decimal
/// round-trip to reason about) and encode/decode is a memcpy.
///
/// Frame layout (all integers little-endian, floats as binary32 bit
/// patterns, no padding):
///
///   magic   u16 = 0x4453 ("DS")
///   version u8  = 1
///   type    u8    (FrameType)
///   length  u32   payload byte count (the length prefix; the frame is
///                 exactly 8 + length bytes, trailing bytes are rejected)
///   payload
///
/// kSuggestRequest payload:
///   patient_id  i64     cache identity; negative bypasses the cache
///   deadline_ms u32     relative latency budget, 0 = none (the edge
///                       converts it to an absolute RequestContext
///                       deadline on arrival — the binary twin of the
///                       JSON route's X-Deadline-Ms header)
///   k           u16
///   flags       u8      bit0 = explain, bit1 = batch priority class.
///                       The response frame never carries an
///                       explanation, so bit0 exists only to share the
///                       explained-suggestion cache with JSON traffic
///                       (the server computes + caches the full
///                       explanation, answers with ids+scores). Leave
///                       it clear — the default — for pure scoring;
///                       setting it pays the subgraph-explanation cost
///                       on every cache miss for output this codec
///                       cannot return.
///   reserved    u8      must be 0
///   trace_id    u64     0 = server assigns one
///   num_features u32
///   features    f32 * num_features
///
/// kSuggestResponse payload:
///   model_version u64
///   trace_id      u64   echoed (or assigned) by the server
///   count         u32
///   drugs         i32 * count
///   scores        f32 * count   bit-identical to the scoring kernels'
///                               output — the binary route's contract
///
/// kError payload:
///   status   u32   the HTTP status the error also carries
///   trace_id u64   the failed request's trace id (0 when the request
///                  never parsed far enough to have one), so a client
///                  can correlate a binary rejection with /tracez
///   msg_len  u32
///   message  msg_len bytes (UTF-8)
///
/// Decoders are strict: wrong magic/version/type, truncated or oversized
/// buffers, length-prefix mismatches and inconsistent internal counts
/// all fail with a diagnostic instead of reading garbage.
inline constexpr char kContentType[] = "application/x-dssddi";
inline constexpr uint16_t kMagic = 0x4453;
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 8;

enum class FrameType : uint8_t {
  kSuggestRequest = 1,
  kSuggestResponse = 2,
  kError = 3,
};

struct SuggestRequestFrame {
  int64_t patient_id = -1;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  int k = 3;
  /// Compute + cache the full explained suggestion server-side (shared
  /// with the JSON route's cache); the explanation itself is never
  /// serialized into the response frame. Default off: pure scoring.
  bool explain = false;
  bool batch_priority = false;
  uint64_t trace_id = 0;
  std::vector<float> features;
};

struct SuggestResponseFrame {
  uint64_t model_version = 0;
  uint64_t trace_id = 0;
  std::vector<int32_t> drugs;
  std::vector<float> scores;  // bit-exact binary32
};

struct ErrorFrame {
  uint32_t status = 500;
  std::string message;
  uint64_t trace_id = 0;
};

std::string EncodeSuggestRequest(const SuggestRequestFrame& frame);
std::string EncodeSuggestResponse(const SuggestResponseFrame& frame);
std::string EncodeError(const ErrorFrame& frame);

/// Each decoder consumes exactly one complete frame of its type. On any
/// violation it returns false with a diagnostic in `*error` and leaves
/// `*out` unspecified.
bool DecodeSuggestRequest(const std::string& buffer, SuggestRequestFrame* out,
                          std::string* error);
bool DecodeSuggestResponse(const std::string& buffer, SuggestResponseFrame* out,
                           std::string* error);
bool DecodeError(const std::string& buffer, ErrorFrame* out,
                 std::string* error);

/// Validates the 8-byte header only (magic, version, known type, length
/// prefix consistent with buffer size) and reports the frame type — how
/// a client tells a response frame from an error frame before decoding.
bool PeekFrameType(const std::string& buffer, FrameType* out,
                   std::string* error);

}  // namespace dssddi::net::wire

#endif  // DSSDDI_NET_WIRE_H_
