#include "net/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/json.h"
#include "net/wire.h"
#include "util/logging.h"

namespace dssddi::net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - Clock::now())
                              .count());
}

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A response the router should hand back without further tries: any
/// parsed status except 5xx (replica fault) and 429 (that one replica
/// shed; another may have capacity).
bool IsFinalStatus(int status) { return status < 500 && status != 429; }

/// The response's model version, for generation-keying the stale cache.
/// Binary frames carry it at a fixed offset; JSON bodies advertise
/// "model_version": N. 0 = unknown.
uint64_t ParseModelVersion(const std::string& body,
                           const std::string& content_type) {
  if (content_type == wire::kContentType) {
    wire::SuggestResponseFrame frame;
    std::string error;
    if (wire::DecodeSuggestResponse(body, &frame, &error)) {
      return frame.model_version;
    }
    return 0;
  }
  const size_t pos = body.find("\"model_version\":");
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + 16, nullptr, 10);
}

}  // namespace

// ---------------------------------------------------------------------
// Race: shared state between an Exchange call and its in-flight tries
// ---------------------------------------------------------------------

struct Router::Race {
  struct Outcome {
    int slot = 0;
    int replica = -1;
    io::Status status;
    ClientResponse response;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Outcome> outcomes;  // appended as tries finish
  int launched = 0;               // guarded by mutex
  /// Per-slot cancellation flags read by HttpClient's sliced polls.
  /// The Race outlives every try (shared_ptr captured by the task), so
  /// a loser finishing after Exchange returned writes into live memory.
  std::array<std::atomic<bool>, 2> cancel{};
};

// ---------------------------------------------------------------------
// StaleCache: LRU of fresh bodies, generation-keyed by model version
// ---------------------------------------------------------------------

class Router::StaleCache {
 public:
  explicit StaleCache(size_t capacity) : capacity_(capacity) {}

  void Put(uint64_t key, std::string body, std::string content_type,
           uint64_t model_version) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    // A newer model generation invalidates every older entry: stale
    // answers may lag in time, never across an observed reload. Entries
    // below the current generation (including unparseable versions once
    // one is known) could never be served — don't let them occupy
    // capacity and evict servable ones.
    if (model_version > generation_) generation_ = model_version;
    if (model_version < generation_) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.erase(it->second.lru);
      map_.erase(it);
    }
    while (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(body), std::move(content_type),
                            model_version, lru_.begin()});
  }

  bool Get(uint64_t key, std::string* body, std::string* content_type) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    if (it->second.model_version != generation_) {
      // Older generation: drop rather than serve a retired model.
      lru_.erase(it->second.lru);
      map_.erase(it);
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    *body = it->second.body;
    *content_type = it->second.content_type;
    return true;
  }

 private:
  struct Entry {
    std::string body;
    std::string content_type;
    uint64_t model_version;
    std::list<uint64_t>::iterator lru;
  };
  std::mutex mutex_;
  size_t capacity_;
  uint64_t generation_ = 0;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, Entry> map_;
};

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

Router::Router(const std::vector<ReplicaClientOptions>& replicas,
               const RouterOptions& options,
               std::shared_ptr<obs::Registry> registry,
               std::shared_ptr<obs::FlightRecorder> recorder)
    : options_(options),
      registry_(std::move(registry)),
      recorder_(std::move(recorder)),
      retry_tokens_(options.retry_budget_burst) {
  DSSDDI_CHECK(!replicas.empty()) << "Router needs at least one replica";
  DSSDDI_CHECK(replicas.size() <= 64) << "Router caps out at 64 replicas";
  DSSDDI_CHECK(registry_ != nullptr) << "Router needs a registry";
  if (options_.max_tries < 1) options_.max_tries = 1;
  if (options_.per_try_timeout_ms < 1) options_.per_try_timeout_ms = 1;
  if (options_.worker_threads < 2) options_.worker_threads = 2;

  pool_ = std::make_unique<serve::ThreadPool>(options_.worker_threads);
  stale_ = std::make_unique<StaleCache>(options_.stale_capacity);

  requests_ok_ = registry_->GetCounter("dssddi_router_requests_total",
                                       "Router exchanges by outcome",
                                       {{"outcome", "ok"}});
  requests_stale_ = registry_->GetCounter("dssddi_router_requests_total",
                                          "Router exchanges by outcome",
                                          {{"outcome", "stale"}});
  requests_error_ = registry_->GetCounter("dssddi_router_requests_total",
                                          "Router exchanges by outcome",
                                          {{"outcome", "error"}});
  retries_total_ = registry_->GetCounter(
      "dssddi_router_retries_total",
      "Retries launched after a failed try (budget-bounded)");
  hedges_won_ = registry_->GetCounter(
      "dssddi_router_hedges_total",
      "Hedged duplicate tries by result", {{"result", "won"}});
  hedges_lost_ = registry_->GetCounter(
      "dssddi_router_hedges_total",
      "Hedged duplicate tries by result", {{"result", "lost"}});
  try_latency_ = registry_->GetHistogram(
      "dssddi_request_latency_ms",
      "Handler-observed latency (dispatch to response send) in "
      "milliseconds, by route",
      {{"route", "replica_try"}});

  for (const ReplicaClientOptions& replica_options : replicas) {
    replicas_.push_back(std::make_unique<ReplicaClient>(replica_options));
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const std::string& name = replicas_[i]->name();
    obs::Gauge* state_gauge = registry_->GetGauge(
        "dssddi_replica_state",
        "Per-replica circuit breaker state (0=closed, 1=half-open, 2=open)",
        {{"replica", name}});
    state_gauge->Set(0.0);
    replica_state_.push_back(state_gauge);
    obs::Counter* to_open = registry_->GetCounter(
        "dssddi_replica_transitions_total",
        "Circuit breaker transitions, by replica and target state",
        {{"replica", name}, {"to", "open"}});
    obs::Counter* to_half_open = registry_->GetCounter(
        "dssddi_replica_transitions_total",
        "Circuit breaker transitions, by replica and target state",
        {{"replica", name}, {"to", "half_open"}});
    obs::Counter* to_closed = registry_->GetCounter(
        "dssddi_replica_transitions_total",
        "Circuit breaker transitions, by replica and target state",
        {{"replica", name}, {"to", "closed"}});
    obs::FlightRecorder* recorder = recorder_.get();
    replicas_[i]->breaker().set_transition_hook(
        [i, state_gauge, to_open, to_half_open, to_closed, recorder](
            BreakerState /*from*/, BreakerState to) {
          state_gauge->Set(static_cast<double>(static_cast<int>(to)));
          switch (to) {
            case BreakerState::kOpen: to_open->Increment(); break;
            case BreakerState::kHalfOpen: to_half_open->Increment(); break;
            case BreakerState::kClosed: to_closed->Increment(); break;
          }
          if (recorder != nullptr) {
            // trace_id carries the replica index (route/detail must be
            // literals — the recorder's zero-alloc contract).
            const char* detail =
                to == BreakerState::kOpen        ? "circuit breaker opened"
                : to == BreakerState::kHalfOpen  ? "circuit breaker half-open"
                                                 : "circuit breaker closed";
            recorder->Record(to == BreakerState::kOpen
                                 ? obs::LogSeverity::kWarning
                                 : obs::LogSeverity::kInfo,
                             obs::LogReason::kReplicaState, "router", 0,
                             /*trace_id=*/i, 0.0, nullptr, detail);
          }
        });
  }
}

Router::~Router() {
  // Unblock any cancelled stragglers, then drain the try pool.
  pool_->Shutdown();
}

int Router::AvailableReplicas() const {
  int available = 0;
  for (const auto& replica : replicas_) {
    if (replica->breaker().state() != BreakerState::kOpen) ++available;
  }
  return available;
}

int Router::BackoffMs(int attempt, int base_ms, int max_ms, uint64_t seed,
                      uint64_t nonce) {
  if (attempt < 1) attempt = 1;
  if (base_ms < 0) base_ms = 0;
  double delay = static_cast<double>(base_ms) *
                 std::pow(2.0, static_cast<double>(attempt - 1));
  if (delay > static_cast<double>(max_ms)) delay = static_cast<double>(max_ms);
  // Seeded jitter in [0.5, 1.0): deterministic per (seed, nonce,
  // attempt) so a chaos replay sleeps the same schedule.
  const uint64_t h = Mix64(seed ^ Mix64(nonce * 0x9e3779b97f4a7c15ull +
                                        static_cast<uint64_t>(attempt)));
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return static_cast<int>(delay * (0.5 + 0.5 * unit));
}

int Router::PickReplica(uint64_t exclude, uint64_t* admission) {
  const size_t n = replicas_.size();
  const uint64_t begin = rr_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    const size_t index = (begin + i) % n;
    if (exclude & (1ull << index)) continue;
    const uint64_t token = replicas_[index]->breaker().Admit();
    if (token != 0) {
      *admission = token;
      return static_cast<int>(index);
    }
  }
  *admission = 0;
  return -1;
}

int Router::HedgeDelayMs() {
  const double p90 = hedge_delay_cache_.load(std::memory_order_relaxed);
  double delay = p90 > 0.0 ? p90 : options_.hedge_min_delay_ms;
  delay = std::max(delay, static_cast<double>(options_.hedge_min_delay_ms));
  delay = std::min(delay, static_cast<double>(options_.hedge_max_delay_ms));
  return static_cast<int>(std::ceil(delay));
}

void Router::RecordTryLatency(double ms) {
  try_latency_->Record(ms);
  const uint32_t every = std::max<uint32_t>(options_.hedge_refresh_every, 1);
  if (try_records_.fetch_add(1, std::memory_order_relaxed) % every ==
      every - 1) {
    hedge_delay_cache_.store(try_latency_->Snapshot().Quantile(0.90),
                             std::memory_order_relaxed);
  }
}

void Router::LaunchTry(const std::shared_ptr<Race>& race, int slot,
                       int replica, uint64_t admission,
                       const std::string& target, const std::string& body,
                       const std::string& content_type, int budget_ms) {
  const bool submitted = pool_->Submit([this, race, slot, replica, admission,
                                        target, body, content_type,
                                        budget_ms] {
    ClientRequestOptions options;
    options.content_type = content_type;
    options.deadline_ms = budget_ms;
    options.cancel = &race->cancel[static_cast<size_t>(slot)];
    Race::Outcome outcome;
    outcome.slot = slot;
    outcome.replica = replica;
    const Clock::time_point start = Clock::now();
    outcome.status =
        replicas_[static_cast<size_t>(replica)]->Exchange(
            "POST", target, body, options, &outcome.response, admission);
    if (outcome.status.ok) RecordTryLatency(ElapsedMs(start));
    std::lock_guard<std::mutex> lock(race->mutex);
    race->outcomes.push_back(std::move(outcome));
    race->cv.notify_all();
  });
  if (!submitted) {
    // The try never ran, so Exchange will never settle the admission —
    // release it here or a half-open probe slot leaks forever.
    replicas_[static_cast<size_t>(replica)]->breaker().Abandon(admission);
    Race::Outcome outcome;
    outcome.slot = slot;
    outcome.replica = replica;
    outcome.status = io::Status::Error("router shutting down");
    std::lock_guard<std::mutex> lock(race->mutex);
    race->outcomes.push_back(std::move(outcome));
    race->cv.notify_all();
  }
}

io::Status Router::Exchange(const std::string& target,
                            const std::string& body,
                            const std::string& content_type, int deadline_ms,
                            RouterResult* out) {
  *out = RouterResult{};
  const Clock::time_point start = Clock::now();
  const bool has_deadline = deadline_ms > 0;
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(has_deadline ? deadline_ms : 0);
  const uint64_t nonce =
      request_counter_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t stale_key =
      Mix64(io::Fnv1a64(target) ^ (io::Fnv1a64(body) * 0x9e3779b97f4a7c15ull));
  {
    std::lock_guard<std::mutex> lock(budget_mutex_);
    retry_tokens_ = std::min(options_.retry_budget_burst,
                             retry_tokens_ + options_.retry_budget_ratio);
  }

  // Fallback kept from the last replica-authored non-final answer (5xx
  // or 429): if every try fails, the client gets that over a synthetic
  // 503 — it carries the replica's own diagnostics.
  bool have_replica_answer = false;
  ClientResponse replica_answer;
  bool deadline_blown = false;
  bool all_open = false;

  while (out->tries < options_.max_tries) {
    int remaining_ms = options_.per_try_timeout_ms;
    if (has_deadline) {
      remaining_ms = RemainingMs(deadline);
      if (remaining_ms <= 0) {
        deadline_blown = true;
        break;
      }
    }
    uint64_t primary_admission = 0;
    const int primary = PickReplica(0, &primary_admission);
    if (primary < 0) {
      all_open = true;
      break;
    }
    const int budget_ms = std::min(options_.per_try_timeout_ms, remaining_ms);

    auto race = std::make_shared<Race>();
    {
      std::lock_guard<std::mutex> lock(race->mutex);
      race->launched = 1;
    }
    LaunchTry(race, /*slot=*/0, primary, primary_admission, target, body,
              content_type, budget_ms);
    ++out->tries;

    const bool can_hedge =
        options_.hedging && replicas_.size() > 1 &&
        !(options_.hedge_inhibit && options_.hedge_inhibit());
    int hedge_at_ms = can_hedge ? HedgeDelayMs() : -1;
    if (hedge_at_ms >= budget_ms) hedge_at_ms = -1;  // would never fire

    const Clock::time_point try_start = Clock::now();
    bool hedge_launched = false;
    bool have_winner = false;
    Race::Outcome winner;

    std::unique_lock<std::mutex> lock(race->mutex);
    size_t seen = 0;
    for (;;) {
      for (; seen < race->outcomes.size(); ++seen) {
        const Race::Outcome& outcome = race->outcomes[seen];
        if (outcome.status.ok && IsFinalStatus(outcome.response.status)) {
          winner = outcome;
          have_winner = true;
          break;
        }
        if (outcome.status.ok) {
          have_replica_answer = true;
          replica_answer = outcome.response;
        }
      }
      if (have_winner || seen >= static_cast<size_t>(race->launched)) break;
      if (has_deadline && RemainingMs(deadline) <= 0) {
        deadline_blown = true;
        break;
      }
      if (!hedge_launched && hedge_at_ms >= 0 &&
          ElapsedMs(try_start) >= static_cast<double>(hedge_at_ms)) {
        lock.unlock();
        // Budget first, admission second: an admitted half-open probe
        // that is never launched would hold the probe slot forever.
        int hedge_budget_ms = options_.per_try_timeout_ms;
        if (has_deadline) {
          hedge_budget_ms = std::min(hedge_budget_ms, RemainingMs(deadline));
        }
        if (hedge_budget_ms > 0) {
          uint64_t hedge_admission = 0;
          const int secondary =
              PickReplica(1ull << primary, &hedge_admission);
          if (secondary >= 0) {
            {
              std::lock_guard<std::mutex> relock(race->mutex);
              race->launched = 2;
            }
            LaunchTry(race, /*slot=*/1, secondary, hedge_admission, target,
                      body, content_type, hedge_budget_ms);
            ++out->tries;
            out->hedged = true;
            hedge_launched = true;
          }
        }
        lock.lock();
        hedge_at_ms = -1;  // one hedge per attempt, fired or not
        continue;
      }
      // Wake on completion; the 5 ms cap keeps the hedge trigger and
      // deadline checks responsive without busy-waiting.
      race->cv.wait_for(lock, std::chrono::milliseconds(5));
    }

    // Whatever the verdict, stop both tries; a loser aborts within one
    // poll slice and returns its pooled connection.
    race->cancel[0].store(true, std::memory_order_relaxed);
    race->cancel[1].store(true, std::memory_order_relaxed);
    lock.unlock();

    if (have_winner) {
      if (hedge_launched) {
        (winner.slot == 1 ? hedges_won_ : hedges_lost_)->Increment();
      }
      out->status = winner.response.status;
      out->body = std::move(winner.response.body);
      const std::string* type = winner.response.FindHeader("Content-Type");
      out->content_type = type != nullptr ? *type : content_type;
      out->replica = winner.replica;
      if (out->status == 200) {
        stale_->Put(stale_key, out->body, out->content_type,
                    ParseModelVersion(out->body, out->content_type));
      }
      requests_ok_->Increment();
      return io::Status::Ok();
    }
    if (deadline_blown) break;

    // Attempt failed. Retry only within the budget.
    if (out->tries >= options_.max_tries) break;
    {
      std::lock_guard<std::mutex> budget_lock(budget_mutex_);
      if (retry_tokens_ < 1.0) break;
      retry_tokens_ -= 1.0;
    }
    retries_total_->Increment();
    int backoff_ms =
        BackoffMs(out->tries, options_.backoff_base_ms, options_.backoff_max_ms,
                  options_.backoff_seed, nonce);
    if (has_deadline) {
      backoff_ms = std::min(backoff_ms, std::max(0, RemainingMs(deadline) - 1));
    }
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }

  // State-only availability check for diagnostics — PickReplica would
  // consume a half-open probe slot that no try settles.
  if (!all_open && AvailableReplicas() == 0) all_open = true;

  // No fresh answer. Degrade: stale cache first, then the best
  // replica-authored error, then a synthesized status.
  if (stale_->Get(stale_key, &out->body, &out->content_type)) {
    out->stale = true;
    out->status = 200;
    out->replica = -1;
    requests_stale_->Increment();
    if (recorder_ != nullptr) {
      recorder_->Record(obs::LogSeverity::kWarning, obs::LogReason::kStaleServe,
                        "router", 200, 0, ElapsedMs(start), nullptr,
                        all_open ? "all breakers open; served stale"
                                 : "tries exhausted; served stale");
    }
    return io::Status::Ok();
  }
  if (have_replica_answer) {
    out->status = replica_answer.status;
    out->body = std::move(replica_answer.body);
    const std::string* type = replica_answer.FindHeader("Content-Type");
    out->content_type = type != nullptr ? *type : content_type;
    requests_error_->Increment();
    return io::Status::Ok();
  }
  out->status = deadline_blown ? 504 : 503;
  const char* message = deadline_blown
                            ? "router deadline exceeded"
                            : (all_open ? "all replicas unavailable"
                                        : "no replica answered");
  if (content_type == wire::kContentType) {
    wire::ErrorFrame frame;
    frame.status = static_cast<uint32_t>(out->status);
    frame.message = message;
    out->body = wire::EncodeError(frame);
    out->content_type = wire::kContentType;
  } else {
    out->body = std::string("{\"error\":\"") + message + "\"}";
    out->content_type = "application/json";
  }
  requests_error_->Increment();
  return io::Status::Ok();
}

// ---------------------------------------------------------------------
// RouterFrontend
// ---------------------------------------------------------------------

namespace {

std::string FrontendQueryParam(const std::string& query, const char* key) {
  size_t pos = 0;
  const std::string want(key);
  while (pos < query.size()) {
    size_t next = query.find('&', pos);
    if (next == std::string::npos) next = query.size();
    const std::string pair = query.substr(pos, next - pos);
    pos = next + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.compare(0, eq, want) == 0) return pair.substr(eq + 1);
  }
  return "";
}

}  // namespace

RouterFrontend::RouterFrontend(Router* router,
                               const RouterFrontendOptions& options)
    : router_(router), options_(options) {
  DSSDDI_CHECK(router_ != nullptr) << "RouterFrontend needs a router";
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  workers_ = std::make_unique<serve::ThreadPool>(options_.worker_threads);
  obs::Registry* registry = router_->registry();
  suggest_requests_ = registry->GetCounter("dssddi_http_requests_total",
                                           "HTTP requests handled, by route",
                                           {{"route", "/v1/suggest"}});
  suggest_2xx_ = registry->GetCounter(
      "dssddi_http_responses_total",
      "HTTP responses by route and status class",
      {{"route", "/v1/suggest"}, {"class", "2xx"}});
  suggest_4xx_ = registry->GetCounter(
      "dssddi_http_responses_total",
      "HTTP responses by route and status class",
      {{"route", "/v1/suggest"}, {"class", "4xx"}});
  suggest_5xx_ = registry->GetCounter(
      "dssddi_http_responses_total",
      "HTTP responses by route and status class",
      {{"route", "/v1/suggest"}, {"class", "5xx"}});
  suggest_stale_ = registry->GetCounter(
      "dssddi_router_stale_responses_total",
      "Requests answered from the stale cache (all replicas open)");
  suggest_latency_ = registry->GetHistogram(
      "dssddi_request_latency_ms",
      "Handler-observed latency (dispatch to response send) in "
      "milliseconds, by route",
      {{"route", "/v1/suggest"}});
}

RouterFrontend::~RouterFrontend() { workers_->Shutdown(); }

void RouterFrontend::set_replica_admin(ReplicaAdminHook hook) {
  replica_admin_ = std::move(hook);
}

void RouterFrontend::set_fault_admin(FaultInstallHook install,
                                     FaultDescribeHook describe) {
  fault_install_ = std::move(install);
  fault_describe_ = std::move(describe);
}

void RouterFrontend::Handle(const HttpRequest& request,
                            ResponseWriter writer) {
  std::string path = request.target;
  std::string query;
  if (const size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }

  if (path == "/v1/suggest") {
    HandleSuggest(request, writer);
    return;
  }
  HttpResponse response;
  if (path == "/healthz") {
    JsonWriter w;
    w.BeginObject().Key("status").String("ok").Key("replicas")
        .Int(static_cast<int64_t>(router_->num_replicas())).EndObject();
    response.body = w.str();
  } else if (path == "/readyz") {
    response.status = HandleReadyz(writer);
    return;
  } else if (path == "/statsz") {
    JsonWriter w;
    w.BeginObject().Key("replicas").BeginArray();
    for (size_t i = 0; i < router_->num_replicas(); ++i) {
      ReplicaClient& replica = router_->replica(i);
      w.BeginObject()
          .Key("name").String(replica.name())
          .Key("state").String(BreakerStateName(replica.breaker().state()))
          .EndObject();
    }
    w.EndArray()
        .Key("available").Int(router_->AvailableReplicas())
        .Key("draining").Bool(http_ != nullptr && http_->draining())
        .EndObject();
    response.body = w.str();
  } else if (path == "/metricsz") {
    const bool openmetrics =
        FrontendQueryParam(query, "format") == "openmetrics";
    response.content_type =
        openmetrics ? "application/openmetrics-text; version=1.0.0; "
                      "charset=utf-8"
                    : "text/plain; version=0.0.4; charset=utf-8";
    response.body = openmetrics
                        ? router_->registry()->RenderOpenMetricsText()
                        : router_->registry()->RenderPrometheusText();
  } else if (path == "/sloz") {
    if (slo_ == nullptr) {
      response.status = 404;
      response.body = "{\"error\":\"no slo engine attached\"}";
    } else {
      response.body = slo_->RenderSlozJson();
    }
  } else if (path == "/logz") {
    if (router_->recorder() == nullptr) {
      response.status = 404;
      response.body = "{\"error\":\"no flight recorder\"}";
    } else {
      response.content_type = "application/x-ndjson";
      response.body = router_->recorder()->RenderLogzJson();
    }
  } else if (path == "/admin/fault") {
    response.status = HandleAdminFault(request, writer);
    return;
  } else if (path == "/admin/replica") {
    response.status = HandleAdminReplica(request, writer);
    return;
  } else {
    response.status = 404;
    response.body = "{\"error\":\"no such route\"}";
  }
  writer.Send(std::move(response));
}

int RouterFrontend::HandleReadyz(ResponseWriter writer) {
  const bool draining = http_ != nullptr && http_->draining();
  const int available = router_->AvailableReplicas();
  const bool ready = !draining && available > 0;
  JsonWriter w;
  w.BeginObject()
      .Key("ready").Bool(ready)
      .Key("draining").Bool(draining)
      .Key("available").Int(available)
      .Key("replicas").BeginArray();
  for (size_t i = 0; i < router_->num_replicas(); ++i) {
    ReplicaClient& replica = router_->replica(i);
    w.BeginObject()
        .Key("name").String(replica.name())
        .Key("state").String(BreakerStateName(replica.breaker().state()))
        .EndObject();
  }
  w.EndArray().EndObject();
  HttpResponse response;
  response.status = ready ? 200 : 503;
  response.body = w.str();
  writer.Send(std::move(response));
  return response.status;
}

int RouterFrontend::HandleAdminFault(const HttpRequest& request,
                                     ResponseWriter writer) {
  HttpResponse response;
  if (request.method == "GET") {
    if (!fault_describe_) {
      response.status = 404;
      response.body = "{\"error\":\"no fault injectors attached\"}";
    } else {
      response.body = fault_describe_();
    }
  } else if (request.method == "POST") {
    JsonValue body;
    std::string error;
    const JsonValue* spec = nullptr;
    if (!fault_install_) {
      response.status = 404;
      response.body = "{\"error\":\"no fault injectors attached\"}";
    } else if (!ParseJson(request.body, &body, &error) ||
               (spec = body.Find("spec")) == nullptr || !spec->is_string()) {
      response.status = 400;
      response.body = "{\"error\":\"body wants {\\\"replica\\\":N,"
                      "\\\"spec\\\":\\\"...\\\"}\"}";
    } else {
      const JsonValue* replica = body.Find("replica");
      const int index =
          replica != nullptr ? static_cast<int>(replica->AsInt(-1)) : -1;
      const io::Status installed = fault_install_(index, spec->AsString());
      if (!installed.ok) {
        response.status = 400;
        response.body = "{\"error\":\"" + JsonEscape(installed.message) + "\"}";
      } else {
        response.body = "{\"installed\":true}";
      }
    }
  } else {
    response.status = 405;
    response.body = "{\"error\":\"GET or POST\"}";
  }
  writer.Send(std::move(response));
  return response.status;
}

int RouterFrontend::HandleAdminReplica(const HttpRequest& request,
                                       ResponseWriter writer) {
  HttpResponse response;
  JsonValue body;
  std::string error;
  if (request.method != "POST") {
    response.status = 405;
    response.body = "{\"error\":\"POST only\"}";
  } else if (!replica_admin_) {
    response.status = 404;
    response.body = "{\"error\":\"no replica admin hook attached\"}";
  } else if (!ParseJson(request.body, &body, &error)) {
    response.status = 400;
    response.body = "{\"error\":\"" + JsonEscape(error) + "\"}";
  } else {
    const JsonValue* index = body.Find("index");
    const JsonValue* action = body.Find("action");
    const int64_t i = index != nullptr ? index->AsInt(-1) : -1;
    const std::string verb =
        action != nullptr && action->is_string() ? action->AsString() : "";
    if (i < 0 || i >= static_cast<int64_t>(router_->num_replicas()) ||
        (verb != "stop" && verb != "start")) {
      response.status = 400;
      response.body = "{\"error\":\"body wants {\\\"index\\\":N,"
                      "\\\"action\\\":\\\"stop|start\\\"}\"}";
    } else if (!replica_admin_(static_cast<size_t>(i), verb == "start")) {
      response.status = 409;
      response.body = "{\"error\":\"replica admin action failed\"}";
    } else {
      response.body = "{\"ok\":true}";
    }
  }
  writer.Send(std::move(response));
  return response.status;
}

void RouterFrontend::HandleSuggest(const HttpRequest& request,
                                   ResponseWriter writer) {
  suggest_requests_->Increment();
  const Clock::time_point start = Clock::now();
  if (request.method != "POST") {
    HttpResponse response;
    response.status = 405;
    response.body = "{\"error\":\"POST only\"}";
    suggest_4xx_->Increment();
    writer.Send(std::move(response));
    return;
  }
  int deadline_ms = options_.default_deadline_ms;
  if (const std::string* header = request.FindHeader("X-Deadline-Ms")) {
    char* end = nullptr;
    const long parsed = std::strtol(header->c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      deadline_ms = static_cast<int>(parsed);
    }
  }
  if (options_.max_deadline_ms > 0) {
    deadline_ms = std::min(deadline_ms, options_.max_deadline_ms);
  }
  const std::string* type = request.FindHeader("Content-Type");
  std::string content_type = type != nullptr ? *type : "application/json";

  // The router exchange blocks (tries, backoff, hedges) — never on a
  // loop thread.
  const bool submitted = workers_->Submit(
      [this, writer, start, deadline_ms, body = request.body,
       content_type = std::move(content_type)] {
        RouterResult result;
        router_->Exchange("/v1/suggest", body, content_type, deadline_ms,
                          &result);
        HttpResponse response;
        response.status = result.status;
        response.body = std::move(result.body);
        response.content_type = result.content_type;
        if (result.stale) {
          response.extra_headers.emplace_back("X-Dssddi-Stale", "true");
          suggest_stale_->Increment();
        }
        (response.status >= 500   ? suggest_5xx_
         : response.status >= 400 ? suggest_4xx_
                                  : suggest_2xx_)
            ->Increment();
        suggest_latency_->Record(ElapsedMs(start));
        writer.Send(std::move(response));
      });
  if (!submitted) {
    HttpResponse response;
    response.status = 503;
    response.body = "{\"error\":\"router shutting down\"}";
    suggest_5xx_->Increment();
    writer.Send(std::move(response));
  }
}

}  // namespace dssddi::net
