#include "net/wire.h"

#include <cstring>
#include <limits>

namespace dssddi::net::wire {
namespace {

// -------------------------------------------------------------------
// Little-endian primitives. Explicit byte shifts, not memcpy of host
// integers: the frame layout must not depend on host endianness.
// -------------------------------------------------------------------

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutF32(std::string& out, float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v), "binary32 expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

uint64_t LoadU64(const char* data) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[i])) << (8 * i);
  }
  return v;
}

/// Bounded little-endian reader over one frame's bytes.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool U8(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U16(uint16_t* out) {
    if (remaining() < 2) return false;
    *out = 0;
    for (int i = 0; i < 2; ++i) {
      *out |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool U32(uint32_t* out) {
    if (remaining() < 4) return false;
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      *out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool U64(uint64_t* out) {
    if (remaining() < 8) return false;
    *out = 0;
    for (int i = 0; i < 8; ++i) {
      *out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool F32(float* out) {
    uint32_t bits;
    if (!U32(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool Bytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutHeader(std::string& out, FrameType type, size_t payload_bytes,
               uint64_t request_id) {
  PutU16(out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(type));
  PutU32(out, static_cast<uint32_t>(payload_bytes));
  PutU64(out, request_id);
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Validates the first 4 header bytes (magic, version, known type).
/// Shared by the strict whole-buffer peek and the incremental stream
/// extractor; `have` must be >= 4.
bool CheckHeaderPrefix(const char* data, std::string* error) {
  const uint16_t magic = static_cast<uint16_t>(
      static_cast<uint8_t>(data[0]) |
      (static_cast<uint16_t>(static_cast<uint8_t>(data[1])) << 8));
  const uint8_t version = static_cast<uint8_t>(data[2]);
  const uint8_t type = static_cast<uint8_t>(data[3]);
  if (magic != kMagic) return Fail(error, "bad magic");
  if (version != kVersion) {
    return Fail(error,
                "unsupported frame version " + std::to_string(version));
  }
  if (type != static_cast<uint8_t>(FrameType::kSuggestRequest) &&
      type != static_cast<uint8_t>(FrameType::kSuggestResponse) &&
      type != static_cast<uint8_t>(FrameType::kError)) {
    return Fail(error, "unknown frame type " + std::to_string(type));
  }
  return true;
}

/// Validates the header against the buffer and the expected type;
/// returns a Reader positioned at the payload and fills `*request_id`
/// from the header.
bool OpenFrame(const std::string& buffer, FrameType want, Reader* payload,
               uint64_t* request_id, std::string* error) {
  FrameType type;
  if (!PeekFrameType(buffer, &type, error)) return false;
  if (type != want) {
    return Fail(error, "unexpected frame type " +
                           std::to_string(static_cast<int>(type)) + " (want " +
                           std::to_string(static_cast<int>(want)) + ")");
  }
  *request_id = LoadU64(buffer.data() + kRequestIdOffset);
  *payload = Reader(buffer.data() + kHeaderBytes, buffer.size() - kHeaderBytes);
  return true;
}

}  // namespace

bool PeekFrameType(const std::string& buffer, FrameType* out,
                   std::string* error) {
  if (buffer.size() < kHeaderBytes) {
    return Fail(error, "truncated frame header (" +
                           std::to_string(buffer.size()) + " bytes, want >= " +
                           std::to_string(kHeaderBytes) + ")");
  }
  if (!CheckHeaderPrefix(buffer.data(), error)) return false;
  Reader reader(buffer.data() + 4, buffer.size() - 4);
  uint32_t length = 0;
  reader.U32(&length);
  if (buffer.size() < kHeaderBytes + length) {
    return Fail(error, "truncated frame: declares " + std::to_string(length) +
                           " payload bytes, " +
                           std::to_string(buffer.size() - kHeaderBytes) +
                           " present");
  }
  if (buffer.size() > kHeaderBytes + length) {
    return Fail(error, "oversized frame: " +
                           std::to_string(buffer.size() - kHeaderBytes - length) +
                           " trailing bytes after declared payload");
  }
  *out = static_cast<FrameType>(static_cast<uint8_t>(buffer[3]));
  return true;
}

ExtractResult ExtractFrame(const char* data, size_t size,
                           size_t max_payload_bytes, FrameView* out,
                           std::string* error) {
  if (size >= 2) {
    // Fail fast on the cheap checks before the full header arrives —
    // garbage must never sit in the buffer waiting for 16 bytes.
    if (!LooksLikeFramePrefix(data, size)) {
      Fail(error, "bad magic");
      return ExtractResult::kError;
    }
  }
  if (size >= 4 && !CheckHeaderPrefix(data, error)) {
    return ExtractResult::kError;
  }
  if (size < kHeaderBytes) return ExtractResult::kNeedMore;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(data[4 + i]))
              << (8 * i);
  }
  if (static_cast<size_t>(length) > max_payload_bytes) {
    Fail(error, "frame payload " + std::to_string(length) +
                    " bytes exceeds cap " + std::to_string(max_payload_bytes));
    return ExtractResult::kError;
  }
  if (size < kHeaderBytes + length) return ExtractResult::kNeedMore;
  out->type = static_cast<FrameType>(static_cast<uint8_t>(data[3]));
  out->request_id = LoadU64(data + kRequestIdOffset);
  out->frame_bytes = kHeaderBytes + static_cast<size_t>(length);
  return ExtractResult::kFrame;
}

bool LooksLikeFramePrefix(const char* data, size_t size) {
  if (size >= 1 && static_cast<uint8_t>(data[0]) != (kMagic & 0xff)) {
    return false;
  }
  if (size >= 2 && static_cast<uint8_t>(data[1]) != ((kMagic >> 8) & 0xff)) {
    return false;
  }
  return true;
}

bool PeekRequestId(const std::string& buffer, uint64_t* out) {
  if (buffer.size() < kRequestIdOffset + 8) return false;
  *out = LoadU64(buffer.data() + kRequestIdOffset);
  return true;
}

bool PatchRequestId(std::string* frame, uint64_t request_id) {
  if (frame->size() < kRequestIdOffset + 8) return false;
  for (int i = 0; i < 8; ++i) {
    (*frame)[kRequestIdOffset + static_cast<size_t>(i)] =
        static_cast<char>((request_id >> (8 * i)) & 0xff);
  }
  return true;
}

std::string EncodeSuggestRequest(const SuggestRequestFrame& frame) {
  const size_t payload = 8 + 4 + 2 + 1 + 1 + 8 + 4 + 4 * frame.features.size();
  std::string out;
  out.reserve(kHeaderBytes + payload);
  PutHeader(out, FrameType::kSuggestRequest, payload, frame.request_id);
  PutU64(out, static_cast<uint64_t>(frame.patient_id));
  PutU32(out, frame.deadline_ms);
  PutU16(out, static_cast<uint16_t>(frame.k));
  const uint8_t flags = (frame.explain ? 0x01 : 0x00) |
                        (frame.batch_priority ? 0x02 : 0x00);
  out.push_back(static_cast<char>(flags));
  out.push_back('\0');  // reserved
  PutU64(out, frame.trace_id);
  PutU32(out, static_cast<uint32_t>(frame.features.size()));
  for (const float f : frame.features) PutF32(out, f);
  return out;
}

bool DecodeSuggestRequest(const std::string& buffer, SuggestRequestFrame* out,
                          std::string* error) {
  Reader reader(nullptr, 0);
  if (!OpenFrame(buffer, FrameType::kSuggestRequest, &reader,
                 &out->request_id, error)) {
    return false;
  }
  uint64_t patient_id;
  uint16_t k;
  uint8_t flags;
  uint8_t reserved;
  uint32_t num_features;
  if (!reader.U64(&patient_id) || !reader.U32(&out->deadline_ms) ||
      !reader.U16(&k) || !reader.U8(&flags) || !reader.U8(&reserved) ||
      !reader.U64(&out->trace_id) || !reader.U32(&num_features)) {
    return Fail(error, "request frame payload truncated");
  }
  if (reserved != 0) return Fail(error, "nonzero reserved byte");
  if (flags & ~0x03u) {
    return Fail(error, "unknown request flags " + std::to_string(flags));
  }
  if (reader.remaining() != static_cast<size_t>(num_features) * 4) {
    return Fail(error, "feature count " + std::to_string(num_features) +
                           " inconsistent with " +
                           std::to_string(reader.remaining()) +
                           " payload bytes left");
  }
  out->patient_id = static_cast<int64_t>(patient_id);
  out->k = k;
  out->explain = (flags & 0x01) != 0;
  out->batch_priority = (flags & 0x02) != 0;
  out->features.resize(num_features);
  for (uint32_t i = 0; i < num_features; ++i) {
    if (!reader.F32(&out->features[i])) {
      return Fail(error, "feature array truncated");
    }
  }
  return true;
}

std::string EncodeSuggestResponse(const SuggestResponseFrame& frame) {
  const size_t count = frame.drugs.size();
  const size_t payload = 8 + 8 + 4 + 8 * count;
  std::string out;
  out.reserve(kHeaderBytes + payload);
  PutHeader(out, FrameType::kSuggestResponse, payload, frame.request_id);
  PutU64(out, frame.model_version);
  PutU64(out, frame.trace_id);
  PutU32(out, static_cast<uint32_t>(count));
  for (const int32_t drug : frame.drugs) {
    PutU32(out, static_cast<uint32_t>(drug));
  }
  for (const float score : frame.scores) PutF32(out, score);
  return out;
}

bool DecodeSuggestResponse(const std::string& buffer, SuggestResponseFrame* out,
                           std::string* error) {
  Reader reader(nullptr, 0);
  if (!OpenFrame(buffer, FrameType::kSuggestResponse, &reader,
                 &out->request_id, error)) {
    return false;
  }
  uint32_t count;
  if (!reader.U64(&out->model_version) || !reader.U64(&out->trace_id) ||
      !reader.U32(&count)) {
    return Fail(error, "response frame payload truncated");
  }
  if (reader.remaining() != static_cast<size_t>(count) * 8) {
    return Fail(error, "suggestion count " + std::to_string(count) +
                           " inconsistent with " +
                           std::to_string(reader.remaining()) +
                           " payload bytes left");
  }
  out->drugs.resize(count);
  out->scores.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t bits;
    if (!reader.U32(&bits)) return Fail(error, "drug array truncated");
    out->drugs[i] = static_cast<int32_t>(bits);
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.F32(&out->scores[i])) {
      return Fail(error, "score array truncated");
    }
  }
  return true;
}

std::string EncodeError(const ErrorFrame& frame) {
  const size_t payload = 4 + 8 + 4 + frame.message.size();
  std::string out;
  out.reserve(kHeaderBytes + payload);
  PutHeader(out, FrameType::kError, payload, frame.request_id);
  PutU32(out, frame.status);
  PutU64(out, frame.trace_id);
  PutU32(out, static_cast<uint32_t>(frame.message.size()));
  out += frame.message;
  return out;
}

bool DecodeError(const std::string& buffer, ErrorFrame* out,
                 std::string* error) {
  Reader reader(nullptr, 0);
  if (!OpenFrame(buffer, FrameType::kError, &reader, &out->request_id,
                 error)) {
    return false;
  }
  uint32_t msg_len;
  if (!reader.U32(&out->status) || !reader.U64(&out->trace_id) ||
      !reader.U32(&msg_len)) {
    return Fail(error, "error frame payload truncated");
  }
  if (reader.remaining() != msg_len) {
    return Fail(error, "message length " + std::to_string(msg_len) +
                           " inconsistent with " +
                           std::to_string(reader.remaining()) +
                           " payload bytes left");
  }
  if (!reader.Bytes(msg_len, &out->message)) {
    return Fail(error, "error message truncated");
  }
  return true;
}

}  // namespace dssddi::net::wire
