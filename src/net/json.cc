#include "net/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dssddi::net {

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Parser: straightforward recursive descent over the full document.
// ---------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      if (error) *error = error_ + " at byte " + std::to_string(pos_);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing bytes after document at byte " +
                          std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    error_ = message;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t length) {
    if (text_.compare(pos_, length, word) != 0) return Fail("bad literal");
    pos_ += length;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of document");
    switch (text_[pos_]) {
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return Literal("null", 4);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Literal("true", 4);
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Literal("false", 5);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      SkipWs();
      if (!ParseValue(&item, depth + 1)) return false;
      out->items_.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("dangling escape");
      switch (text_[pos_++]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code;
          if (!ParseHex4(&code)) return false;
          // Surrogate pair -> one astral code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            unsigned low;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  // Reset the output first: the element parsers append to items_/members_,
  // so parsing into a reused JsonValue would otherwise accumulate the
  // previous document's children ahead of the new ones (and Find, which
  // returns the first match, would keep answering from the stale parse).
  *out = JsonValue();
  return JsonParser(text).Parse(out, error);
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
  out_.push_back('"');
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // JSON has no inf/nan; emit null like most encoders.
  if (std::strchr(buffer, 'n') || std::strchr(buffer, 'i')) {
    out_ += "null";
  } else {
    out_ += buffer;
  }
  return *this;
}

JsonWriter& JsonWriter::Float(float value) {
  BeforeValue();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", static_cast<double>(value));
  if (std::strchr(buffer, 'n') || std::strchr(buffer, 'i')) {
    out_ += "null";
  } else {
    out_ += buffer;
  }
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace dssddi::net
