#include "net/pipelined_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/wire.h"

namespace dssddi::net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                            Clock::now());
  return static_cast<int>(left.count());
}

/// Blocking connect with SO_SNDTIMEO as the connect (and send) bound.
/// No SO_RCVTIMEO: the reader thread parks in recv indefinitely and is
/// woken by shutdown(), not by timeouts.
int Dial(const PipelinedClientOptions& options, io::Status* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *status = io::Status::Error(std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  struct timeval timeout {};
  timeout.tv_sec = options.connect_timeout_ms / 1000;
  timeout.tv_usec = (options.connect_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *status = io::Status::Error("unparseable address '" + options.host + "'");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *status = io::Status::Error("connect " + options.host + ":" +
                                std::to_string(options.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return -1;
  }
  *status = io::Status::Ok();
  return fd;
}

}  // namespace

PipelinedClient::PipelinedClient(const PipelinedClientOptions& options)
    : options_(options) {}

PipelinedClient::~PipelinedClient() { Close(); }

bool PipelinedClient::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_ >= 0 && !reader_done_;
}

size_t PipelinedClient::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

uint64_t PipelinedClient::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

void PipelinedClient::FailAllLocked(const std::string& reason) {
  for (auto& [id, pending] : pending_) {
    if (!pending->done) {
      pending->done = true;
      pending->status = io::Status::Error(reason);
    }
  }
  pending_.clear();
  abandoned_.clear();
  cv_.notify_all();
}

void PipelinedClient::ReaderLoop(int fd, uint64_t generation) {
  std::string buffer;
  std::string failure;
  char chunk[16384];
  for (;;) {
    const fault::FaultAction read_fault =
        fault::Probe(fault_, fault::FaultOp::kRead);
    if (read_fault.kind == fault::FaultAction::Kind::kReset ||
        read_fault.kind == fault::FaultAction::Kind::kBlackout) {
      failure = "injected fault: connection reset during read";
      break;
    }
    if (read_fault.kind == fault::FaultAction::Kind::kStall) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(read_fault.stall_ms));
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      failure = "connection closed by server";
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      failure = std::string("recv: ") + std::strerror(errno);
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    bool fatal = false;
    while (!fatal) {
      wire::FrameView view;
      std::string error;
      const wire::ExtractResult result =
          wire::ExtractFrame(buffer.data(), buffer.size(),
                             options_.max_frame_payload, &view, &error);
      if (result == wire::ExtractResult::kNeedMore) break;
      if (result == wire::ExtractResult::kError) {
        failure = "response stream corrupt: " + error;
        fatal = true;
        break;
      }
      std::string frame = buffer.substr(0, view.frame_bytes);
      buffer.erase(0, view.frame_bytes);
      std::lock_guard<std::mutex> lock(mutex_);
      if (generation != generation_) return;  // superseded connection
      auto it = pending_.find(view.request_id);
      if (it != pending_.end()) {
        it->second->done = true;
        it->second->frame = std::move(frame);
        pending_.erase(it);
        cv_.notify_all();
        continue;
      }
      if (abandoned_.erase(view.request_id) > 0) {
        continue;  // late answer to a deadline/cancel loser: drop it
      }
      // An id this client never sent (or already answered): the stream
      // cannot be trusted to be in frame sync anymore.
      failure = "unexpected request_id " + std::to_string(view.request_id) +
                " from server";
      fatal = true;
    }
    if (fatal) break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (generation != generation_) return;
  reader_done_ = true;
  FailAllLocked(failure);
}

io::Status PipelinedClient::Exchange(const std::string& frame,
                                     const ClientRequestOptions& options,
                                     ClientResponse* out) {
  const bool has_deadline = options.deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options.deadline_ms);

  uint64_t original_id = 0;
  if (!wire::PeekRequestId(frame, &original_id)) {
    return io::Status::Error("frame too short to carry a request_id");
  }

  std::shared_ptr<Pending> pending;
  uint64_t id = 0;
  int fd = -1;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // (Re)connect under a guard flag: the join + dial drop the lock, and
    // concurrent exchanges must neither double-connect nor race the
    // teardown of the previous reader.
    for (;;) {
      if (fd_ >= 0 && !reader_done_) break;
      if (connecting_) {
        cv_.wait(lock);
        continue;
      }
      connecting_ = true;
      std::thread old_reader = std::move(reader_);
      const int old_fd = fd_;
      fd_ = -1;
      if (old_fd >= 0) ::shutdown(old_fd, SHUT_RDWR);
      lock.unlock();
      if (old_reader.joinable()) old_reader.join();
      if (old_fd >= 0) ::close(old_fd);
      io::Status dial_status;
      const int fresh = Dial(options_, &dial_status);
      lock.lock();
      connecting_ = false;
      if (fresh < 0) {
        cv_.notify_all();
        return dial_status;
      }
      fd_ = fresh;
      reader_done_ = false;
      ++generation_;
      reader_ = std::thread([this, fresh, generation = generation_] {
        ReaderLoop(fresh, generation);
      });
      cv_.notify_all();
      break;
    }
    fd = fd_;
    id = next_id_++;
    pending = std::make_shared<Pending>();
    pending_.emplace(id, pending);
  }

  // Stamp the hop-local id and send the whole frame under the write
  // lock so concurrent exchanges never interleave bytes mid-frame.
  std::string stamped = frame;
  wire::PatchRequestId(&stamped, id);
  {
    std::lock_guard<std::mutex> write_lock(write_mutex_);
    const fault::FaultAction send_fault =
        fault::Probe(fault_, fault::FaultOp::kWrite);
    bool send_failed =
        send_fault.kind == fault::FaultAction::Kind::kReset ||
        send_fault.kind == fault::FaultAction::Kind::kBlackout;
    std::string send_error =
        send_failed ? "injected fault: connection reset during send" : "";
    if (send_fault.kind == fault::FaultAction::Kind::kStall) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(send_fault.stall_ms));
    }
    size_t sent = 0;
    while (!send_failed && sent < stamped.size()) {
      const ssize_t n = ::send(fd, stamped.data() + sent,
                               stamped.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      send_failed = true;
      send_error = std::string("send: ") + std::strerror(errno);
    }
    if (send_failed) {
      // The socket may now hold a torn frame; nothing multiplexed on it
      // can be trusted. Wake the reader (it fails the other pendings)
      // and fail this exchange directly.
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.erase(id);
      if (fd_ == fd) ::shutdown(fd_, SHUT_RDWR);
      return io::Status::Error(send_error);
    }
  }

  // Await the correlated completion in cancellation-granularity slices.
  std::unique_lock<std::mutex> lock(mutex_);
  while (!pending->done) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      pending_.erase(id);
      abandoned_.insert(id);
      return io::Status::Error("request cancelled");
    }
    int wait_ms = 20;  // cancellation granularity
    if (has_deadline) {
      const int remaining = RemainingMs(deadline);
      if (remaining <= 0) {
        pending_.erase(id);
        abandoned_.insert(id);
        return io::Status::Error(
            "request deadline exceeded awaiting response");
      }
      wait_ms = options.cancel != nullptr ? std::min(remaining, 20) : remaining;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms));
  }
  if (!pending->status.ok) return pending->status;
  lock.unlock();

  std::string body = std::move(pending->frame);
  wire::FrameType type;
  std::string peek_error;
  if (!wire::PeekFrameType(body, &type, &peek_error)) {
    return io::Status::Error("unreadable response frame: " + peek_error);
  }
  *out = ClientResponse{};
  if (type == wire::FrameType::kSuggestResponse) {
    out->status = 200;
  } else if (type == wire::FrameType::kError) {
    wire::ErrorFrame error_frame;
    std::string decode_error;
    if (!wire::DecodeError(body, &error_frame, &decode_error)) {
      return io::Status::Error("undecodable error frame: " + decode_error);
    }
    out->status = static_cast<int>(error_frame.status);
  } else {
    return io::Status::Error("server sent a request frame");
  }
  // Restore the caller's correlator: the hop-local id must not leak
  // through codec-passthrough relays above this client.
  wire::PatchRequestId(&body, original_id);
  out->body = std::move(body);
  out->keep_alive = true;
  out->headers.emplace_back("Content-Type", wire::kContentType);
  return io::Status::Ok();
}

void PipelinedClient::Close() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (connecting_) cv_.wait(lock);
  if (fd_ < 0 && !reader_.joinable()) return;
  connecting_ = true;
  std::thread old_reader = std::move(reader_);
  const int old_fd = fd_;
  fd_ = -1;
  if (old_fd >= 0) ::shutdown(old_fd, SHUT_RDWR);
  lock.unlock();
  if (old_reader.joinable()) old_reader.join();
  if (old_fd >= 0) ::close(old_fd);
  lock.lock();
  connecting_ = false;
  reader_done_ = false;
  FailAllLocked("connection closed");
}

}  // namespace dssddi::net
