#ifndef DSSDDI_NET_REPLICA_CLIENT_H_
#define DSSDDI_NET_REPLICA_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/binary.h"
#include "net/http_client.h"

namespace dssddi::net {

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Breaker state machine: kClosed (traffic flows, outcomes feed a
/// rolling window) → kOpen (failure rate crossed the threshold; no
/// traffic for a cooldown) → kHalfOpen (one probe allowed through) →
/// back to kClosed on probe success or kOpen on probe failure.
enum class BreakerState : int { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Rolling outcome window (last N tries) the failure rate is judged
  /// over; small so a replica going dark trips within a handful of
  /// requests.
  int window = 16;
  /// Outcomes required in the window before the rate can trip the
  /// breaker — one unlucky first request must not open it.
  int min_volume = 6;
  /// Open when failures / window_count reaches this.
  double failure_threshold = 0.5;
  /// How long an open breaker refuses traffic before letting one
  /// half-open probe through.
  int open_cooldown_ms = 1000;
  /// Consecutive probe successes required to close again.
  int half_open_successes = 1;
};

/// Per-replica circuit breaker. Thread-safe; every transition invokes
/// the hook (under the lock — keep hooks cheap: gauge set, counter
/// bump, flight-recorder record).
class CircuitBreaker {
 public:
  using TransitionHook =
      std::function<void(BreakerState from, BreakerState to)>;

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {});

  void set_transition_hook(TransitionHook hook);

  /// True when a try may be sent now. An open breaker past its cooldown
  /// transitions to half-open and admits the caller as the probe; a
  /// half-open breaker admits only while a probe slot is free.
  bool AllowRequest();
  /// Report the outcome of an admitted try.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;

 private:
  void TransitionLocked(BreakerState to);
  void PushOutcomeLocked(bool failure);

  mutable std::mutex mutex_;
  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  TransitionHook hook_;
  std::vector<uint8_t> outcomes_;  // ring: 1 = failure
  size_t outcome_pos_ = 0;
  size_t outcome_count_ = 0;
  size_t failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
};

// ---------------------------------------------------------------------
// Replica client
// ---------------------------------------------------------------------

struct ReplicaClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Connect + per-socket recv/send timeout handed to HttpClient.
  int connect_timeout_ms = 2000;
  /// Idle keep-alive connections retained for reuse.
  size_t max_pool = 4;
  CircuitBreakerOptions breaker;
};

/// One replica endpoint: a keep-alive connection pool over HttpClient
/// plus the replica's circuit breaker. Thread-safe — concurrent tries
/// each check a connection out of the pool (or dial a fresh one), so a
/// hedged duplicate never shares a socket with its primary.
///
/// Outcome accounting: transport errors and 5xx responses count as
/// breaker failures; any parseable response below 500 (including 429
/// shed — the replica is alive and answering) counts as success.
/// Callers gate on breaker().AllowRequest() *before* Exchange; Exchange
/// itself always records the outcome of the try it ran.
class ReplicaClient {
 public:
  explicit ReplicaClient(const ReplicaClientOptions& options);

  /// "host:port" — the `replica` label on every metric.
  const std::string& name() const { return name_; }

  io::Status Exchange(const std::string& method, const std::string& target,
                      const std::string& body,
                      const ClientRequestOptions& options,
                      ClientResponse* out);

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Idle pooled connections (tests).
  size_t pooled() const;

 private:
  std::unique_ptr<HttpClient> Acquire(io::Status* status, bool* from_pool);
  void Release(std::unique_ptr<HttpClient> client, bool reusable);

  ReplicaClientOptions options_;
  std::string name_;
  CircuitBreaker breaker_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<HttpClient>> pool_;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_REPLICA_CLIENT_H_
