#ifndef DSSDDI_NET_REPLICA_CLIENT_H_
#define DSSDDI_NET_REPLICA_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/binary.h"
#include "net/http_client.h"
#include "net/pipelined_client.h"

namespace dssddi::net {

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Breaker state machine: kClosed (traffic flows, outcomes feed a
/// rolling window) → kOpen (failure rate crossed the threshold; no
/// traffic for a cooldown) → kHalfOpen (one probe allowed through) →
/// back to kClosed on probe success or kOpen on probe failure.
enum class BreakerState : int { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Rolling outcome window (last N tries) the failure rate is judged
  /// over; small so a replica going dark trips within a handful of
  /// requests.
  int window = 16;
  /// Outcomes required in the window before the rate can trip the
  /// breaker — one unlucky first request must not open it.
  int min_volume = 6;
  /// Open when failures / window_count reaches this.
  double failure_threshold = 0.5;
  /// How long an open breaker refuses traffic before letting one
  /// half-open probe through.
  int open_cooldown_ms = 1000;
  /// Consecutive probe successes required to close again.
  int half_open_successes = 1;
};

/// Per-replica circuit breaker. Thread-safe; every transition invokes
/// the hook (under the lock — keep hooks cheap: gauge set, counter
/// bump, flight-recorder record).
///
/// Admission protocol: `Admit()` returns a nonzero token when a try may
/// be sent now, and every token MUST be settled by exactly one of
/// `RecordSuccess` / `RecordFailure` / `Abandon` — a half-open
/// admission holds the single probe slot until settled, so a dropped
/// token would wedge the breaker in half-open forever. Tokens are
/// epoch-tagged: an outcome reported after the breaker has since
/// changed state (a straggler from an earlier era) is ignored rather
/// than misattributed to the current probe.
class CircuitBreaker {
 public:
  using TransitionHook =
      std::function<void(BreakerState from, BreakerState to)>;

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {});

  void set_transition_hook(TransitionHook hook);

  /// Nonzero admission token when a try may be sent now; 0 when the
  /// breaker refuses. An open breaker past its cooldown transitions to
  /// half-open and admits the caller as the probe; a half-open breaker
  /// admits only while the probe slot is free.
  uint64_t Admit();
  /// Report the outcome of an admitted try. Stale tokens (the breaker
  /// transitioned since admission) are ignored.
  void RecordSuccess(uint64_t token);
  void RecordFailure(uint64_t token);
  /// Release an admission whose try never produced a verdict on the
  /// replica (never launched, or cancelled mid-flight): frees a
  /// half-open probe slot without counting an outcome either way.
  void Abandon(uint64_t token);

  BreakerState state() const;

 private:
  void TransitionLocked(BreakerState to);
  void PushOutcomeLocked(bool failure);

  mutable std::mutex mutex_;
  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  TransitionHook hook_;
  std::vector<uint8_t> outcomes_;  // ring: 1 = failure
  size_t outcome_pos_ = 0;
  size_t outcome_count_ = 0;
  size_t failures_ = 0;
  /// Bumped on every state transition; admission tokens carry the epoch
  /// they were issued under so stragglers are recognizable.
  uint64_t epoch_ = 1;
  std::chrono::steady_clock::time_point opened_at_{};
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
};

// ---------------------------------------------------------------------
// Replica client
// ---------------------------------------------------------------------

struct ReplicaClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Connect + per-socket recv/send timeout handed to HttpClient.
  int connect_timeout_ms = 2000;
  /// Idle keep-alive connections retained for reuse.
  size_t max_pool = 4;
  /// Route binary /v1/suggest exchanges through one shared multiplexed
  /// PipelinedClient connection instead of the per-try HTTP pool. Off
  /// reverts to one-exchange-per-connection (comparison benchmarks,
  /// serial-oracle tests).
  bool pipelined = true;
  CircuitBreakerOptions breaker;
};

/// One replica endpoint: a keep-alive connection pool over HttpClient
/// plus the replica's circuit breaker. Thread-safe — concurrent tries
/// each check a connection out of the pool (or dial a fresh one), so a
/// hedged duplicate never shares a socket with its primary.
///
/// Outcome accounting: transport errors, timeouts, and 5xx responses
/// count as breaker failures; any parseable response below 500
/// (including 429 shed — the replica is alive and answering) counts as
/// success; cancelled tries (hedge losers, request-deadline aborts) are
/// neutral — the replica did nothing wrong, so the admission is
/// abandoned rather than charged. Callers gate on breaker().Admit()
/// *before* Exchange and hand the token in; Exchange always settles it.
class ReplicaClient {
 public:
  explicit ReplicaClient(const ReplicaClientOptions& options);

  /// "host:port" — the `replica` label on every metric.
  const std::string& name() const { return name_; }

  /// `admission` is the token breaker().Admit() issued for this try;
  /// Exchange settles it (success / failure / abandon) in every path.
  io::Status Exchange(const std::string& method, const std::string& target,
                      const std::string& body,
                      const ClientRequestOptions& options,
                      ClientResponse* out, uint64_t admission);

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Idle pooled connections (tests).
  size_t pooled() const;

  /// The shared multiplexed connection binary suggest traffic rides on;
  /// nullptr when `options.pipelined` is off (tests, benchmarks).
  PipelinedClient* pipelined_client() { return pipelined_.get(); }

 private:
  std::unique_ptr<HttpClient> Acquire(io::Status* status, bool* from_pool);
  void Release(std::unique_ptr<HttpClient> client, bool reusable);
  io::Status ExchangePipelined(const std::string& frame,
                               const ClientRequestOptions& options,
                               ClientResponse* out, uint64_t admission);

  ReplicaClientOptions options_;
  std::string name_;
  CircuitBreaker breaker_;
  std::unique_ptr<PipelinedClient> pipelined_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<HttpClient>> pool_;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_REPLICA_CLIENT_H_
