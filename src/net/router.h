#ifndef DSSDDI_NET_ROUTER_H_
#define DSSDDI_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/binary.h"
#include "net/http_server.h"
#include "net/replica_client.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/thread_pool.h"

namespace dssddi::net {

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

struct RouterOptions {
  /// Total tries per request (first attempt + retries).
  int max_tries = 3;
  /// Per-try budget; each try additionally never exceeds the remaining
  /// request deadline.
  int per_try_timeout_ms = 1000;
  /// Capped exponential backoff between retries: base · 2^attempt,
  /// clamped to max, with seeded full jitter (never sleeps past the
  /// request deadline).
  int backoff_base_ms = 5;
  int backoff_max_ms = 100;
  uint64_t backoff_seed = 0x5eedull;
  /// Retry budget (token bucket): every request deposits `ratio`
  /// tokens, every retry spends one — sustained retry volume is capped
  /// at ratio · request rate so retries cannot amplify an outage.
  double retry_budget_ratio = 0.5;
  double retry_budget_burst = 32.0;
  /// Deadline-aware hedging: once a try has been in flight longer than
  /// the observed try-latency p90 (clamped to [min,max] below), launch
  /// a duplicate on another replica; first answer wins, the loser is
  /// cancelled. Refused while `hedge_inhibit` returns true (wired to
  /// the SLO engine's degraded bit) so hedges never amplify overload.
  bool hedging = true;
  int hedge_min_delay_ms = 10;
  int hedge_max_delay_ms = 1000;
  /// Recompute the cached p90 every N recorded tries.
  uint32_t hedge_refresh_every = 32;
  std::function<bool()> hedge_inhibit;
  /// Stale-serve cache entries (successful fresh bodies, keyed by
  /// request hash; generation-keyed by the response's model version).
  size_t stale_capacity = 512;
  /// Workers running tries (each blocking up to per-try budget). Bounds
  /// concurrent tries, not concurrent requests.
  int worker_threads = 8;
};

/// What the router answered with, however it got there.
struct RouterResult {
  int status = 0;
  std::string body;
  std::string content_type;
  /// True when the answer came from the stale cache because no replica
  /// could serve fresh — surfaces as X-Dssddi-Stale: true.
  bool stale = false;
  bool hedged = false;
  int tries = 0;
  /// Replica index that produced the winning answer; -1 for stale /
  /// synthesized answers.
  int replica = -1;
};

/// Fault-tolerant routing client over N replica endpoints: round-robin
/// across closed breakers, per-try timeouts carved from the request
/// deadline, budget-bounded retries with capped exponential backoff +
/// seeded jitter, p90-triggered hedging with loser cancellation, and a
/// generation-keyed stale cache as the last line of defense when every
/// breaker is open.
///
/// Only used for idempotent work (suggest is a pure function of the
/// request + model version), which is what makes retries and hedges
/// safe to fire.
class Router {
 public:
  Router(const std::vector<ReplicaClientOptions>& replicas,
         const RouterOptions& options,
         std::shared_ptr<obs::Registry> registry,
         std::shared_ptr<obs::FlightRecorder> recorder);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one exchange. `deadline_ms` (0 = none) bounds the whole
  /// effort — tries, backoffs and hedges included. Returns Ok whenever
  /// there is an answer to report, including synthesized 503s; `*out`
  /// is always filled.
  io::Status Exchange(const std::string& target, const std::string& body,
                      const std::string& content_type, int deadline_ms,
                      RouterResult* out);

  size_t num_replicas() const { return replicas_.size(); }
  ReplicaClient& replica(size_t index) { return *replicas_[index]; }
  /// Replicas whose breaker is not open ("able to serve fresh").
  int AvailableReplicas() const;

  const RouterOptions& options() const { return options_; }
  obs::Registry* registry() { return registry_.get(); }
  obs::FlightRecorder* recorder() { return recorder_.get(); }

  /// Backoff before retry `attempt` (1-based): base · 2^(attempt-1)
  /// clamped to `max_ms`, scaled by seeded full jitter in [0.5, 1.0].
  /// Pure — chaos tests assert the schedule replays by seed.
  static int BackoffMs(int attempt, int base_ms, int max_ms, uint64_t seed,
                       uint64_t nonce);

 private:
  struct Race;
  class StaleCache;

  /// Round-robin pick of a breaker-admitted replica, skipping indices
  /// in `exclude` (bitmask). -1 when none admits; on success
  /// `*admission` holds the breaker token the eventual try must settle.
  int PickReplica(uint64_t exclude, uint64_t* admission);
  void LaunchTry(const std::shared_ptr<Race>& race, int slot, int replica,
                 uint64_t admission, const std::string& target,
                 const std::string& body, const std::string& content_type,
                 int budget_ms);
  int HedgeDelayMs();
  void RecordTryLatency(double ms);

  RouterOptions options_;
  std::vector<std::unique_ptr<ReplicaClient>> replicas_;
  std::shared_ptr<obs::Registry> registry_;
  std::shared_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::unique_ptr<StaleCache> stale_;

  std::atomic<uint64_t> rr_{0};
  std::atomic<uint64_t> request_counter_{0};
  std::mutex budget_mutex_;
  double retry_tokens_;

  obs::Counter* requests_ok_;
  obs::Counter* requests_stale_;
  obs::Counter* requests_error_;
  obs::Counter* retries_total_;
  obs::Counter* hedges_won_;
  obs::Counter* hedges_lost_;
  obs::Histogram* try_latency_;
  std::vector<obs::Gauge*> replica_state_;

  /// Cached hedge trigger: try-latency p90, refreshed every
  /// hedge_refresh_every records (same pattern as LatencyTracker).
  std::atomic<double> hedge_delay_cache_{0.0};
  std::atomic<uint32_t> try_records_{0};
};

// ---------------------------------------------------------------------
// RouterFrontend
// ---------------------------------------------------------------------

struct RouterFrontendOptions {
  /// Deadline applied to /v1/suggest exchanges arriving without an
  /// X-Deadline-Ms header.
  int default_deadline_ms = 1000;
  /// Ceiling clamped onto client-supplied deadlines; 0 = none.
  int max_deadline_ms = 10000;
  /// Workers running (blocking) router exchanges off the loop threads.
  int worker_threads = 8;
};

/// HTTP face of the Router — what `examples/replica_cluster` serves.
/// Routes:
///
///   POST /v1/suggest   proxied through the Router (JSON or binary;
///                      codec passthrough). Stale answers carry
///                      X-Dssddi-Stale: true.
///   GET  /healthz      liveness: 200 while the process runs
///   GET  /readyz       readiness: 200 only when not draining and at
///                      least one replica breaker is not open; body
///                      lists per-replica breaker states
///   GET  /statsz       router counters + per-replica breaker states
///   GET  /metricsz     the router registry's Prometheus exposition
///                      (?format=openmetrics supported)
///   GET  /sloz         router-level SLO engine state (when attached):
///                      fast/slow burns plus the degraded bit that
///                      inhibits hedging
///   GET  /logz         the router flight recorder as NDJSON
///   GET  /admin/fault  fault-injector states (launcher-provided hook)
///   POST /admin/fault  {"replica":0,"spec":"reset=0.05"} installs a
///                      spec on one replica's injector ("" clears)
///   POST /admin/replica {"index":1,"action":"stop"|"start"} delegates
///                      to the launcher (kill / restart one replica)
class RouterFrontend {
 public:
  RouterFrontend(Router* router, const RouterFrontendOptions& options = {});
  ~RouterFrontend();

  void AttachServer(const HttpServer* server) { http_ = server; }

  /// Launcher hooks; absent hooks 404 their admin routes.
  using ReplicaAdminHook = std::function<bool(size_t index, bool up)>;
  using FaultInstallHook =
      std::function<io::Status(int replica, const std::string& spec)>;
  using FaultDescribeHook = std::function<std::string()>;
  void set_replica_admin(ReplicaAdminHook hook);
  void set_fault_admin(FaultInstallHook install, FaultDescribeHook describe);
  /// Router-level SLO engine behind GET /sloz — the same engine whose
  /// degraded bit the launcher wires into RouterOptions::hedge_inhibit,
  /// so operators can see why hedging switched off. Must outlive the
  /// frontend; absent → /sloz 404s.
  void set_slo_engine(const obs::SloEngine* slo) { slo_ = slo; }

  void Handle(const HttpRequest& request, ResponseWriter writer);
  HttpServer::Handler AsHandler() {
    return [this](const HttpRequest& request, ResponseWriter writer) {
      Handle(request, writer);
    };
  }

 private:
  void HandleSuggest(const HttpRequest& request, ResponseWriter writer);
  int HandleReadyz(ResponseWriter writer);
  int HandleAdminFault(const HttpRequest& request, ResponseWriter writer);
  int HandleAdminReplica(const HttpRequest& request, ResponseWriter writer);

  Router* router_;
  RouterFrontendOptions options_;
  const HttpServer* http_ = nullptr;
  std::unique_ptr<serve::ThreadPool> workers_;
  ReplicaAdminHook replica_admin_;
  FaultInstallHook fault_install_;
  FaultDescribeHook fault_describe_;
  const obs::SloEngine* slo_ = nullptr;

  obs::Counter* suggest_requests_;
  obs::Counter* suggest_2xx_;
  obs::Counter* suggest_4xx_;
  obs::Counter* suggest_5xx_;
  obs::Counter* suggest_stale_;
  obs::Histogram* suggest_latency_;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_ROUTER_H_
