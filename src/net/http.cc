#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace dssddi::net {

bool AsciiEqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) --end;
  return text.substr(begin, end - begin);
}

bool IsTokenChar(char c) {
  // RFC 7230 token characters.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiEqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  const bool close = response.close || !keep_alive;
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out.push_back(' ');
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += close ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  for (const auto& [name, value] : response.extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

// ---------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------

HttpParser::Result HttpParser::Error(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return Result::kError;
}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  line_.clear();
  header_bytes_ = 0;
  body_remaining_ = 0;
  request_ = HttpRequest{};
  error_status_ = 0;
  error_reason_.clear();
}

HttpParser::Result HttpParser::Feed(const char* data, size_t size,
                                    size_t* consumed) {
  *consumed = 0;
  if (state_ == State::kComplete) return Result::kComplete;
  if (state_ == State::kError) return Result::kError;

  size_t pos = 0;
  while (pos < size) {
    if (state_ == State::kBody) {
      const size_t take = std::min(size - pos, body_remaining_);
      request_.body.append(data + pos, take);
      pos += take;
      body_remaining_ -= take;
      if (body_remaining_ == 0) {
        state_ = State::kComplete;
        *consumed = pos;
        return Result::kComplete;
      }
      break;  // took everything offered
    }

    // Line-oriented states: accumulate until '\n'.
    const char* newline = static_cast<const char*>(
        memchr(data + pos, '\n', size - pos));
    const size_t chunk_end = newline ? static_cast<size_t>(newline - data) : size;
    line_.append(data + pos, chunk_end - pos);
    const size_t limit = state_ == State::kRequestLine
                             ? limits_.max_request_line
                             : limits_.max_header_bytes;
    if (line_.size() > limit ||
        (state_ == State::kHeaders &&
         header_bytes_ + line_.size() > limits_.max_header_bytes)) {
      *consumed = pos;
      return state_ == State::kRequestLine
                 ? Error(414, "request line exceeds " +
                                  std::to_string(limits_.max_request_line) +
                                  " bytes")
                 : Error(431, "header block exceeds " +
                                  std::to_string(limits_.max_header_bytes) +
                                  " bytes");
    }
    if (!newline) {
      pos = size;
      break;  // wait for the rest of the line
    }
    pos = chunk_end + 1;  // swallow '\n'
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();

    if (state_ == State::kRequestLine) {
      if (line_.empty()) continue;  // tolerate leading blank lines (RFC 7230)
      if (!ProcessRequestLine(line_)) {
        *consumed = pos;
        return Result::kError;
      }
      line_.clear();
      state_ = State::kHeaders;
    } else {  // kHeaders
      if (line_.empty()) {
        if (!FinishHeaders()) {
          *consumed = pos;
          return Result::kError;
        }
        line_.clear();
        if (body_remaining_ == 0) {
          state_ = State::kComplete;
          *consumed = pos;
          return Result::kComplete;
        }
        state_ = State::kBody;
        continue;
      }
      header_bytes_ += line_.size() + 2;
      if (!ProcessHeaderLine(line_)) {
        *consumed = pos;
        return Result::kError;
      }
      line_.clear();
    }
  }
  *consumed = pos;
  return Result::kNeedMore;
}

bool HttpParser::ProcessRequestLine(const std::string& line) {
  const size_t first_space = line.find(' ');
  const size_t second_space =
      first_space == std::string::npos ? std::string::npos
                                       : line.find(' ', first_space + 1);
  if (first_space == std::string::npos || second_space == std::string::npos ||
      line.find(' ', second_space + 1) != std::string::npos) {
    Error(400, "malformed request line");
    return false;
  }
  request_.method = line.substr(0, first_space);
  request_.target = line.substr(first_space + 1, second_space - first_space - 1);
  const std::string version = line.substr(second_space + 1);

  if (request_.method.empty() ||
      !std::all_of(request_.method.begin(), request_.method.end(), IsTokenChar)) {
    Error(400, "malformed method token");
    return false;
  }
  if (request_.target.empty()) {
    Error(400, "empty request target");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else {
    Error(505, "unsupported protocol version '" + version + "'");
    return false;
  }
  return true;
}

bool HttpParser::ProcessHeaderLine(const std::string& line) {
  if (static_cast<int>(request_.headers.size()) >= limits_.max_headers) {
    Error(431, "more than " + std::to_string(limits_.max_headers) + " headers");
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    Error(400, "malformed header line");
    return false;
  }
  const std::string name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
    Error(400, "malformed header name");
    return false;
  }
  request_.headers.emplace_back(name, Trim(line.substr(colon + 1)));
  return true;
}

bool HttpParser::FinishHeaders() {
  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    Error(501, "chunked transfer encoding is not supported");
    return false;
  }
  if (const std::string* connection = request_.FindHeader("Connection")) {
    if (AsciiEqualsIgnoreCase(*connection, "close")) {
      request_.keep_alive = false;
    } else if (AsciiEqualsIgnoreCase(*connection, "keep-alive")) {
      request_.keep_alive = true;
    }
  }
  // Reject duplicate Content-Length headers outright (RFC 7230 §3.3.2):
  // honoring "the first one" while a proxy in front honors the last is
  // the classic request-smuggling desync.
  int content_length_headers = 0;
  for (const auto& [name, value] : request_.headers) {
    if (AsciiEqualsIgnoreCase(name, "Content-Length")) ++content_length_headers;
  }
  if (content_length_headers > 1) {
    Error(400, "multiple Content-Length headers");
    return false;
  }
  const std::string* length = request_.FindHeader("Content-Length");
  if (length == nullptr) {
    body_remaining_ = 0;
    return true;
  }
  if (length->empty() ||
      !std::all_of(length->begin(), length->end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      }) ||
      length->size() > 18) {
    Error(400, "malformed Content-Length");
    return false;
  }
  const unsigned long long value = std::stoull(*length);
  if (value > limits_.max_body_bytes) {
    Error(413, "body of " + *length + " bytes exceeds limit of " +
                   std::to_string(limits_.max_body_bytes));
    return false;
  }
  body_remaining_ = static_cast<size_t>(value);
  request_.body.reserve(body_remaining_);
  return true;
}

}  // namespace dssddi::net
