#ifndef DSSDDI_NET_HTTP_CLIENT_H_
#define DSSDDI_NET_HTTP_CLIENT_H_

#include <atomic>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "io/binary.h"
#include "net/fault.h"

namespace dssddi::net {

/// What the client got back from one exchange.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  const std::string* FindHeader(const std::string& name) const;
};

/// Per-exchange knobs for HttpClient::Request.
struct ClientRequestOptions {
  /// Content-Type sent with a non-empty body ("application/json" for the
  /// JSON route, wire::kContentType for binary frames).
  std::string content_type = "application/json";
  /// Overall exchange budget in milliseconds — connect-to-last-body-byte,
  /// not per-read: a server trickling bytes cannot stretch the exchange
  /// past it the way the fixed per-socket SO_RCVTIMEO alone could.
  /// 0 = no budget (socket timeouts still apply).
  int deadline_ms = 0;
  /// Deadline advertised to the server via X-Deadline-Ms. -1 (default)
  /// advertises `deadline_ms` when set; 0 suppresses the header; > 0
  /// overrides it (tests use this to hand the server a tighter budget
  /// than the client enforces, so the 504 still arrives).
  int advertise_deadline_ms = -1;
  /// Optional cooperative cancellation: when non-null, the exchange
  /// polls the flag (at most every 20 ms) and aborts with "request
  /// cancelled" once it reads true — how a hedged try that lost the
  /// race stops consuming its replica. The flag must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
};

/// Tiny blocking HTTP/1.1 client for tests and load generators: one
/// connection, keep-alive reuse, fixed-length bodies only (no chunked).
/// Reads carry a socket timeout so a wedged server fails the exchange
/// instead of hanging the caller, and a per-request deadline bounds the
/// whole exchange (and is propagated to the server as X-Deadline-Ms so
/// loopback tests exercise real deadline plumbing). Not thread-safe;
/// use one per thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  io::Status Connect(const std::string& host, int port, int timeout_ms = 5000);

  /// One request/response exchange on the open connection. `body` may be
  /// empty (GET). On success fills `*out`; if the server answered with
  /// `Connection: close` the socket is closed and the next Request needs
  /// a fresh Connect. A blown per-request deadline closes the socket too
  /// (a late response would desynchronize the next exchange).
  io::Status Request(const std::string& method, const std::string& target,
                     const std::string& body, const ClientRequestOptions& options,
                     ClientResponse* out);
  io::Status Request(const std::string& method, const std::string& target,
                     const std::string& body, ClientResponse* out) {
    return Request(method, target, body, ClientRequestOptions{}, out);
  }

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Optional fault injector consulted before sends and receives
  /// (chaos testing of client-side robustness). Must outlive the
  /// client. Null (default) costs one branch per exchange.
  void set_fault(fault::FaultInjector* injector) { fault_ = injector; }

 private:
  io::Status ReadResponse(std::chrono::steady_clock::time_point deadline,
                          bool has_deadline,
                          const std::atomic<bool>* cancel,
                          ClientResponse* out);
  /// Waits until the socket is readable, `deadline` passes (when
  /// `has_deadline`), or `cancel` reads true; called whenever either
  /// bound exists.
  io::Status WaitReadable(std::chrono::steady_clock::time_point deadline,
                          bool has_deadline,
                          const std::atomic<bool>* cancel);

  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_HTTP_CLIENT_H_
