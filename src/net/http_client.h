#ifndef DSSDDI_NET_HTTP_CLIENT_H_
#define DSSDDI_NET_HTTP_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "io/binary.h"

namespace dssddi::net {

/// What the client got back from one exchange.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  const std::string* FindHeader(const std::string& name) const;
};

/// Tiny blocking HTTP/1.1 client for tests and load generators: one
/// connection, keep-alive reuse, fixed-length bodies only (no chunked).
/// Reads carry a socket timeout so a wedged server fails the exchange
/// instead of hanging the caller. Not thread-safe; use one per thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  io::Status Connect(const std::string& host, int port, int timeout_ms = 5000);

  /// One request/response exchange on the open connection. `body` may be
  /// empty (GET). On success fills `*out`; if the server answered with
  /// `Connection: close` the socket is closed and the next Request needs
  /// a fresh Connect.
  io::Status Request(const std::string& method, const std::string& target,
                     const std::string& body, ClientResponse* out);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  io::Status ReadResponse(ClientResponse* out);

  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_HTTP_CLIENT_H_
