#ifndef DSSDDI_NET_EVENT_LOOP_H_
#define DSSDDI_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace dssddi::net {

/// One epoll instance plus a cross-thread task queue. The owner calls
/// `Run` on a dedicated thread; fd handlers and posted tasks all execute
/// there, so per-connection state needs no locking. Registration is
/// edge-triggered (EPOLLET): handlers must drain their fd (read/write
/// until EAGAIN) on every call.
///
/// `Post` is the only cross-thread entry point besides `Stop`: it queues
/// a closure and wakes the loop via an eventfd. After `Stop`, `Post`
/// returns false and drops the closure — callers holding the loop via
/// shared_ptr (e.g. in-flight response writers) degrade to no-ops
/// instead of touching a dead loop.
class EventLoop {
 public:
  /// Handler for one registered fd; receives the ready epoll event mask.
  using IoHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLET is added implicitly). Must be
  /// called before `Run` or from the loop thread.
  void Add(int fd, uint32_t events, IoHandler handler);
  /// Re-arms `fd` with a new event mask. Loop thread only.
  void Modify(int fd, uint32_t events);
  /// Deregisters `fd` (does not close it). Loop thread only.
  void Remove(int fd);

  /// Blocks dispatching events and posted tasks until Stop.
  void Run();

  /// Thread-safe: wakes the loop and makes Run return after the current
  /// dispatch round. Idempotent.
  void Stop();

  /// Thread-safe: runs `task` on the loop thread (or drops it and
  /// returns false if the loop has been stopped).
  bool Post(std::function<void()> task);

  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  void DrainWakeups();
  void RunPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::atomic<bool> stopping_{false};
  std::thread::id loop_thread_;

  /// Touched from the loop thread only (Add pre-Run is before the thread
  /// starts, which the caller must sequence).
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;

  std::mutex post_mutex_;
  std::deque<std::function<void()>> posted_;
  bool closed_ = false;  // guarded by post_mutex_
};

}  // namespace dssddi::net

#endif  // DSSDDI_NET_EVENT_LOOP_H_
