#include "data/drkg_like.h"

#include <string>

#include "kg/transh.h"
#include "util/rng.h"

namespace dssddi::data {

kg::TripleStore BuildDrkgLikeTriples(const Catalog& catalog,
                                     const graph::SignedGraph& ddi,
                                     const DrkgLikeOptions& options,
                                     std::vector<int>* drug_entity_ids) {
  util::Rng rng(options.seed);
  kg::TripleStore store;

  std::vector<int> drug_ids;
  drug_ids.reserve(catalog.num_drugs());
  for (const auto& drug : catalog.drugs()) {
    drug_ids.push_back(store.AddEntity("drug::" + drug.name));
  }
  std::vector<int> disease_ids;
  disease_ids.reserve(catalog.num_diseases());
  for (const auto& disease : catalog.diseases()) {
    disease_ids.push_back(store.AddEntity("disease::" + disease.name));
  }
  std::vector<int> gene_ids;
  gene_ids.reserve(options.num_genes);
  for (int g = 0; g < options.num_genes; ++g) {
    gene_ids.push_back(store.AddEntity("gene::G" + std::to_string(g)));
  }

  const int rel_treats = store.AddRelation("treats");
  const int rel_targets = store.AddRelation("targets");
  const int rel_associated = store.AddRelation("associated_with");
  const int rel_interacts = store.AddRelation("interacts_with");

  // Drug -> disease facts.
  for (const auto& drug : catalog.drugs()) {
    for (int disease : drug.treats) {
      store.AddTriple(drug_ids[drug.id], rel_treats, disease_ids[disease]);
    }
  }
  // Disease -> genes: a fixed pool per disease so that drugs treating the
  // same disease tend to share targets (mirrors real target overlap).
  std::vector<std::vector<int>> disease_genes(catalog.num_diseases());
  for (int d = 0; d < catalog.num_diseases(); ++d) {
    disease_genes[d] = rng.SampleWithoutReplacement(options.num_genes,
                                                    options.genes_per_disease);
    for (int g : disease_genes[d]) {
      store.AddTriple(gene_ids[g], rel_associated, disease_ids[d]);
    }
  }
  // Drug -> gene targets drawn mostly from its diseases' gene pools.
  for (const auto& drug : catalog.drugs()) {
    for (int t = 0; t < options.targets_per_drug; ++t) {
      int gene;
      if (!drug.treats.empty() && rng.Bernoulli(0.7)) {
        const auto& pool =
            disease_genes[drug.treats[rng.NextBelow(drug.treats.size())]];
        gene = pool[rng.NextBelow(pool.size())];
      } else {
        gene = static_cast<int>(rng.NextBelow(options.num_genes));
      }
      store.AddTriple(drug_ids[drug.id], rel_targets, gene_ids[gene]);
    }
  }
  // Drug-drug interaction facts (sign-agnostic at the KG level, as in DRKG).
  for (const auto& edge : ddi.edges()) {
    if (edge.sign == graph::EdgeSign::kNone) continue;
    store.AddTriple(drug_ids[edge.u], rel_interacts, drug_ids[edge.v]);
  }

  if (drug_entity_ids != nullptr) *drug_entity_ids = drug_ids;
  return store;
}

tensor::Matrix PretrainDrkgLikeEmbeddings(const Catalog& catalog,
                                          const graph::SignedGraph& ddi,
                                          const DrkgLikeOptions& options) {
  std::vector<int> drug_entity_ids;
  const kg::TripleStore store =
      BuildDrkgLikeTriples(catalog, ddi, options, &drug_entity_ids);
  util::Rng rng(options.seed + 1);
  if (options.kg_model == KgModel::kTransH) {
    kg::TransHConfig config;
    config.embedding_dim = options.embedding_dim;
    config.epochs = options.transe_epochs;
    kg::TransHModel model(store.num_entities(), store.num_relations(), config, rng);
    model.Train(store, rng);
    return model.EmbeddingsFor(drug_entity_ids);
  }
  kg::TransEConfig config;
  config.embedding_dim = options.embedding_dim;
  config.epochs = options.transe_epochs;
  kg::TransEModel model(store.num_entities(), store.num_relations(), config, rng);
  model.Train(store, rng);
  return model.EmbeddingsFor(drug_entity_ids);
}

}  // namespace dssddi::data
