#ifndef DSSDDI_DATA_CSV_IO_H_
#define DSSDDI_DATA_CSV_IO_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace dssddi::data {

/// File set of the interchange format: a cohort is four CSVs so clinics
/// can assemble a SuggestionDataset from spreadsheets instead of the
/// built-in generators.
///   patients.csv    patient_id, <one column per feature>
///   medication.csv  patient_id, drug_id            (long format, 0/1)
///   ddi.csv         drug_u, drug_v, sign           (sign in {-1, 1})
///   drugs.csv       drug_id, name, <feature columns, optional>
struct CsvDatasetPaths {
  std::string patients_csv;
  std::string medication_csv;
  std::string ddi_csv;
  std::string drugs_csv;
  /// Optional fifth file for visit histories (consumed by the sequence
  /// baselines SafeDrug/CauseRec on EHR-style data):
  ///   visits.csv   patient_id, visit_index, code_id
  /// Leave empty to skip on both export and import.
  std::string visits_csv;
};

/// How empty feature cells in patients.csv are handled.
enum class MissingPolicy {
  kReject,      // any empty cell is an error (default: safest)
  kZero,        // impute 0
  kColumnMean,  // impute the column mean over the observed cells
};

struct CsvImportOptions {
  /// Split ratios applied after loading (paper uses 5:3:2).
  double train_fraction = 0.5;
  double validation_fraction = 0.3;
  uint64_t split_seed = 532;
  /// Cluster count for the causal treatment construction; <= 0 derives a
  /// heuristic from the drug count.
  int num_diseases = 0;
  std::string dataset_name = "csv";
  /// Imputation policy for empty patient-feature cells. Questionnaire
  /// data is rarely complete; kColumnMean keeps the feature scale while
  /// kZero is appropriate for one-hot history flags.
  MissingPolicy missing_policy = MissingPolicy::kReject;
};

/// Writes the CSVs for `dataset` (four, plus visits.csv when a path is
/// given and the dataset carries visit histories). Feature columns are named f0..fN
/// unless the dataset carries names. Only +1/-1 DDI edges are exported
/// (sampled 0-edges are a training artifact). Returns false and fills
/// `error` on I/O failure.
bool ExportDatasetCsv(const SuggestionDataset& dataset, const CsvDatasetPaths& paths,
                      std::string* error = nullptr);

/// Assembles a SuggestionDataset from the four CSVs. drugs.csv may omit
/// feature columns, in which case drugs get identity features. Validates
/// referential integrity (medication/ddi rows must name known ids) and
/// numeric fields; returns false with a diagnostic in `error` otherwise.
bool LoadDatasetCsv(const CsvDatasetPaths& paths, const CsvImportOptions& options,
                    SuggestionDataset* dataset, std::string* error = nullptr);

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_CSV_IO_H_
