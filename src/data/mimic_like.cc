#include "data/mimic_like.h"

#include <algorithm>
#include <set>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::data {

SuggestionDataset BuildMimicLikeDataset(const MimicLikeOptions& options) {
  util::Rng rng(options.seed);
  const int vocab = options.num_diagnosis_codes + options.num_procedure_codes;

  // --- Anonymous antagonistic-only DDI graph. ---
  std::vector<graph::SignedEdge> ddi_edges;
  std::set<std::pair<int, int>> used;
  while (static_cast<int>(ddi_edges.size()) < options.num_antagonistic) {
    int u = static_cast<int>(rng.NextBelow(options.num_drugs));
    int v = static_cast<int>(rng.NextBelow(options.num_drugs));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!used.insert({u, v}).second) continue;
    ddi_edges.push_back({u, v, graph::EdgeSign::kAntagonistic});
  }

  SuggestionDataset dataset;
  dataset.name = "mimic-like";
  dataset.ddi = graph::SignedGraph(options.num_drugs, std::move(ddi_edges));

  // --- Latent conditions: each owns diagnosis codes, procedure codes and
  // a medication pool biased away from internal antagonism. ---
  struct Condition {
    std::vector<int> diagnosis_codes;
    std::vector<int> procedure_codes;
    std::vector<int> medications;
  };
  std::vector<Condition> conditions(options.num_conditions);
  for (auto& condition : conditions) {
    for (int id : rng.SampleWithoutReplacement(options.num_diagnosis_codes, 8)) {
      condition.diagnosis_codes.push_back(id);
    }
    for (int id : rng.SampleWithoutReplacement(options.num_procedure_codes, 4)) {
      condition.procedure_codes.push_back(options.num_diagnosis_codes + id);
    }
    // Medication pool of 6 drugs, greedily avoiding internal antagonism.
    while (condition.medications.size() < 6) {
      const int drug = static_cast<int>(rng.NextBelow(options.num_drugs));
      bool clashes = false;
      for (int chosen : condition.medications) {
        if (dataset.ddi.SignOf(chosen, drug) == graph::EdgeSign::kAntagonistic) {
          clashes = true;
          break;
        }
      }
      if (clashes && !rng.Bernoulli(0.1)) continue;  // rare contradictions stay
      if (std::find(condition.medications.begin(), condition.medications.end(), drug) !=
          condition.medications.end()) {
        continue;
      }
      condition.medications.push_back(drug);
    }
  }

  // --- Patients. ---
  dataset.patient_features = tensor::Matrix(options.num_patients, vocab, 0.0f);
  dataset.medication = tensor::Matrix(options.num_patients, options.num_drugs, 0.0f);
  dataset.visit_codes.resize(options.num_patients);
  for (int p = 0; p < options.num_patients; ++p) {
    const int num_conditions_here = 1 + static_cast<int>(rng.NextBelow(4));
    const std::vector<int> mine =
        rng.SampleWithoutReplacement(options.num_conditions, num_conditions_here);
    const int visits = options.min_visits +
        static_cast<int>(rng.NextBelow(options.max_visits - options.min_visits + 1));

    // Earlier visits produce feature codes.
    for (int visit = 0; visit + 1 < visits; ++visit) {
      std::vector<int> codes;
      for (int c : mine) {
        for (int code : conditions[c].diagnosis_codes) {
          if (rng.Bernoulli(0.55)) codes.push_back(code);
        }
        for (int code : conditions[c].procedure_codes) {
          if (rng.Bernoulli(0.35)) codes.push_back(code);
        }
      }
      // Noise codes unrelated to any condition.
      for (int k = rng.Poisson(1.2); k > 0; --k) {
        codes.push_back(static_cast<int>(rng.NextBelow(vocab)));
      }
      std::sort(codes.begin(), codes.end());
      codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
      for (int code : codes) dataset.patient_features.At(p, code) = 1.0f;
      dataset.visit_codes[p].push_back(std::move(codes));
    }

    // Last visit: medication labels.
    for (int c : mine) {
      const auto& pool = conditions[c].medications;
      const int take = 2 + static_cast<int>(rng.NextBelow(3));  // 2-4 drugs
      for (int idx : rng.SampleWithoutReplacement(static_cast<int>(pool.size()),
                                                  std::min<int>(take, pool.size()))) {
        dataset.medication.At(p, pool[idx]) = 1.0f;
      }
    }
    // Occasional off-protocol drug.
    if (rng.Bernoulli(0.15)) {
      dataset.medication.At(p, static_cast<int>(rng.NextBelow(options.num_drugs))) = 1.0f;
    }
  }

  // Anonymous drugs: identity features (no pretrained KG available).
  dataset.drug_features = tensor::Matrix::Identity(options.num_drugs);
  dataset.split = MakeSplit(options.num_patients, 0.5, 0.3, options.seed + 9);
  dataset.num_diseases = options.num_conditions;
  dataset.drug_names.reserve(options.num_drugs);
  for (int d = 0; d < options.num_drugs; ++d) {
    dataset.drug_names.push_back("ANON-" + std::to_string(d));
  }
  return dataset;
}

}  // namespace dssddi::data
