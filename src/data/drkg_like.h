#ifndef DSSDDI_DATA_DRKG_LIKE_H_
#define DSSDDI_DATA_DRKG_LIKE_H_

#include <cstdint>

#include "data/catalog.h"
#include "graph/signed_graph.h"
#include "kg/transe.h"
#include "tensor/matrix.h"

namespace dssddi::data {

/// Knowledge-representation model used for the pretraining (the paper
/// cites both TransE — used by DRKG — and TransH).
enum class KgModel {
  kTransE,
  kTransH,
};

struct DrkgLikeOptions {
  /// Synthetic gene entities bridging drugs and diseases (DRKG mixes
  /// drugs with genes/proteins; the paper notes this extra complexity is
  /// why raw KG features underperform DDIGCN in Table II).
  int num_genes = 120;
  int targets_per_drug = 3;
  int genes_per_disease = 6;
  int embedding_dim = 400;  // dimension used by the paper (Section II-B)
  int transe_epochs = 30;   // epochs for either KG model
  KgModel kg_model = KgModel::kTransE;
  uint64_t seed = 777;
};

/// Builds a DRKG-like knowledge graph (drug-treats-disease,
/// drug-targets-gene, gene-associated-disease, drug-interacts-drug) from
/// the catalog + DDI data and pretrains TransE on it. Returns the 86 x dim
/// drug-embedding matrix standing in for the paper's pretrained DRKG
/// features.
tensor::Matrix PretrainDrkgLikeEmbeddings(const Catalog& catalog,
                                          const graph::SignedGraph& ddi,
                                          const DrkgLikeOptions& options = {});

/// Exposes the triple construction for tests.
kg::TripleStore BuildDrkgLikeTriples(const Catalog& catalog,
                                     const graph::SignedGraph& ddi,
                                     const DrkgLikeOptions& options,
                                     std::vector<int>* drug_entity_ids);

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_DRKG_LIKE_H_
