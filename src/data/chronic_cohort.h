#ifndef DSSDDI_DATA_CHRONIC_COHORT_H_
#define DSSDDI_DATA_CHRONIC_COHORT_H_

#include <cstdint>
#include <vector>

#include "data/catalog.h"
#include "graph/signed_graph.h"
#include "tensor/matrix.h"

namespace dssddi::data {

/// Number of questionnaire + laboratory features per participant
/// (paper Section II-A: "we collected a total of 71 features").
inline constexpr int kNumPatientFeatures = 71;

/// One synthesized participant of the chronic-disease study.
struct PatientRecord {
  int gender = 0;  // 1 = male, 0 = female
  float age = 65.0f;
  std::vector<int> diseases;      // catalog disease ids
  std::vector<float> features;    // kNumPatientFeatures values
  std::vector<int> medications;   // catalog drug ids
};

struct ChronicCohortOptions {
  /// Cohort sizes from the paper (Section II-A): 2254 male and 1903
  /// female interview records.
  int num_males = 2254;
  int num_females = 1903;
  uint64_t seed = 2001;  // study initiation year
  /// Multiplicative preference for adding a drug synergistic with one
  /// already prescribed, and aversion for an antagonistic one.
  double synergy_boost = 6.0;
  double antagonism_damping = 0.08;
  /// Probability that a prescription ignores DDI entirely (severe cases,
  /// paper Case 4).
  double ddi_ignored_probability = 0.05;
  /// Sharpness of the latent prescribing preference: higher makes drug
  /// choice within a disease more deterministic given the patient's
  /// latent profile (which leaks into the questionnaire features), i.e.
  /// more learnable for feature-based models.
  double preference_sharpness = 4.0;
  /// Dimension of the latent patient profile.
  int latent_dim = 4;
};

/// Synthesizes a Hong Kong Chronic Disease Study-like cohort. Disease
/// status drives both the 71 features (labs, history, psych assessment)
/// and medication use; medication choice within a disease prefers
/// synergistic and avoids antagonistic combinations, creating the causal
/// DDI → medication-use structure the MD module is designed to learn.
class ChronicCohortGenerator {
 public:
  ChronicCohortGenerator(const Catalog& catalog, const graph::SignedGraph& ddi,
                         const ChronicCohortOptions& options = {});

  std::vector<PatientRecord> Generate() const;

  /// Stacks per-patient features into an (n x 71) matrix.
  static tensor::Matrix FeatureMatrix(const std::vector<PatientRecord>& patients);
  /// Stacks medication use into an (n x num_drugs) 0/1 matrix.
  static tensor::Matrix MedicationMatrix(const std::vector<PatientRecord>& patients,
                                         int num_drugs);

  /// Human-readable names of the 71 features, index-aligned.
  static const std::vector<std::string>& FeatureNames();

 private:
  const Catalog& catalog_;
  const graph::SignedGraph& ddi_;
  ChronicCohortOptions options_;
};

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_CHRONIC_COHORT_H_
