#ifndef DSSDDI_DATA_STANDARDIZE_H_
#define DSSDDI_DATA_STANDARDIZE_H_

#include <vector>

#include "tensor/matrix.h"

namespace dssddi::data {

/// Column-wise standardization fitted on one matrix (the training split)
/// and applied to others (validation/test), so no statistics leak across
/// the split boundary. Columns with ~zero variance are centered only.
///
/// The questionnaire features mix scales (ages ~90, GDS scores ~15,
/// one-hot history flags) — standardizing the training features before
/// model fitting equalizes the gradient contribution per feature.
class Standardizer {
 public:
  Standardizer() = default;

  /// Computes per-column mean and standard deviation of `reference`.
  void Fit(const tensor::Matrix& reference);

  /// (x - mean) / std per column; columns flagged as constant divide by 1.
  tensor::Matrix Transform(const tensor::Matrix& x) const;

  /// Fit + Transform on the same matrix.
  tensor::Matrix FitTransform(const tensor::Matrix& x);

  /// Reverses Transform (x * std + mean).
  tensor::Matrix InverseTransform(const tensor::Matrix& x) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

 private:
  std::vector<float> mean_;
  std::vector<float> stddev_;  // 1.0 for ~constant columns
};

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_STANDARDIZE_H_
