#include "data/molecule.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::data {

tensor::CsrMatrix MoleculeGraph::MessageOperator() const {
  std::vector<int> degree(num_atoms, 1);  // self-loop
  for (auto [u, v] : bonds) {
    ++degree[u];
    ++degree[v];
  }
  std::vector<tensor::SparseEntry> entries;
  for (int a = 0; a < num_atoms; ++a) {
    entries.push_back({a, a, 1.0f / static_cast<float>(degree[a])});
  }
  for (auto [u, v] : bonds) {
    entries.push_back({u, v, 1.0f / static_cast<float>(degree[u])});
    entries.push_back({v, u, 1.0f / static_cast<float>(degree[v])});
  }
  return tensor::CsrMatrix::FromEntries(num_atoms, num_atoms, std::move(entries));
}

std::vector<MoleculeGraph> GenerateMolecules(int count, const MoleculeOptions& options) {
  util::Rng rng(options.seed);
  std::vector<MoleculeGraph> molecules;
  molecules.reserve(count);
  for (int m = 0; m < count; ++m) {
    MoleculeGraph mol;
    mol.num_atoms = options.min_atoms +
        static_cast<int>(rng.NextBelow(options.max_atoms - options.min_atoms + 1));

    // Random spanning tree keeps the molecule connected.
    std::set<std::pair<int, int>> bond_set;
    for (int a = 1; a < mol.num_atoms; ++a) {
      const int parent = static_cast<int>(rng.NextBelow(a));
      bond_set.insert({std::min(parent, a), std::max(parent, a)});
    }
    // Ring closures.
    const int extras = static_cast<int>(options.extra_bond_rate * mol.num_atoms);
    for (int e = 0; e < extras; ++e) {
      int u = static_cast<int>(rng.NextBelow(mol.num_atoms));
      int v = static_cast<int>(rng.NextBelow(mol.num_atoms));
      if (u == v) continue;
      bond_set.insert({std::min(u, v), std::max(u, v)});
    }
    mol.bonds.assign(bond_set.begin(), bond_set.end());

    std::vector<int> degree(mol.num_atoms, 0);
    for (auto [u, v] : mol.bonds) {
      ++degree[u];
      ++degree[v];
    }
    mol.atom_features = tensor::Matrix(mol.num_atoms, kAtomFeatureDim, 0.0f);
    for (int a = 0; a < mol.num_atoms; ++a) {
      const int type = static_cast<int>(rng.NextBelow(kNumAtomTypes));
      mol.atom_features.At(a, type) = 1.0f;
      mol.atom_features.At(a, kNumAtomTypes) =
          static_cast<float>(degree[a]) / 4.0f;  // typical max valence
    }
    molecules.push_back(std::move(mol));
  }
  return molecules;
}

}  // namespace dssddi::data
