#include "data/ddi_database.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::data {

namespace {

std::pair<int, int> Ordered(int a, int b) { return a < b ? std::make_pair(a, b) : std::make_pair(b, a); }

}  // namespace

graph::SignedGraph GenerateDdiDatabase(const Catalog& catalog,
                                       const DdiDatabaseOptions& options) {
  const int n = catalog.num_drugs();
  util::Rng rng(options.seed);
  std::set<std::pair<int, int>> used;
  std::vector<graph::SignedEdge> edges;

  auto add_edge = [&](int u, int v, graph::EdgeSign sign) {
    auto key = Ordered(u, v);
    if (!used.insert(key).second) return false;
    edges.push_back({key.first, key.second, sign});
    return true;
  };

  // --- Interactions pinned by the paper's case studies. ---
  const int doxazosin = catalog.FindDrug("Doxazosin");
  const int terazosin = catalog.FindDrug("Terazosin");
  const int prazosin = catalog.FindDrug("Prazosin");
  const int enalapril = catalog.FindDrug("Enalapril");
  const int perindopril = catalog.FindDrug("Perindopril");
  const int amlodipine = catalog.FindDrug("Amlodipine");
  const int indapamide = catalog.FindDrug("Indapamide");
  const int felodipine = catalog.FindDrug("Felodipine");
  const int simvastatin = catalog.FindDrug("Simvastatin");
  const int atorvastatin = catalog.FindDrug("Atorvastatin");
  const int metformin = catalog.FindDrug("Metformin");
  const int isosorbide_dn = catalog.FindDrug("Isosorbide Dinitrate");
  const int isosorbide_mn = catalog.FindDrug("Isosorbide Mononitrate");
  const int gabapentin = catalog.FindDrug("Gabapentin");
  const int phenytoin = catalog.FindDrug("Phenytoin");
  const int theophylline = catalog.FindDrug("Theophylline");

  int synergistic = 0;
  int antagonistic = 0;
  auto pin_synergy = [&](int u, int v) {
    if (add_edge(u, v, graph::EdgeSign::kSynergistic)) ++synergistic;
  };
  auto pin_antagonism = [&](int u, int v) {
    if (add_edge(u, v, graph::EdgeSign::kAntagonistic)) ++antagonistic;
  };

  pin_synergy(simvastatin, atorvastatin);      // Fig. 8(a)
  pin_synergy(indapamide, perindopril);        // Case 1
  pin_antagonism(isosorbide_mn, gabapentin);   // Fig. 8(a)
  pin_antagonism(gabapentin, doxazosin);       // Fig. 8(e)
  pin_antagonism(enalapril, theophylline);     // Case 2
  pin_antagonism(isosorbide_dn, metformin);    // Case 4
  for (int blocker : {phenytoin, doxazosin, terazosin, prazosin}) {  // Case 3
    pin_antagonism(amlodipine, blocker);
    pin_antagonism(felodipine, blocker);
  }

  // --- Fill synergy: same-indication pairs (combinatorial therapy within
  // a disease family, mirroring DrugCombDB's curation bias). ---
  std::vector<std::pair<int, int>> synergy_pool;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (catalog.ShareIndication(u, v)) synergy_pool.emplace_back(u, v);
    }
  }
  rng.Shuffle(synergy_pool);
  for (const auto& [u, v] : synergy_pool) {
    if (synergistic >= options.num_synergistic) break;
    if (add_edge(u, v, graph::EdgeSign::kSynergistic)) ++synergistic;
  }
  DSSDDI_CHECK(synergistic == options.num_synergistic)
      << "synergy pool exhausted at " << synergistic;

  // --- Fill antagonism: mostly cross-indication pairs (80%), with a
  // minority of same-indication contraindications (20%). ---
  std::vector<std::pair<int, int>> cross_pool;
  std::vector<std::pair<int, int>> same_pool;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (used.count(Ordered(u, v)) != 0) continue;
      (catalog.ShareIndication(u, v) ? same_pool : cross_pool).emplace_back(u, v);
    }
  }
  rng.Shuffle(cross_pool);
  rng.Shuffle(same_pool);
  const int same_target = options.num_antagonistic / 5;
  size_t same_cursor = 0;
  size_t cross_cursor = 0;
  while (antagonistic < options.num_antagonistic) {
    const bool want_same =
        antagonistic < same_target && same_cursor < same_pool.size();
    if (want_same) {
      const auto [u, v] = same_pool[same_cursor++];
      if (add_edge(u, v, graph::EdgeSign::kAntagonistic)) ++antagonistic;
    } else {
      DSSDDI_CHECK(cross_cursor < cross_pool.size()) << "antagonism pool exhausted";
      const auto [u, v] = cross_pool[cross_cursor++];
      if (add_edge(u, v, graph::EdgeSign::kAntagonistic)) ++antagonistic;
    }
  }

  return graph::SignedGraph(n, std::move(edges));
}

}  // namespace dssddi::data
