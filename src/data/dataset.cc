#include "data/dataset.h"

#include "data/ddi_database.h"
#include "data/drkg_like.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::data {

Split MakeSplit(int num_patients, double train_fraction, double validation_fraction,
                uint64_t seed) {
  DSSDDI_CHECK(train_fraction > 0.0 && validation_fraction >= 0.0 &&
               train_fraction + validation_fraction < 1.0)
      << "invalid split fractions";
  std::vector<int> order(num_patients);
  for (int i = 0; i < num_patients; ++i) order[i] = i;
  util::Rng rng(seed);
  rng.Shuffle(order);
  const int train_end = static_cast<int>(num_patients * train_fraction);
  const int val_end = train_end + static_cast<int>(num_patients * validation_fraction);
  Split split;
  split.train.assign(order.begin(), order.begin() + train_end);
  split.validation.assign(order.begin() + train_end, order.begin() + val_end);
  split.test.assign(order.begin() + val_end, order.end());
  return split;
}

SuggestionDataset BuildChronicDataset(const ChronicDatasetOptions& options) {
  const Catalog& catalog = Catalog::Instance();
  SuggestionDataset dataset;
  dataset.name = "chronic";
  dataset.ddi = GenerateDdiDatabase(catalog);

  ChronicCohortGenerator generator(catalog, dataset.ddi, options.cohort);
  const std::vector<PatientRecord> patients = generator.Generate();
  dataset.patient_features = ChronicCohortGenerator::FeatureMatrix(patients);
  dataset.medication =
      ChronicCohortGenerator::MedicationMatrix(patients, catalog.num_drugs());
  dataset.patient_diseases.reserve(patients.size());
  for (const auto& p : patients) dataset.patient_diseases.push_back(p.diseases);

  DrkgLikeOptions kg_options;
  kg_options.embedding_dim = options.kg_embedding_dim;
  kg_options.transe_epochs = options.transe_epochs;
  dataset.drug_features = PretrainDrkgLikeEmbeddings(catalog, dataset.ddi, kg_options);

  dataset.split = MakeSplit(dataset.num_patients(), 0.5, 0.3, options.split_seed);
  dataset.num_diseases = catalog.num_diseases();
  dataset.drug_names.reserve(catalog.num_drugs());
  for (const auto& drug : catalog.drugs()) dataset.drug_names.push_back(drug.name);
  return dataset;
}

}  // namespace dssddi::data
