#ifndef DSSDDI_DATA_MOLECULE_H_
#define DSSDDI_DATA_MOLECULE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace dssddi::data {

/// Synthetic molecular graph for one drug: atoms with one-hot(type) +
/// normalized-degree features, bonds as an undirected edge list. Stands in
/// for the real structures SafeDrug's global MPNN encoder consumes.
struct MoleculeGraph {
  int num_atoms = 0;
  tensor::Matrix atom_features;           // num_atoms x feature dim
  std::vector<std::pair<int, int>> bonds;

  /// Mean-aggregation operator over bonds (row-normalized adjacency with
  /// self-loops) for message passing.
  tensor::CsrMatrix MessageOperator() const;
};

inline constexpr int kNumAtomTypes = 8;
/// Atom feature dimension: one-hot atom type + degree.
inline constexpr int kAtomFeatureDim = kNumAtomTypes + 1;

struct MoleculeOptions {
  int min_atoms = 8;
  int max_atoms = 24;
  /// Extra ring-closing bonds beyond the random spanning tree.
  double extra_bond_rate = 0.35;
  uint64_t seed = 1234;
};

/// Generates `count` random connected molecules (random tree + ring
/// closures), deterministic in the seed. Drugs sharing an id across runs
/// get identical structures.
std::vector<MoleculeGraph> GenerateMolecules(int count, const MoleculeOptions& options = {});

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_MOLECULE_H_
