#ifndef DSSDDI_DATA_DDI_DATABASE_H_
#define DSSDDI_DATA_DDI_DATABASE_H_

#include <cstdint>

#include "data/catalog.h"
#include "graph/signed_graph.h"

namespace dssddi::data {

struct DdiDatabaseOptions {
  /// Pair counts extracted from DrugCombDB in the paper (Section II-C).
  int num_synergistic = 97;
  int num_antagonistic = 243;
  uint64_t seed = 20230304;  // arXiv date of the paper
};

/// Generates a DrugCombDB-like interaction set over the catalog's 86
/// drugs: exactly `num_synergistic` +1 edges and `num_antagonistic` -1
/// edges. Synergy is biased toward drug pairs sharing an indication,
/// antagonism toward cross-indication pairs, and every interaction the
/// paper mentions in its case studies is pinned:
///   * Simvastatin-Atorvastatin synergy and Isosorbide-Gabapentin
///     antagonism (Fig. 8);
///   * Indapamide-Perindopril synergy (Case 1);
///   * Enalapril-Theophylline antagonism (Case 2);
///   * Amlodipine/Felodipine antagonistic to Phenytoin, Doxazosin,
///     Terazosin and Prazosin (Case 3);
///   * Isosorbide Dinitrate-Metformin antagonism (Case 4);
///   * Gabapentin-Doxazosin antagonism (Fig. 8e).
graph::SignedGraph GenerateDdiDatabase(const Catalog& catalog,
                                       const DdiDatabaseOptions& options = {});

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_DDI_DATABASE_H_
