#include "data/standardize.h"

#include <cmath>

#include "util/logging.h"

namespace dssddi::data {

void Standardizer::Fit(const tensor::Matrix& reference) {
  DSSDDI_CHECK(reference.rows() > 0) << "cannot fit on an empty matrix";
  const int cols = reference.cols();
  const int rows = reference.rows();
  mean_.assign(cols, 0.0f);
  stddev_.assign(cols, 1.0f);

  std::vector<double> sum(cols, 0.0);
  std::vector<double> sum_sq(cols, 0.0);
  for (int i = 0; i < rows; ++i) {
    const float* row = reference.RowPtr(i);
    for (int j = 0; j < cols; ++j) {
      sum[j] += row[j];
      sum_sq[j] += static_cast<double>(row[j]) * row[j];
    }
  }
  for (int j = 0; j < cols; ++j) {
    const double mean = sum[j] / rows;
    const double variance = std::max(0.0, sum_sq[j] / rows - mean * mean);
    mean_[j] = static_cast<float>(mean);
    stddev_[j] = variance > 1e-12 ? static_cast<float>(std::sqrt(variance)) : 1.0f;
  }
}

tensor::Matrix Standardizer::Transform(const tensor::Matrix& x) const {
  DSSDDI_CHECK(fitted()) << "Transform before Fit";
  DSSDDI_CHECK(x.cols() == static_cast<int>(mean_.size()))
      << "column count mismatch: " << x.cols() << " vs " << mean_.size();
  tensor::Matrix out = x;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.RowPtr(i);
    for (int j = 0; j < out.cols(); ++j) {
      row[j] = (row[j] - mean_[j]) / stddev_[j];
    }
  }
  return out;
}

tensor::Matrix Standardizer::FitTransform(const tensor::Matrix& x) {
  Fit(x);
  return Transform(x);
}

tensor::Matrix Standardizer::InverseTransform(const tensor::Matrix& x) const {
  DSSDDI_CHECK(fitted()) << "InverseTransform before Fit";
  DSSDDI_CHECK(x.cols() == static_cast<int>(mean_.size())) << "column count mismatch";
  tensor::Matrix out = x;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.RowPtr(i);
    for (int j = 0; j < out.cols(); ++j) {
      row[j] = row[j] * stddev_[j] + mean_[j];
    }
  }
  return out;
}

}  // namespace dssddi::data
