#include "data/chronic_cohort.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"

namespace dssddi::data {

namespace {

// Feature layout (index -> meaning). Kept in one place so FeatureNames()
// and the generator cannot drift apart.
enum FeatureIndex : int {
  kFGender = 0,
  kFAge = 1,
  kFBmi = 2,
  kFSystolicBp = 3,
  kFDiastolicBp = 4,
  kFHeartRate = 5,
  kFFastingGlucose = 6,
  kFHba1c = 7,
  kFTotalCholesterol = 8,
  kFLdl = 9,
  kFHdl = 10,
  kFTriglycerides = 11,
  kFCreatinine = 12,
  kFEgfr = 13,
  kFUrineAlbumin = 14,
  kFGdsScore = 15,
  kFPsychFirst = 16,      // 16..25: ten emotional-state questions
  kFHistoryFirst = 26,    // 26..40: clinical history per disease (15)
  kFAlphaBlockerHistory = 41,
  kFNsaidHistory = 42,
  kFFamilyFirst = 43,     // 43..56: family history per disease (14)
  kFGripStrength = 57,
  kFWalkingSpeed = 58,
  kFSmoking = 59,
  kFDrinking = 60,
  kFExercise = 61,
  kFEducationYears = 62,
  kFLivingAlone = 63,
  kFFallsLastYear = 64,
  kFHospitalAdmissions = 65,
  kFVisionScore = 66,
  kFHearingScore = 67,
  kFMmseScore = 68,
  kFSleepQuality = 69,
  kFPainScore = 70,
};

bool Has(const std::vector<int>& diseases, int id) {
  return std::find(diseases.begin(), diseases.end(), id) != diseases.end();
}

}  // namespace

ChronicCohortGenerator::ChronicCohortGenerator(const Catalog& catalog,
                                               const graph::SignedGraph& ddi,
                                               const ChronicCohortOptions& options)
    : catalog_(catalog), ddi_(ddi), options_(options) {
  DSSDDI_CHECK(ddi.num_vertices() == catalog.num_drugs())
      << "DDI graph must cover the drug catalog";
}

const std::vector<std::string>& ChronicCohortGenerator::FeatureNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>{
        "gender_male",       "age_norm",         "bmi_norm",
        "systolic_bp",       "diastolic_bp",     "heart_rate",
        "fasting_glucose",   "hba1c",            "total_cholesterol",
        "ldl",               "hdl",              "triglycerides",
        "creatinine",        "egfr",             "urine_albumin",
        "gds_score",
    };
    for (int i = 1; i <= 10; ++i) names->push_back("psych_q" + std::to_string(i));
    const auto& catalog = Catalog::Instance();
    for (int d = 0; d < catalog.num_diseases(); ++d) {
      names->push_back("history_" + catalog.disease(d).name);
    }
    names->push_back("ever_taken_alpha_blocker");
    names->push_back("ever_taken_nsaid");
    for (int d = 0; d + 1 < catalog.num_diseases(); ++d) {  // 14 family entries
      names->push_back("family_" + catalog.disease(d).name);
    }
    names->insert(names->end(),
                  {"grip_strength", "walking_speed", "smoking", "drinking",
                   "exercise", "education_years", "living_alone",
                   "falls_last_year", "hospital_admissions", "vision_score",
                   "hearing_score", "mmse_score", "sleep_quality", "pain_score"});
    DSSDDI_CHECK(static_cast<int>(names->size()) == kNumPatientFeatures)
        << "feature-name table out of sync: " << names->size();
    return names;
  }();
  return *kNames;
}

std::vector<PatientRecord> ChronicCohortGenerator::Generate() const {
  util::Rng rng(options_.seed);
  const int total = options_.num_males + options_.num_females;
  std::vector<PatientRecord> patients;
  patients.reserve(total);

  // Prescriber archetypes: the latent patient profile u selects (by
  // nearest centroid — a piecewise, nonlinear partition) one of a small
  // number of archetypes, and each archetype carries its own per-drug
  // preference weights. The latent profile leaks *linearly* into the
  // questionnaire features below, so decoding which drug a patient gets
  // requires capturing the nonlinear archetype structure and drug
  // co-occurrence — which is exactly what collaborative graph models do
  // well and per-drug linear classifiers do not (paper Table I).
  const int latent_dim = options_.latent_dim;
  constexpr int kNumArchetypes = 12;
  util::Rng weight_rng(options_.seed ^ 0xABCDEF);
  std::vector<std::vector<double>> archetype_centroid(kNumArchetypes,
                                                      std::vector<double>(latent_dim));
  for (auto& centroid : archetype_centroid) {
    for (double& c : centroid) c = weight_rng.Normal();
  }
  std::vector<std::vector<double>> archetype_drug_pref(
      kNumArchetypes, std::vector<double>(catalog_.num_drugs()));
  for (auto& row : archetype_drug_pref) {
    for (double& w : row) w = weight_rng.Normal();
  }

  for (int i = 0; i < total; ++i) {
    PatientRecord p;
    p.gender = i < options_.num_males ? 1 : 0;
    p.age = static_cast<float>(std::clamp(65.0 + std::fabs(rng.Normal(0.0, 8.0)), 65.0, 100.0));

    // --- Disease status: marginal prevalence plus comorbidity boosts. ---
    for (const auto& disease : catalog_.diseases()) {
      double prob = disease.prevalence;
      if (disease.id == kProstaticHyperplasia && p.gender == 0) prob = 0.0;
      if (rng.Bernoulli(prob)) p.diseases.push_back(disease.id);
    }
    auto boost = [&](int if_has, int then_add, double prob) {
      if (Has(p.diseases, if_has) && !Has(p.diseases, then_add) && rng.Bernoulli(prob)) {
        p.diseases.push_back(then_add);
      }
    };
    boost(kType2Diabetes, kDiabeticNephropathy, 0.15);
    boost(kType2Diabetes, kHypertension, 0.30);
    boost(kHypertension, kCardiovascularEvents, 0.12);
    boost(kCardiovascularEvents, kEdema, 0.10);
    boost(kErosiveEsophagitis, kGastricUlcer, 0.20);
    if (p.diseases.empty()) {
      // Everyone in the chronic study has at least one condition; draw one
      // proportionally to prevalence.
      std::vector<double> weights;
      for (const auto& disease : catalog_.diseases()) {
        const bool male_only = disease.id == kProstaticHyperplasia;
        weights.push_back(male_only && p.gender == 0 ? 0.0 : disease.prevalence);
      }
      p.diseases.push_back(rng.SampleWeighted(weights));
    }
    std::sort(p.diseases.begin(), p.diseases.end());

    // --- Latent prescribing profile (leaks into the features below). ---
    std::vector<double> latent(latent_dim);
    for (double& u : latent) u = rng.Normal();
    int archetype = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int k = 0; k < kNumArchetypes; ++k) {
      double dist = 0.0;
      for (int j = 0; j < latent_dim; ++j) {
        const double d = latent[j] - archetype_centroid[k][j];
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        archetype = k;
      }
    }
    auto preference_of = [&](int drug) { return archetype_drug_pref[archetype][drug]; };

    // --- Medications: per disease, 1-3 drugs chosen by the latent
    // preference with DDI-aware adjustment (synergy sought, antagonism
    // avoided). ---
    const bool ignores_ddi = rng.Bernoulli(options_.ddi_ignored_probability);
    for (int disease : p.diseases) {
      const auto& candidates = catalog_.DrugsForDisease(disease);
      if (candidates.empty()) continue;
      int want = 1 + rng.Poisson(0.45);
      want = std::min<int>(want, static_cast<int>(candidates.size()));
      for (int pick = 0; pick < want; ++pick) {
        std::vector<double> weights;
        weights.reserve(candidates.size());
        for (int drug : candidates) {
          if (Has(p.medications, drug)) {
            weights.push_back(0.0);
            continue;
          }
          double w = std::exp(options_.preference_sharpness * preference_of(drug));
          if (!ignores_ddi) {
            for (int chosen : p.medications) {
              const auto sign = ddi_.SignOf(chosen, drug);
              if (sign == graph::EdgeSign::kSynergistic) w *= options_.synergy_boost;
              if (sign == graph::EdgeSign::kAntagonistic) w *= options_.antagonism_damping;
            }
          }
          weights.push_back(w);
        }
        double total_weight = 0.0;
        for (double w : weights) total_weight += w;
        if (total_weight <= 0.0) break;
        p.medications.push_back(candidates[rng.SampleWeighted(weights)]);
      }
    }
    std::sort(p.medications.begin(), p.medications.end());
    p.medications.erase(std::unique(p.medications.begin(), p.medications.end()),
                        p.medications.end());

    // --- Features conditioned on disease status. ---
    auto& f = p.features;
    f.assign(kNumPatientFeatures, 0.0f);
    const bool htn = Has(p.diseases, kHypertension);
    const bool cvd = Has(p.diseases, kCardiovascularEvents);
    const bool dm = Has(p.diseases, kType2Diabetes);
    const bool neph = Has(p.diseases, kDiabeticNephropathy);
    const bool anxiety = Has(p.diseases, kAnxietyDisorder);
    const bool arthritis = Has(p.diseases, kArthritis);
    const bool eye = Has(p.diseases, kEyeDiseases);
    auto clamp01 = [](double v) { return static_cast<float>(std::clamp(v, 0.0, 1.0)); };

    f[kFGender] = static_cast<float>(p.gender);
    f[kFAge] = clamp01((p.age - 65.0) / 35.0);
    f[kFBmi] = clamp01(0.45 + 0.05 * dm + 0.03 * htn + rng.Normal(0.0, 0.08));
    f[kFSystolicBp] = clamp01(0.45 + 0.22 * htn + 0.05 * neph + rng.Normal(0.0, 0.07));
    f[kFDiastolicBp] = clamp01(0.45 + 0.15 * htn + rng.Normal(0.0, 0.07));
    f[kFHeartRate] = clamp01(0.50 + 0.08 * cvd + rng.Normal(0.0, 0.08));
    f[kFFastingGlucose] = clamp01(0.35 + 0.30 * dm + rng.Normal(0.0, 0.06));
    f[kFHba1c] = clamp01(0.32 + 0.33 * dm + 0.08 * neph + rng.Normal(0.0, 0.05));
    f[kFTotalCholesterol] = clamp01(0.45 + 0.18 * cvd + rng.Normal(0.0, 0.08));
    f[kFLdl] = clamp01(0.42 + 0.20 * cvd + rng.Normal(0.0, 0.08));
    f[kFHdl] = clamp01(0.55 - 0.12 * cvd - 0.05 * dm + rng.Normal(0.0, 0.07));
    f[kFTriglycerides] = clamp01(0.40 + 0.12 * dm + 0.10 * cvd + rng.Normal(0.0, 0.08));
    f[kFCreatinine] = clamp01(0.35 + 0.30 * neph + rng.Normal(0.0, 0.06));
    f[kFEgfr] = clamp01(0.65 - 0.30 * neph - 0.002 * (p.age - 65.0) + rng.Normal(0.0, 0.06));
    f[kFUrineAlbumin] = clamp01(0.20 + 0.40 * neph + 0.08 * dm + rng.Normal(0.0, 0.06));
    f[kFGdsScore] = clamp01(0.20 + 0.35 * anxiety + 0.05 * cvd + rng.Normal(0.0, 0.08));

    for (int q = 0; q < 10; ++q) {
      const double prob = 0.12 + 0.45 * anxiety + 0.25 * f[kFGdsScore];
      f[kFPsychFirst + q] = rng.Bernoulli(std::min(prob, 0.95)) ? 1.0f : 0.0f;
    }
    for (int d = 0; d < catalog_.num_diseases(); ++d) {
      const double prob = Has(p.diseases, d) ? 0.85 : 0.04;
      f[kFHistoryFirst + d] = rng.Bernoulli(prob) ? 1.0f : 0.0f;
    }
    f[kFAlphaBlockerHistory] =
        rng.Bernoulli(Has(p.diseases, kProstaticHyperplasia) || htn ? 0.35 : 0.03) ? 1.0f : 0.0f;
    f[kFNsaidHistory] = rng.Bernoulli(arthritis ? 0.60 : 0.10) ? 1.0f : 0.0f;
    for (int d = 0; d + 1 < catalog_.num_diseases(); ++d) {
      const double prob = std::min(0.9, catalog_.disease(d).prevalence * 1.5 +
                                            (Has(p.diseases, d) ? 0.10 : 0.0));
      f[kFFamilyFirst + d] = rng.Bernoulli(prob) ? 1.0f : 0.0f;
    }
    f[kFGripStrength] = clamp01(0.35 + 0.20 * p.gender - 0.004 * (p.age - 65.0) +
                                rng.Normal(0.0, 0.07));
    f[kFWalkingSpeed] = clamp01(0.60 - 0.005 * (p.age - 65.0) - 0.05 * arthritis +
                                rng.Normal(0.0, 0.07));
    f[kFSmoking] = rng.Bernoulli(p.gender == 1 ? 0.30 : 0.05) ? 1.0f : 0.0f;
    f[kFDrinking] = rng.Bernoulli(p.gender == 1 ? 0.25 : 0.06) ? 1.0f : 0.0f;
    f[kFExercise] = clamp01(0.5 + rng.Normal(0.0, 0.15) - 0.05 * cvd);
    f[kFEducationYears] = clamp01(0.35 + rng.Normal(0.0, 0.15));
    f[kFLivingAlone] = rng.Bernoulli(0.18) ? 1.0f : 0.0f;
    f[kFFallsLastYear] = clamp01(0.1 * rng.Poisson(0.35 + 0.01 * (p.age - 65.0)));
    f[kFHospitalAdmissions] =
        clamp01(0.12 * rng.Poisson(0.3 + 0.25 * static_cast<double>(p.diseases.size())));
    f[kFVisionScore] = clamp01(0.70 - 0.30 * eye - 0.003 * (p.age - 65.0) +
                               rng.Normal(0.0, 0.06));
    f[kFHearingScore] = clamp01(0.70 - 0.004 * (p.age - 65.0) + rng.Normal(0.0, 0.07));
    f[kFMmseScore] = clamp01(0.80 - 0.004 * (p.age - 65.0) - 0.04 * anxiety +
                             rng.Normal(0.0, 0.06));
    f[kFSleepQuality] = clamp01(0.60 - 0.20 * anxiety - 0.05 * arthritis +
                                rng.Normal(0.0, 0.08));
    f[kFPainScore] = clamp01(0.15 + 0.45 * arthritis + rng.Normal(0.0, 0.07));

    // Leak the latent prescribing profile into continuous measurements
    // (two features per latent coordinate). This is how the real cohort's
    // questionnaire carries drug-level signal: lifestyle and physiology
    // correlate with which drug a doctor selects within a family.
    const int latent_feature_slots[12] = {
        kFBmi, kFHeartRate, kFGdsScore, kFExercise, kFGripStrength,
        kFWalkingSpeed, kFSleepQuality, kFMmseScore, kFEducationYears,
        kFVisionScore, kFHearingScore, kFPainScore};
    for (int j = 0; j < latent_dim && 3 * j + 2 < 12; ++j) {
      f[latent_feature_slots[3 * j]] =
          clamp01(f[latent_feature_slots[3 * j]] + 0.18 * latent[j]);
      f[latent_feature_slots[3 * j + 1]] =
          clamp01(f[latent_feature_slots[3 * j + 1]] - 0.18 * latent[j]);
      f[latent_feature_slots[3 * j + 2]] =
          clamp01(f[latent_feature_slots[3 * j + 2]] + 0.14 * latent[j]);
    }

    patients.push_back(std::move(p));
  }
  return patients;
}

tensor::Matrix ChronicCohortGenerator::FeatureMatrix(
    const std::vector<PatientRecord>& patients) {
  DSSDDI_CHECK(!patients.empty()) << "empty cohort";
  tensor::Matrix x(static_cast<int>(patients.size()), kNumPatientFeatures);
  for (size_t i = 0; i < patients.size(); ++i) {
    DSSDDI_CHECK(patients[i].features.size() == kNumPatientFeatures)
        << "patient " << i << " has wrong feature arity";
    std::copy(patients[i].features.begin(), patients[i].features.end(),
              x.RowPtr(static_cast<int>(i)));
  }
  return x;
}

tensor::Matrix ChronicCohortGenerator::MedicationMatrix(
    const std::vector<PatientRecord>& patients, int num_drugs) {
  tensor::Matrix y(static_cast<int>(patients.size()), num_drugs, 0.0f);
  for (size_t i = 0; i < patients.size(); ++i) {
    for (int drug : patients[i].medications) {
      DSSDDI_CHECK(drug >= 0 && drug < num_drugs) << "drug id out of range";
      y.At(static_cast<int>(i), drug) = 1.0f;
    }
  }
  return y;
}

}  // namespace dssddi::data
