#include "data/catalog.h"

#include "util/logging.h"

namespace dssddi::data {

namespace {

struct DrugSpec {
  const char* name;
  std::vector<int> treats;
};

}  // namespace

const Catalog& Catalog::Instance() {
  static const Catalog* const kCatalog = new Catalog();
  return *kCatalog;
}

Catalog::Catalog() {
  // Fig. 2 prevalences; the diseases present only in Fig. 3 get small
  // marginals. These are marginal probabilities of independent-ish chronic
  // conditions, so they need not sum to one.
  diseases_ = {
      {kHypertension, "Hypertension", 0.49},
      {kCardiovascularEvents, "Cardiovascular Events", 0.22},
      {kArthritis, "Arthritis", 0.03},
      {kErosiveEsophagitis, "Erosive Esophagitis", 0.04},
      {kType2Diabetes, "Type 2 Diabetes Mellitus", 0.11},
      {kDiabeticNephropathy, "Diabetic Nephropathy", 0.02},
      {kSeizures, "Seizures", 0.015},
      {kGastricUlcer, "Gastric or Duodenal Ulcer", 0.06},
      {kEyeDiseases, "Eye Diseases", 0.05},
      {kAnxietyDisorder, "Anxiety Disorder", 0.04},
      {kEdema, "Edema", 0.03},
      {kProstaticHyperplasia, "Prostatic Hyperplasia", 0.02},
      {kAsthma, "Asthma", 0.01},
      {kThromboembolism, "Thromboembolism", 0.01},
      {kOtherDiseases, "Other Diseases", 0.03},
  };

  // 86 drugs. Indices named in the paper's case studies are pinned:
  // 1 Doxazosin, 3 Enalapril, 5 Perindopril, 8 Amlodipine, 10 Indapamide,
  // 32 Felodipine, 46 Simvastatin, 47 Atorvastatin, 48 Metformin,
  // 58/59 Isosorbide Dinitrate/Mononitrate, 61 Gabapentin, 83 Theophylline.
  const std::vector<DrugSpec> specs = {
      /* 0*/ {"Hydrochlorothiazide", {kHypertension, kEdema}},
      /* 1*/ {"Doxazosin", {kHypertension, kProstaticHyperplasia}},
      /* 2*/ {"Terazosin", {kHypertension, kProstaticHyperplasia}},
      /* 3*/ {"Enalapril", {kHypertension}},
      /* 4*/ {"Lisinopril", {kHypertension}},
      /* 5*/ {"Perindopril", {kHypertension, kCardiovascularEvents}},
      /* 6*/ {"Losartan", {kHypertension}},
      /* 7*/ {"Valsartan", {kHypertension}},
      /* 8*/ {"Amlodipine", {kHypertension}},
      /* 9*/ {"Prazosin", {kHypertension, kProstaticHyperplasia}},
      /*10*/ {"Indapamide", {kHypertension, kEdema}},
      /*11*/ {"Atenolol", {kHypertension}},
      /*12*/ {"Metoprolol", {kHypertension, kCardiovascularEvents}},
      /*13*/ {"Nifedipine", {kHypertension}},
      /*14*/ {"Bisoprolol", {kHypertension, kCardiovascularEvents}},
      /*15*/ {"Aspirin", {kCardiovascularEvents, kThromboembolism}},
      /*16*/ {"Clopidogrel", {kCardiovascularEvents, kThromboembolism}},
      /*17*/ {"Ticlopidine", {kCardiovascularEvents}},
      /*18*/ {"Digoxin", {kCardiovascularEvents}},
      /*19*/ {"Amiodarone", {kCardiovascularEvents}},
      /*20*/ {"Diltiazem", {kCardiovascularEvents, kHypertension}},
      /*21*/ {"Verapamil", {kCardiovascularEvents, kHypertension}},
      /*22*/ {"Nitroglycerin", {kCardiovascularEvents}},
      /*23*/ {"Carvedilol", {kCardiovascularEvents, kHypertension}},
      /*24*/ {"Propranolol", {kCardiovascularEvents, kHypertension}},
      /*25*/ {"Warfarin", {kCardiovascularEvents, kThromboembolism}},
      /*26*/ {"Ibuprofen", {kArthritis}},
      /*27*/ {"Naproxen", {kArthritis}},
      /*28*/ {"Diclofenac", {kArthritis}},
      /*29*/ {"Celecoxib", {kArthritis}},
      /*30*/ {"Meloxicam", {kArthritis}},
      /*31*/ {"Indomethacin", {kArthritis}},
      /*32*/ {"Felodipine", {kHypertension}},
      /*33*/ {"Allopurinol", {kArthritis}},
      /*34*/ {"Methotrexate", {kArthritis}},
      /*35*/ {"Sulfasalazine", {kArthritis}},
      /*36*/ {"Omeprazole", {kErosiveEsophagitis, kGastricUlcer}},
      /*37*/ {"Lansoprazole", {kErosiveEsophagitis, kGastricUlcer}},
      /*38*/ {"Pantoprazole", {kErosiveEsophagitis}},
      /*39*/ {"Esomeprazole", {kErosiveEsophagitis}},
      /*40*/ {"Rabeprazole", {kErosiveEsophagitis}},
      /*41*/ {"Ranitidine", {kGastricUlcer, kErosiveEsophagitis}},
      /*42*/ {"Famotidine", {kGastricUlcer}},
      /*43*/ {"Sucralfate", {kGastricUlcer}},
      /*44*/ {"Misoprostol", {kGastricUlcer}},
      /*45*/ {"Domperidone", {kErosiveEsophagitis}},
      /*46*/ {"Simvastatin", {kCardiovascularEvents}},
      /*47*/ {"Atorvastatin", {kCardiovascularEvents}},
      /*48*/ {"Metformin", {kType2Diabetes}},
      /*49*/ {"Gliclazide", {kType2Diabetes}},
      /*50*/ {"Glibenclamide", {kType2Diabetes}},
      /*51*/ {"Glipizide", {kType2Diabetes}},
      /*52*/ {"Sitagliptin", {kType2Diabetes}},
      /*53*/ {"Acarbose", {kType2Diabetes}},
      /*54*/ {"Pioglitazone", {kType2Diabetes}},
      /*55*/ {"Insulin Glargine", {kType2Diabetes, kDiabeticNephropathy}},
      /*56*/ {"Ramipril", {kDiabeticNephropathy, kHypertension}},
      /*57*/ {"Irbesartan", {kDiabeticNephropathy, kHypertension}},
      /*58*/ {"Isosorbide Dinitrate", {kCardiovascularEvents}},
      /*59*/ {"Isosorbide Mononitrate", {kCardiovascularEvents}},
      /*60*/ {"Candesartan", {kDiabeticNephropathy, kHypertension}},
      /*61*/ {"Gabapentin", {kSeizures}},
      /*62*/ {"Carbamazepine", {kSeizures}},
      /*63*/ {"Phenytoin", {kSeizures}},
      /*64*/ {"Sodium Valproate", {kSeizures}},
      /*65*/ {"Lamotrigine", {kSeizures}},
      /*66*/ {"Timolol", {kEyeDiseases}},
      /*67*/ {"Latanoprost", {kEyeDiseases}},
      /*68*/ {"Brimonidine", {kEyeDiseases}},
      /*69*/ {"Dorzolamide", {kEyeDiseases}},
      /*70*/ {"Diazepam", {kAnxietyDisorder}},
      /*71*/ {"Lorazepam", {kAnxietyDisorder}},
      /*72*/ {"Sertraline", {kAnxietyDisorder}},
      /*73*/ {"Furosemide", {kEdema, kCardiovascularEvents}},
      /*74*/ {"Spironolactone", {kEdema, kCardiovascularEvents}},
      /*75*/ {"Bumetanide", {kEdema}},
      /*76*/ {"Finasteride", {kProstaticHyperplasia}},
      /*77*/ {"Tamsulosin", {kProstaticHyperplasia}},
      /*78*/ {"Alfuzosin", {kProstaticHyperplasia}},
      /*79*/ {"Salbutamol", {kAsthma}},
      /*80*/ {"Budesonide", {kAsthma}},
      /*81*/ {"Montelukast", {kAsthma}},
      /*82*/ {"Ipratropium", {kAsthma}},
      /*83*/ {"Theophylline", {kAsthma}},
      /*84*/ {"Dabigatran", {kThromboembolism}},
      /*85*/ {"Calcium Carbonate", {kOtherDiseases}},
  };
  DSSDDI_CHECK(specs.size() == 86) << "catalog must contain exactly 86 drugs";

  drugs_.reserve(specs.size());
  drugs_by_disease_.assign(diseases_.size(), {});
  for (int i = 0; i < static_cast<int>(specs.size()); ++i) {
    DrugInfo info;
    info.id = i;
    info.name = specs[i].name;
    info.treats = specs[i].treats;
    for (int disease : info.treats) drugs_by_disease_[disease].push_back(i);
    drugs_.push_back(std::move(info));
  }
}

bool Catalog::ShareIndication(int drug_a, int drug_b) const {
  for (int da : drugs_[drug_a].treats) {
    for (int db : drugs_[drug_b].treats) {
      if (da == db) return true;
    }
  }
  return false;
}

int Catalog::FindDisease(const std::string& name) const {
  for (const auto& d : diseases_) {
    if (d.name == name) return d.id;
  }
  return -1;
}

int Catalog::FindDrug(const std::string& name) const {
  for (const auto& d : drugs_) {
    if (d.name == name) return d.id;
  }
  return -1;
}

int Catalog::PrimaryDrugCount(int disease) const {
  int count = 0;
  for (const auto& d : drugs_) {
    if (!d.treats.empty() && d.treats.front() == disease) ++count;
  }
  return count;
}

}  // namespace dssddi::data
