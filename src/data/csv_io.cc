#include "data/csv_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "util/csv.h"

namespace dssddi::data {
namespace {

std::string FormatFloat(float value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseFloat(const std::string& text, float* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const float value = std::strtof(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool ExportDatasetCsv(const SuggestionDataset& dataset, const CsvDatasetPaths& paths,
                      std::string* error) {
  // patients.csv
  {
    std::vector<std::string> header = {"patient_id"};
    for (int j = 0; j < dataset.patient_features.cols(); ++j) {
      header.push_back("f" + std::to_string(j));
    }
    util::CsvWriter writer(std::move(header));
    for (int i = 0; i < dataset.num_patients(); ++i) {
      std::vector<std::string> row = {std::to_string(i)};
      for (int j = 0; j < dataset.patient_features.cols(); ++j) {
        row.push_back(FormatFloat(dataset.patient_features.At(i, j)));
      }
      writer.AddRow(std::move(row));
    }
    if (!writer.WriteFile(paths.patients_csv)) {
      return Fail(error, "cannot write " + paths.patients_csv);
    }
  }
  // medication.csv (long format)
  {
    util::CsvWriter writer({"patient_id", "drug_id"});
    for (int i = 0; i < dataset.num_patients(); ++i) {
      for (int v = 0; v < dataset.num_drugs(); ++v) {
        if (dataset.medication.At(i, v) > 0.5f) {
          writer.AddRow({std::to_string(i), std::to_string(v)});
        }
      }
    }
    if (!writer.WriteFile(paths.medication_csv)) {
      return Fail(error, "cannot write " + paths.medication_csv);
    }
  }
  // ddi.csv — interaction edges only (0-edges are resampled at training).
  {
    util::CsvWriter writer({"drug_u", "drug_v", "sign"});
    for (const auto& edge : dataset.ddi.edges()) {
      if (edge.sign == graph::EdgeSign::kNone) continue;
      writer.AddRow({std::to_string(edge.u), std::to_string(edge.v),
                     std::to_string(static_cast<int>(edge.sign))});
    }
    if (!writer.WriteFile(paths.ddi_csv)) {
      return Fail(error, "cannot write " + paths.ddi_csv);
    }
  }
  // visits.csv (optional)
  if (!paths.visits_csv.empty()) {
    util::CsvWriter writer({"patient_id", "visit_index", "code_id"});
    for (size_t i = 0; i < dataset.visit_codes.size(); ++i) {
      for (size_t visit = 0; visit < dataset.visit_codes[i].size(); ++visit) {
        for (int code : dataset.visit_codes[i][visit]) {
          writer.AddRow({std::to_string(i), std::to_string(visit),
                         std::to_string(code)});
        }
      }
    }
    if (!writer.WriteFile(paths.visits_csv)) {
      return Fail(error, "cannot write " + paths.visits_csv);
    }
  }
  // drugs.csv
  {
    std::vector<std::string> header = {"drug_id", "name"};
    for (int j = 0; j < dataset.drug_features.cols(); ++j) {
      header.push_back("k" + std::to_string(j));
    }
    util::CsvWriter writer(std::move(header));
    for (int v = 0; v < dataset.num_drugs(); ++v) {
      std::vector<std::string> row = {
          std::to_string(v),
          v < static_cast<int>(dataset.drug_names.size()) ? dataset.drug_names[v]
                                                          : "drug" + std::to_string(v)};
      for (int j = 0; j < dataset.drug_features.cols(); ++j) {
        row.push_back(FormatFloat(dataset.drug_features.At(v, j)));
      }
      writer.AddRow(std::move(row));
    }
    if (!writer.WriteFile(paths.drugs_csv)) {
      return Fail(error, "cannot write " + paths.drugs_csv);
    }
  }
  return true;
}

bool LoadDatasetCsv(const CsvDatasetPaths& paths, const CsvImportOptions& options,
                    SuggestionDataset* dataset, std::string* error) {
  util::CsvDocument patients, medication, ddi, drugs;
  std::string parse_error;
  if (!util::ReadCsvFile(paths.patients_csv, &patients, &parse_error)) {
    return Fail(error, paths.patients_csv + ": " + parse_error);
  }
  if (!util::ReadCsvFile(paths.medication_csv, &medication, &parse_error)) {
    return Fail(error, paths.medication_csv + ": " + parse_error);
  }
  if (!util::ReadCsvFile(paths.ddi_csv, &ddi, &parse_error)) {
    return Fail(error, paths.ddi_csv + ": " + parse_error);
  }
  if (!util::ReadCsvFile(paths.drugs_csv, &drugs, &parse_error)) {
    return Fail(error, paths.drugs_csv + ": " + parse_error);
  }

  // ---- drugs.csv: ids must be 0..n-1 (any row order). ----
  if (drugs.ColumnIndex("drug_id") != 0 || drugs.ColumnIndex("name") != 1) {
    return Fail(error, paths.drugs_csv + ": header must start drug_id,name");
  }
  const int num_drugs = drugs.num_rows();
  const int drug_feature_dim = drugs.num_columns() - 2;
  SuggestionDataset result;
  result.name = options.dataset_name;
  result.drug_names.assign(num_drugs, "");
  result.drug_features = drug_feature_dim > 0
                             ? tensor::Matrix(num_drugs, drug_feature_dim)
                             : tensor::Matrix::Identity(num_drugs);
  std::vector<char> drug_seen(num_drugs, 0);
  for (const auto& row : drugs.rows) {
    int id = -1;
    if (!ParseInt(row[0], &id) || id < 0 || id >= num_drugs || drug_seen[id]) {
      return Fail(error, paths.drugs_csv + ": bad or duplicate drug_id '" + row[0] +
                             "' (ids must be 0.." + std::to_string(num_drugs - 1) + ")");
    }
    drug_seen[id] = 1;
    result.drug_names[id] = row[1];
    for (int j = 0; j < drug_feature_dim; ++j) {
      float value = 0.0f;
      if (!ParseFloat(row[2 + j], &value)) {
        return Fail(error, paths.drugs_csv + ": bad feature '" + row[2 + j] + "'");
      }
      result.drug_features.At(id, j) = value;
    }
  }

  // ---- patients.csv ----
  if (patients.ColumnIndex("patient_id") != 0 || patients.num_columns() < 2) {
    return Fail(error, paths.patients_csv + ": header must start patient_id,<features>");
  }
  const int num_patients = patients.num_rows();
  const int feature_dim = patients.num_columns() - 1;
  result.patient_features = tensor::Matrix(num_patients, feature_dim);
  std::vector<char> patient_seen(num_patients, 0);
  // Missing-cell bookkeeping for the imputation pass.
  std::vector<std::pair<int, int>> missing_cells;
  std::vector<double> column_sum(feature_dim, 0.0);
  std::vector<long long> column_count(feature_dim, 0);
  for (const auto& row : patients.rows) {
    int id = -1;
    if (!ParseInt(row[0], &id) || id < 0 || id >= num_patients || patient_seen[id]) {
      return Fail(error, paths.patients_csv + ": bad or duplicate patient_id '" +
                             row[0] + "' (ids must be 0.." +
                             std::to_string(num_patients - 1) + ")");
    }
    patient_seen[id] = 1;
    for (int j = 0; j < feature_dim; ++j) {
      if (row[1 + j].empty()) {
        if (options.missing_policy == MissingPolicy::kReject) {
          return Fail(error, paths.patients_csv + ": empty feature cell for patient " +
                                 row[0] + " (set missing_policy to impute)");
        }
        missing_cells.emplace_back(id, j);
        continue;
      }
      float value = 0.0f;
      if (!ParseFloat(row[1 + j], &value)) {
        return Fail(error, paths.patients_csv + ": bad feature '" + row[1 + j] + "'");
      }
      result.patient_features.At(id, j) = value;
      column_sum[j] += value;
      ++column_count[j];
    }
  }
  if (options.missing_policy == MissingPolicy::kColumnMean) {
    for (const auto& [id, j] : missing_cells) {
      result.patient_features.At(id, j) =
          column_count[j] > 0
              ? static_cast<float>(column_sum[j] / static_cast<double>(column_count[j]))
              : 0.0f;
    }
  }  // kZero: cells already default to 0.

  // ---- medication.csv ----
  if (medication.ColumnIndex("patient_id") != 0 ||
      medication.ColumnIndex("drug_id") != 1) {
    return Fail(error, paths.medication_csv + ": header must be patient_id,drug_id");
  }
  result.medication = tensor::Matrix(num_patients, num_drugs, 0.0f);
  for (const auto& row : medication.rows) {
    int patient = -1;
    int drug = -1;
    if (!ParseInt(row[0], &patient) || patient < 0 || patient >= num_patients) {
      return Fail(error, paths.medication_csv + ": unknown patient_id '" + row[0] + "'");
    }
    if (!ParseInt(row[1], &drug) || drug < 0 || drug >= num_drugs) {
      return Fail(error, paths.medication_csv + ": unknown drug_id '" + row[1] + "'");
    }
    result.medication.At(patient, drug) = 1.0f;
  }

  // ---- ddi.csv ----
  if (ddi.ColumnIndex("drug_u") != 0 || ddi.ColumnIndex("drug_v") != 1 ||
      ddi.ColumnIndex("sign") != 2) {
    return Fail(error, paths.ddi_csv + ": header must be drug_u,drug_v,sign");
  }
  std::vector<graph::SignedEdge> edges;
  edges.reserve(ddi.rows.size());
  for (const auto& row : ddi.rows) {
    graph::SignedEdge edge;
    int sign = 0;
    if (!ParseInt(row[0], &edge.u) || edge.u < 0 || edge.u >= num_drugs ||
        !ParseInt(row[1], &edge.v) || edge.v < 0 || edge.v >= num_drugs ||
        edge.u == edge.v) {
      return Fail(error, paths.ddi_csv + ": bad drug pair '" + row[0] + "," + row[1] + "'");
    }
    if (!ParseInt(row[2], &sign) || (sign != -1 && sign != 1)) {
      return Fail(error, paths.ddi_csv + ": sign must be -1 or 1, got '" + row[2] + "'");
    }
    edge.sign = static_cast<graph::EdgeSign>(sign);
    edges.push_back(edge);
  }
  result.ddi = graph::SignedGraph(num_drugs, std::move(edges));

  // ---- visits.csv (optional) ----
  if (!paths.visits_csv.empty()) {
    util::CsvDocument visits;
    if (!util::ReadCsvFile(paths.visits_csv, &visits, &parse_error)) {
      return Fail(error, paths.visits_csv + ": " + parse_error);
    }
    if (visits.ColumnIndex("patient_id") != 0 ||
        visits.ColumnIndex("visit_index") != 1 ||
        visits.ColumnIndex("code_id") != 2) {
      return Fail(error,
                  paths.visits_csv + ": header must be patient_id,visit_index,code_id");
    }
    result.visit_codes.assign(num_patients, {});
    for (const auto& row : visits.rows) {
      int patient = -1;
      int visit = -1;
      int code = -1;
      if (!ParseInt(row[0], &patient) || patient < 0 || patient >= num_patients) {
        return Fail(error, paths.visits_csv + ": unknown patient_id '" + row[0] + "'");
      }
      if (!ParseInt(row[1], &visit) || visit < 0 || visit > 1024) {
        return Fail(error, paths.visits_csv + ": bad visit_index '" + row[1] + "'");
      }
      if (!ParseInt(row[2], &code) || code < 0) {
        return Fail(error, paths.visits_csv + ": bad code_id '" + row[2] + "'");
      }
      auto& patient_visits = result.visit_codes[patient];
      if (static_cast<int>(patient_visits.size()) <= visit) {
        patient_visits.resize(visit + 1);
      }
      patient_visits[visit].push_back(code);
    }
  }

  result.split = MakeSplit(num_patients, options.train_fraction,
                           options.validation_fraction, options.split_seed);
  result.num_diseases =
      options.num_diseases > 0
          ? options.num_diseases
          : std::max(2, static_cast<int>(std::lround(std::sqrt(num_drugs))));
  *dataset = std::move(result);
  return true;
}

}  // namespace dssddi::data
