#ifndef DSSDDI_DATA_DATASET_H_
#define DSSDDI_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/catalog.h"
#include "data/chronic_cohort.h"
#include "graph/signed_graph.h"
#include "tensor/matrix.h"

namespace dssddi::data {

/// Train/validation/test partition over patient indices.
struct Split {
  std::vector<int> train;
  std::vector<int> validation;
  std::vector<int> test;
};

/// Random split by ratio (paper Section V-A2 uses 5:3:2).
Split MakeSplit(int num_patients, double train_fraction, double validation_fraction,
                uint64_t seed);

/// A fully assembled medication-suggestion task instance, shared by the
/// core system, every baseline, and the benchmark harnesses.
struct SuggestionDataset {
  std::string name;
  tensor::Matrix patient_features;   // n x d1
  tensor::Matrix medication;         // n x num_drugs, 0/1
  tensor::Matrix drug_features;      // num_drugs x d2 (pretrained KG features)
  graph::SignedGraph ddi;            // interaction graph over the drugs
  Split split;
  int num_diseases = 0;              // k for patient clustering
  std::vector<std::string> drug_names;
  /// Per-patient disease ids (chronic set only; empty for MIMIC-like).
  std::vector<std::vector<int>> patient_diseases;
  /// Per-patient visit histories as code-id lists (MIMIC-like set only;
  /// consumed by the sequence-based baselines SafeDrug and CauseRec).
  std::vector<std::vector<std::vector<int>>> visit_codes;

  int num_patients() const { return patient_features.rows(); }
  int num_drugs() const { return medication.cols(); }
};

struct ChronicDatasetOptions {
  ChronicCohortOptions cohort;
  uint64_t split_seed = 532;  // the paper's 5:3:2 ratio
  /// Size of the pretrained KG embeddings. The paper uses 400; benches and
  /// tests may shrink this for speed.
  int kg_embedding_dim = 64;
  int transe_epochs = 20;
};

/// Builds the full chronic-study task: DDI database, cohort, DRKG-like
/// pretrained drug features, and the 5:3:2 split.
SuggestionDataset BuildChronicDataset(const ChronicDatasetOptions& options = {});

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_DATASET_H_
