#ifndef DSSDDI_DATA_MIMIC_LIKE_H_
#define DSSDDI_DATA_MIMIC_LIKE_H_

#include <cstdint>

#include "data/dataset.h"

namespace dssddi::data {

struct MimicLikeOptions {
  /// Patient count from the paper (Section V-E): 6350 patients with at
  /// least two visits each.
  int num_patients = 6350;
  int min_visits = 2;
  int max_visits = 4;
  int num_diagnosis_codes = 256;
  int num_procedure_codes = 128;
  int num_drugs = 86;
  /// Latent condition clusters driving codes and medications.
  int num_conditions = 24;
  /// Antagonistic-only anonymous DDI pairs (the public download the paper
  /// used exposes only antagonistic interactions between anonymized
  /// drugs, hence Table IV reports GIN-backbone results only).
  int num_antagonistic = 240;
  uint64_t seed = 20011;
};

/// Synthesizes a MIMIC-III-like EHR task: multi-visit histories where the
/// diagnosis+procedure codes of earlier visits form the features and the
/// last visit's medication list is the label. Also populates
/// SuggestionDataset::visit_codes for the sequence-based baselines
/// (SafeDrug, CauseRec).
SuggestionDataset BuildMimicLikeDataset(const MimicLikeOptions& options = {});

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_MIMIC_LIKE_H_
