#ifndef DSSDDI_DATA_CATALOG_H_
#define DSSDDI_DATA_CATALOG_H_

#include <string>
#include <vector>

namespace dssddi::data {

/// Chronic diseases tracked by the Hong Kong Chronic Disease Study-like
/// cohort. Order and prevalence follow the paper's Fig. 2 (with the
/// additional Fig. 3 diseases given small prevalences).
struct DiseaseInfo {
  int id = 0;
  std::string name;
  /// Marginal probability that a cohort member has the disease.
  double prevalence = 0.0;
};

/// One of the 86 chronic-condition medications (paper Section II-B). The
/// drug ids of every drug the paper names in its case studies (Doxazosin
/// DID 1, Perindopril DID 5, Amlodipine DID 8, Indapamide DID 10,
/// Felodipine DID 32, Simvastatin DID 46, Atorvastatin DID 47, Metformin
/// DID 48, Isosorbide DID 58/59, Gabapentin DID 61, Theophylline DID 83)
/// are preserved so the Fig. 8 / Fig. 9 reproductions read like the paper.
struct DrugInfo {
  int id = 0;
  std::string name;
  /// Diseases this drug treats (first entry is the primary indication).
  std::vector<int> treats;
};

/// Immutable catalog of the 14 diseases + "Other" and the 86 drugs.
class Catalog {
 public:
  /// Builds the canonical catalog (deterministic, no RNG).
  static const Catalog& Instance();

  int num_diseases() const { return static_cast<int>(diseases_.size()); }
  int num_drugs() const { return static_cast<int>(drugs_.size()); }
  const DiseaseInfo& disease(int id) const { return diseases_[id]; }
  const DrugInfo& drug(int id) const { return drugs_[id]; }
  const std::vector<DiseaseInfo>& diseases() const { return diseases_; }
  const std::vector<DrugInfo>& drugs() const { return drugs_; }

  /// Drugs whose indication list contains `disease`.
  const std::vector<int>& DrugsForDisease(int disease) const {
    return drugs_by_disease_[disease];
  }

  /// True iff the two drugs share at least one indication.
  bool ShareIndication(int drug_a, int drug_b) const;

  /// Disease id by name, or -1.
  int FindDisease(const std::string& name) const;
  /// Drug id by name, or -1.
  int FindDrug(const std::string& name) const;

  /// Number of drugs whose *primary* indication is `disease` (the series
  /// plotted in the paper's Fig. 3).
  int PrimaryDrugCount(int disease) const;

 private:
  Catalog();

  std::vector<DiseaseInfo> diseases_;
  std::vector<DrugInfo> drugs_;
  std::vector<std::vector<int>> drugs_by_disease_;
};

/// Canonical disease ids (indices into Catalog::diseases()).
enum DiseaseId : int {
  kHypertension = 0,
  kCardiovascularEvents = 1,
  kArthritis = 2,
  kErosiveEsophagitis = 3,
  kType2Diabetes = 4,
  kDiabeticNephropathy = 5,
  kSeizures = 6,
  kGastricUlcer = 7,
  kEyeDiseases = 8,
  kAnxietyDisorder = 9,
  kEdema = 10,
  kProstaticHyperplasia = 11,
  kAsthma = 12,
  kThromboembolism = 13,
  kOtherDiseases = 14,
};

}  // namespace dssddi::data

#endif  // DSSDDI_DATA_CATALOG_H_
