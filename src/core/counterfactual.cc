#include "core/counterfactual.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "algo/kmeans.h"
#include "util/logging.h"

namespace dssddi::core {

namespace {

/// Distance quantile from a sample of pairs (exact for small n).
double DistanceQuantile(const tensor::Matrix& points, double quantile,
                        util::Rng& rng, int max_samples = 20000) {
  const int n = points.rows();
  DSSDDI_CHECK(n >= 2) << "need at least two points";
  std::vector<double> distances;
  const long long total_pairs = static_cast<long long>(n) * (n - 1) / 2;
  if (total_pairs <= max_samples) {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        distances.push_back(std::sqrt(points.RowSquaredDistance(i, points, j)));
      }
    }
  } else {
    distances.reserve(max_samples);
    for (int s = 0; s < max_samples; ++s) {
      const int i = static_cast<int>(rng.NextBelow(n));
      int j = static_cast<int>(rng.NextBelow(n));
      if (i == j) j = (j + 1) % n;
      distances.push_back(std::sqrt(points.RowSquaredDistance(i, points, j)));
    }
  }
  std::sort(distances.begin(), distances.end());
  const size_t idx = static_cast<size_t>(quantile * (distances.size() - 1));
  return distances[idx];
}

struct Neighbor {
  float distance;
  int index;
  bool operator<(const Neighbor& other) const { return distance < other.distance; }
};

}  // namespace

CounterfactualLinks BuildCounterfactualLinks(const tensor::Matrix& x,
                                             const tensor::Matrix& z,
                                             const tensor::Matrix& y,
                                             const graph::SignedGraph& ddi,
                                             const CounterfactualConfig& config) {
  const int m = x.rows();
  const int num_drugs = z.rows();
  DSSDDI_CHECK(y.rows() == m && y.cols() == num_drugs) << "Y shape mismatch";
  DSSDDI_CHECK(ddi.num_vertices() == num_drugs) << "DDI graph size mismatch";
  util::Rng rng(config.seed);

  CounterfactualLinks links;

  // --- Step 1+2+3: treatment construction. ---
  const int k = std::min(config.num_clusters, m);
  algo::KMeansResult clusters = algo::KMeans(x, k, rng);
  links.cluster_of = clusters.assignments;

  links.treatment = y;  // step 1: observed links
  // Step 2: cluster expansion — any drug observed within a cluster is a
  // treatment for the whole cluster.
  std::vector<std::vector<char>> cluster_drug(k, std::vector<char>(num_drugs, 0));
  for (int i = 0; i < m; ++i) {
    for (int v = 0; v < num_drugs; ++v) {
      if (y.At(i, v) > 0.5f) cluster_drug[links.cluster_of[i]][v] = 1;
    }
  }
  for (int i = 0; i < m; ++i) {
    const auto& drugs = cluster_drug[links.cluster_of[i]];
    for (int v = 0; v < num_drugs; ++v) {
      if (drugs[v]) links.treatment.At(i, v) = 1.0f;
    }
  }
  // Step 3: DDI expansion along synergistic edges. The paper states the
  // constraint T_iu = 1 if e_vu = 1 and T_iv = 1, whose deterministic
  // (order-independent) solution is the closure along synergistic edges —
  // a BFS from each treated drug.
  if (config.expand_treatment_via_ddi) {
    std::vector<int> frontier;
    for (int i = 0; i < m; ++i) {
      frontier.clear();
      for (int v = 0; v < num_drugs; ++v) {
        if (links.treatment.At(i, v) >= 0.5f) frontier.push_back(v);
      }
      while (!frontier.empty()) {
        const int v = frontier.back();
        frontier.pop_back();
        for (int u : ddi.PositiveNeighbors(v)) {
          if (links.treatment.At(i, u) < 0.5f) {
            links.treatment.At(i, u) = 1.0f;
            frontier.push_back(u);
          }
        }
      }
    }
  }

  // --- Distance caps (Eq. 7's gamma_p, gamma_d as quantiles). ---
  const double gamma_p = DistanceQuantile(x, config.patient_distance_quantile, rng);
  const double gamma_d = DistanceQuantile(z, config.drug_distance_quantile, rng);

  // --- Neighbor lists under the caps (self included at distance 0). ---
  std::vector<std::vector<Neighbor>> patient_neighbors(m);
  for (int i = 0; i < m; ++i) {
    patient_neighbors[i].push_back({0.0f, i});
    for (int j = 0; j < m; ++j) {
      if (j == i) continue;
      const float d = std::sqrt(x.RowSquaredDistance(i, x, j));
      if (d < gamma_p) patient_neighbors[i].push_back({d, j});
    }
    std::sort(patient_neighbors[i].begin(), patient_neighbors[i].end());
  }
  std::vector<std::vector<Neighbor>> drug_neighbors(num_drugs);
  for (int v = 0; v < num_drugs; ++v) {
    drug_neighbors[v].push_back({0.0f, v});
    for (int u = 0; u < num_drugs; ++u) {
      if (u == v) continue;
      const float d = std::sqrt(z.RowSquaredDistance(v, z, u));
      if (d < gamma_d) drug_neighbors[v].push_back({d, u});
    }
    std::sort(drug_neighbors[v].begin(), drug_neighbors[v].end());
  }

  // --- Nearest opposite-treatment pair per (patient, drug) (Eq. 7-8). ---
  links.cf_treatment = links.treatment;
  links.cf_outcome = y;
  links.num_matched_pairs = 0;
  for (int i = 0; i < m; ++i) {
    for (int v = 0; v < num_drugs; ++v) {
      const float target = 1.0f - links.treatment.At(i, v);
      float best = std::numeric_limits<float>::infinity();
      int best_j = -1;
      int best_u = -1;
      for (const auto& pn : patient_neighbors[i]) {
        if (pn.distance >= best) break;  // lists are sorted ascending
        for (const auto& dn : drug_neighbors[v]) {
          const float total = pn.distance + dn.distance;
          if (total >= best) break;
          if (links.treatment.At(pn.index, dn.index) == target) {
            best = total;
            best_j = pn.index;
            best_u = dn.index;
            break;  // later drug neighbors are further away
          }
        }
      }
      if (best_j >= 0) {
        links.cf_treatment.At(i, v) = target;
        links.cf_outcome.At(i, v) = y.At(best_j, best_u);
        ++links.num_matched_pairs;
      }
    }
  }
  return links;
}

}  // namespace dssddi::core
