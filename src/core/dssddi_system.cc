#include "core/dssddi_system.h"

#include <algorithm>
#include <cmath>

#include "tensor/init.h"
#include "util/logging.h"

namespace dssddi::core {

std::string DrugEmbeddingSourceName(DrugEmbeddingSource source) {
  switch (source) {
    case DrugEmbeddingSource::kDdigcn: return "DDIGCN";
    case DrugEmbeddingSource::kWithoutDdi: return "w/o DDI";
    case DrugEmbeddingSource::kOneHot: return "One-hot";
    case DrugEmbeddingSource::kKg: return "KG";
  }
  return "?";
}

tensor::Matrix ProjectToDim(const tensor::Matrix& features, int dim, uint64_t seed) {
  if (features.cols() == dim) return features;
  util::Rng rng(seed);
  const tensor::Matrix projection = tensor::GaussianInit(
      features.cols(), dim, 1.0f / std::sqrt(static_cast<float>(features.cols())), rng);
  return features.MatMul(projection);
}

DssddiSystem::DssddiSystem(const DssddiConfig& config) : config_(config) {}

std::string DssddiSystem::name() const {
  if (!config_.display_name.empty()) return config_.display_name;
  return "DSSDDI(" + BackboneName(config_.ddi.backbone) + ")";
}

void DssddiSystem::Fit(const data::SuggestionDataset& dataset) {
  // --- DDI module: learn drug relation embeddings. ---
  tensor::Matrix shared_embeddings;  // empty -> MD module skips sharing
  switch (config_.embedding_source) {
    case DrugEmbeddingSource::kDdigcn: {
      ddi_module_ = std::make_unique<DdiModule>(dataset.ddi, config_.ddi);
      ddi_module_->Train();
      shared_embeddings =
          ProjectToDim(ddi_module_->embeddings(), config_.md.hidden_dim, 101);
      break;
    }
    case DrugEmbeddingSource::kWithoutDdi:
      break;
    case DrugEmbeddingSource::kOneHot:
      shared_embeddings = ProjectToDim(
          tensor::Matrix::Identity(dataset.num_drugs()), config_.md.hidden_dim, 102);
      break;
    case DrugEmbeddingSource::kKg:
      shared_embeddings =
          ProjectToDim(dataset.drug_features, config_.md.hidden_dim, 103);
      break;
  }

  // --- MD module on the observed (training) patients. ---
  const tensor::Matrix x_train = dataset.patient_features.GatherRows(dataset.split.train);
  const tensor::Matrix y_train = dataset.medication.GatherRows(dataset.split.train);
  MdModuleConfig md_config = config_.md;
  md_config.use_ddi_embeddings = !shared_embeddings.empty();
  md_config.counterfactual.num_clusters = dataset.num_diseases;
  // Drug input features: pretrained KG embeddings augmented with one-hot
  // drug IDs, so the drug tower keeps free per-drug capacity even when
  // the KG features are low-rank (see DESIGN.md).
  tensor::Matrix drug_input(dataset.num_drugs(),
                            dataset.drug_features.cols() + dataset.num_drugs(), 0.0f);
  for (int v = 0; v < dataset.num_drugs(); ++v) {
    const float* src = dataset.drug_features.RowPtr(v);
    float* dst = drug_input.RowPtr(v);
    std::copy(src, src + dataset.drug_features.cols(), dst);
    dst[dataset.drug_features.cols() + v] = 1.0f;
  }
  md_module_ = std::make_unique<MdModule>(x_train, y_train, drug_input,
                                          dataset.ddi, shared_embeddings, md_config);
  md_module_->Train();

  // --- MS module over the interaction graph. ---
  ms_module_ = std::make_unique<MsModule>(dataset.ddi, config_.ms_alpha,
                                          config_.ms_explainer);
}

tensor::Matrix DssddiSystem::PredictScores(const data::SuggestionDataset& dataset,
                                           const std::vector<int>& patient_indices) {
  DSSDDI_CHECK(md_module_ != nullptr) << "PredictScores before Fit";
  return md_module_->PredictScores(dataset.patient_features.GatherRows(patient_indices));
}

Suggestion DssddiSystem::Suggest(const data::SuggestionDataset& dataset,
                                 int patient_index, int k) {
  const tensor::Matrix scores = PredictScores(dataset, {patient_index});
  Suggestion suggestion;
  suggestion.drugs = TopKDrugs(scores, 0, k);
  suggestion.scores.reserve(suggestion.drugs.size());
  for (int d : suggestion.drugs) suggestion.scores.push_back(scores.At(0, d));
  suggestion.explanation = ms_module_->Explain(suggestion.drugs);
  return suggestion;
}

}  // namespace dssddi::core
