#ifndef DSSDDI_CORE_DSSDDI_SYSTEM_H_
#define DSSDDI_CORE_DSSDDI_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ddi_module.h"
#include "core/md_module.h"
#include "core/ms_module.h"
#include "core/suggestion_model.h"

namespace dssddi::core {

/// Source of the drug relation embeddings added to the final drug
/// representations — the Table II ablation axis.
enum class DrugEmbeddingSource {
  kDdigcn,   // learned by the DDI module (the full system)
  kWithoutDdi,  // nothing added ("w/o DDI")
  kOneHot,   // one-hot IDs (random-projected to hidden_dim if needed)
  kKg,       // pretrained DRKG-like features (random-projected if needed)
};

std::string DrugEmbeddingSourceName(DrugEmbeddingSource source);

struct DssddiConfig {
  DdiModuleConfig ddi;
  MdModuleConfig md;
  DrugEmbeddingSource embedding_source = DrugEmbeddingSource::kDdigcn;
  double ms_alpha = 0.5;
  /// Subgraph backend for Medical Support explanations.
  ExplainerKind ms_explainer = ExplainerKind::kClosestTrussCommunity;
  /// Display-name suffix, e.g. "DSSDDI(SGCN)".
  std::string display_name;
};

/// One end-to-end suggestion with its Medical Support explanation.
struct Suggestion {
  std::vector<int> drugs;
  std::vector<float> scores;  // aligned with `drugs`
  Explanation explanation;
};

/// The full decision support system (paper Fig. 4): DDI module -> MD
/// module -> MS module, behind the shared SuggestionModel interface.
class DssddiSystem : public SuggestionModel {
 public:
  explicit DssddiSystem(const DssddiConfig& config = {});

  std::string name() const override;
  void Fit(const data::SuggestionDataset& dataset) override;
  tensor::Matrix PredictScores(const data::SuggestionDataset& dataset,
                               const std::vector<int>& patient_indices) override;

  /// Suggests k drugs for one dataset patient, with explanation.
  Suggestion Suggest(const data::SuggestionDataset& dataset, int patient_index,
                     int k);

  const DssddiConfig& config() const { return config_; }

  /// Module access for analysis benches.
  const DdiModule* ddi_module() const { return ddi_module_.get(); }
  const MdModule* md_module() const { return md_module_.get(); }
  const MsModule* ms_module() const { return ms_module_.get(); }

 private:
  DssddiConfig config_;
  std::unique_ptr<DdiModule> ddi_module_;
  std::unique_ptr<MdModule> md_module_;
  std::unique_ptr<MsModule> ms_module_;
};

/// Projects `features` to `dim` columns with a fixed random Gaussian map
/// (identity when dimensions already agree). Used to feed one-hot / KG
/// drug features of mismatched width into the shared-embedding slot.
tensor::Matrix ProjectToDim(const tensor::Matrix& features, int dim, uint64_t seed);

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_DSSDDI_SYSTEM_H_
