#ifndef DSSDDI_CORE_MD_MODULE_H_
#define DSSDDI_CORE_MD_MODULE_H_

#include <cstdint>
#include <vector>

#include "core/counterfactual.h"
#include "graph/bipartite_graph.h"
#include "graph/signed_graph.h"
#include "tensor/matrix.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace dssddi::core {

/// Decoder family for Eq. 14: the paper's MLP over [h_i ⊙ h'_v, T_iv],
/// or a lightweight linear head over [<h_i, h'_v>, T_iv].
enum class MdDecoder { kMlp, kDotLinear };

struct MdModuleConfig {
  int hidden_dim = 64;        // paper: hidden representation size 64
  int num_gcn_layers = 2;     // paper: 2 graph convolution layers for MDGCN
  int epochs = 300;           // paper trains 1000; 300 reaches the same shape
  float learning_rate = 0.01f;  // paper: 0.01 for MDGCN
  float delta = 1.0f;         // counterfactual loss weight (Eq. 18)
  bool use_counterfactual = true;
  /// When false, drops the shared DDI relation embeddings (the "w/o DDI"
  /// ablation of Table II).
  bool use_ddi_embeddings = true;
  /// When false, the decoder sees a zero treatment column (ablation of the
  /// causal treatment feature).
  bool use_treatment_feature = true;
  MdDecoder decoder = MdDecoder::kMlp;
  /// The shared DDI relation embeddings are row-L2-normalized and scaled
  /// by this factor before being added to the final drug representations
  /// (h'_v += scale * z_v / |z_v|). Keeps the external knowledge from
  /// drowning the collaborative structure.
  float ddi_embedding_scale = 0.6f;
  /// Layer-combination weights beta_t; empty selects the paper's
  /// beta_t = 1 / (t + 2).
  std::vector<float> beta;
  CounterfactualConfig counterfactual;
  uint64_t seed = 13;
};

/// The Medical Decision module: MDGCN with counterfactual-link
/// augmentation (paper Section IV-B). The encoder maps patients and drugs
/// into a shared space, propagates drug representations over the observed
/// bipartite graph LightGCN-style, combines layers with beta_t, adds the
/// DDI relation embeddings, and decodes scores with an MLP over
/// [h_i ⊙ h'_v, T_iv]. Patient representations are taken *before*
/// propagation, which is what keeps them differentiated (Fig. 7).
class MdModule {
 public:
  /// `x_observed`: m x d1 features of observed (training) patients.
  /// `y_observed`: m x |V| medication use of observed patients.
  /// `drug_features`: |V| x d2 original drug features (pretrained KG).
  /// `ddi_embeddings`: |V| x hidden relation embeddings from the DDI
  ///     module; pass an empty matrix to disable sharing.
  MdModule(tensor::Matrix x_observed, tensor::Matrix y_observed,
           tensor::Matrix drug_features, const graph::SignedGraph& ddi,
           tensor::Matrix ddi_embeddings, const MdModuleConfig& config);

  /// Runs the training loop (Eq. 16-18); returns the final total loss.
  float Train();

  /// Suggestion scores for arbitrary patients given their raw features
  /// (rows of `x`): returns |x| x |V| sigmoid scores.
  tensor::Matrix PredictScores(const tensor::Matrix& x) const;

  /// Encoder outputs for analysis (Fig. 7): pre-propagation patient
  /// representations for raw features, and the final drug representations.
  tensor::Matrix PatientRepresentations(const tensor::Matrix& x) const;
  const tensor::Matrix& DrugRepresentations() const { return final_drug_reps_; }

  /// Treatment assignment used at inference for new patients (nearest
  /// training cluster, then the cluster's expanded drug set).
  std::vector<float> TreatmentRow(const float* features) const;

  const CounterfactualLinks& links() const { return links_; }

  /// Trained-state accessors for inference export (io::InferenceBundle).
  const MdModuleConfig& config() const { return config_; }
  const tensor::Mlp& patient_fc() const { return patient_fc_; }
  const tensor::Mlp& decoder() const { return decoder_; }
  const tensor::Matrix& cluster_centroids() const { return cluster_centroids_; }
  const tensor::Matrix& cluster_treatment() const { return cluster_treatment_; }

 private:
  tensor::Tensor EncodeDrugsForTraining() const;

  MdModuleConfig config_;
  tensor::Matrix x_observed_;
  tensor::Matrix y_observed_;
  tensor::Matrix drug_features_;
  tensor::Matrix ddi_embeddings_;
  graph::BipartiteGraph bipartite_;
  tensor::CsrMatrix patient_to_drug_;
  tensor::CsrMatrix drug_to_patient_;
  std::vector<float> beta_;

  tensor::Mlp patient_fc_;
  tensor::Mlp drug_fc_;
  tensor::Mlp decoder_;

  CounterfactualLinks links_;
  /// Cluster centroids and per-cluster expanded treatment rows, for
  /// assigning treatments to unseen patients.
  tensor::Matrix cluster_centroids_;
  tensor::Matrix cluster_treatment_;  // k x |V|

  tensor::Matrix final_drug_reps_;
  mutable util::Rng rng_;
};

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_MD_MODULE_H_
