#include "core/backbones.h"

#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace dssddi::core {

namespace {

using tensor::Matrix;
using tensor::Tensor;

/// One-hot drug-ID input features (identity matrix), shared by all
/// backbones per the paper's DDI-module design.
Tensor OneHotInput(int num_drugs) {
  return Tensor::Constant(Matrix::Identity(num_drugs));
}


/// Differentiable transpose (autograd node); used by the attention
/// backbones for q q^T and rank-1 logit construction.
Tensor TransposeTensor(const Tensor& t) {
  auto nt = t.node();
  auto node = std::make_shared<tensor::TensorNode>();
  node->value = nt->value.Transpose();
  node->parents = {nt};
  node->requires_grad = nt->requires_grad;
  node->backward_fn = [nt](tensor::TensorNode& self) {
    if (!(nt->requires_grad)) return;
    nt->EnsureGrad();
    nt->grad.AddInPlace(self.grad.Transpose());
  };
  return Tensor::FromNode(std::move(node));
}

/// GIN backbone (Eq. 1): z <- MLP((1 + eps) z + mean_{u in N(v)} z_u),
/// batch norm + ReLU after each layer (paper Section V-A3).
class GinBackbone : public DdiBackbone {
 public:
  GinBackbone(const graph::SignedGraph& ddi, const BackboneConfig& config,
              util::Rng& rng)
      : mean_adj_(ddi.MeanAdjacency()),
        input_(OneHotInput(ddi.num_vertices())),
        hidden_dim_(config.hidden_dim) {
    int in_dim = ddi.num_vertices();
    for (int layer = 0; layer < config.num_layers; ++layer) {
      mlps_.emplace_back(std::vector<int>{in_dim, config.hidden_dim, config.hidden_dim},
                         rng, tensor::Activation::kRelu);
      norms_.emplace_back(config.hidden_dim);
      eps_.push_back(Tensor::Parameter(Matrix::Scalar(0.0f)));
      in_dim = config.hidden_dim;
    }
  }

  Tensor Forward() override {
    Tensor z = input_;
    for (size_t layer = 0; layer < mlps_.size(); ++layer) {
      const Tensor one_plus_eps = tensor::AddScalar(eps_[layer], 1.0f);
      Tensor pre = tensor::Add(tensor::ScalarMul(z, one_plus_eps),
                               tensor::SpMM(mean_adj_, z));
      z = tensor::Relu(norms_[layer].Forward(mlps_[layer].Forward(pre)));
    }
    return z;
  }

  std::vector<Tensor> Parameters() const override {
    std::vector<Tensor> params;
    for (size_t i = 0; i < mlps_.size(); ++i) {
      auto p = mlps_[i].Parameters();
      params.insert(params.end(), p.begin(), p.end());
      auto n = norms_[i].Parameters();
      params.insert(params.end(), n.begin(), n.end());
      params.push_back(eps_[i]);
    }
    return params;
  }

  int output_dim() const override { return hidden_dim_; }

 private:
  tensor::CsrMatrix mean_adj_;
  Tensor input_;
  int hidden_dim_;
  std::vector<tensor::Mlp> mlps_;
  std::vector<tensor::BatchNormLayer> norms_;
  std::vector<Tensor> eps_;
};

/// SGCN backbone (Eq. 2-4): separate "balanced" (synergistic-path) and
/// "unbalanced" (antagonistic-path) hidden states whose aggregations swap
/// across negative edges; the final embedding concatenates both halves.
class SgcnBackbone : public DdiBackbone {
 public:
  SgcnBackbone(const graph::SignedGraph& ddi, const BackboneConfig& config,
               util::Rng& rng)
      : pos_adj_(ddi.MeanAdjacency(graph::EdgeSign::kSynergistic)),
        neg_adj_(ddi.MeanAdjacency(graph::EdgeSign::kAntagonistic)),
        input_(OneHotInput(ddi.num_vertices())),
        half_dim_(config.hidden_dim / 2) {
    DSSDDI_CHECK(config.hidden_dim % 2 == 0) << "SGCN needs an even hidden dim";
    int in_dim = ddi.num_vertices();
    for (int layer = 0; layer < config.num_layers; ++layer) {
      // Each tower consumes [agg_same, agg_cross, self] = 3 * in_dim for
      // the first layer and 3 * half_dim afterwards.
      const int concat_dim = 3 * in_dim;
      balanced_.emplace_back(concat_dim, half_dim_, rng, tensor::Activation::kTanh);
      unbalanced_.emplace_back(concat_dim, half_dim_, rng, tensor::Activation::kTanh);
      in_dim = half_dim_;
    }
  }

  Tensor Forward() override {
    Tensor hb = input_;
    Tensor hu = input_;
    for (size_t layer = 0; layer < balanced_.size(); ++layer) {
      Tensor hb_in = tensor::ConcatCols(
          tensor::ConcatCols(tensor::SpMM(pos_adj_, hb), tensor::SpMM(neg_adj_, hu)), hb);
      Tensor hu_in = tensor::ConcatCols(
          tensor::ConcatCols(tensor::SpMM(pos_adj_, hu), tensor::SpMM(neg_adj_, hb)), hu);
      hb = balanced_[layer].Forward(hb_in);
      hu = unbalanced_[layer].Forward(hu_in);
    }
    return tensor::ConcatCols(hb, hu);
  }

  std::vector<Tensor> Parameters() const override {
    std::vector<Tensor> params;
    for (size_t i = 0; i < balanced_.size(); ++i) {
      for (const auto& layer : {&balanced_[i], &unbalanced_[i]}) {
        auto p = layer->Parameters();
        params.insert(params.end(), p.begin(), p.end());
      }
    }
    return params;
  }

  int output_dim() const override { return 2 * half_dim_; }

 private:
  tensor::CsrMatrix pos_adj_;
  tensor::CsrMatrix neg_adj_;
  Tensor input_;
  int half_dim_;
  std::vector<tensor::Linear> balanced_;
  std::vector<tensor::Linear> unbalanced_;
};

/// Dense -inf mask with zeros on the given sign's edges and the diagonal
/// (self-attention keeps rows without same-sign neighbors well-defined).
Matrix AttentionMask(const graph::SignedGraph& ddi, graph::EdgeSign sign) {
  const int n = ddi.num_vertices();
  Matrix mask(n, n, -1e9f);
  for (int v = 0; v < n; ++v) mask.At(v, v) = 0.0f;
  const auto neighbors = [&](int v) -> const std::vector<int>& {
    return sign == graph::EdgeSign::kSynergistic ? ddi.PositiveNeighbors(v)
                                                 : ddi.NegativeNeighbors(v);
  };
  for (int v = 0; v < n; ++v) {
    for (int u : neighbors(v)) mask.At(v, u) = 0.0f;
  }
  return mask;
}

/// SiGAT-style backbone: per-sign scaled dot-product attention over the
/// signed neighborhoods, combined through a linear layer.
class SigatBackbone : public DdiBackbone {
 public:
  SigatBackbone(const graph::SignedGraph& ddi, const BackboneConfig& config,
                util::Rng& rng)
      : input_(OneHotInput(ddi.num_vertices())),
        pos_mask_(Tensor::Constant(AttentionMask(ddi, graph::EdgeSign::kSynergistic))),
        neg_mask_(Tensor::Constant(AttentionMask(ddi, graph::EdgeSign::kAntagonistic))),
        hidden_dim_(config.hidden_dim) {
    int in_dim = ddi.num_vertices();
    for (int layer = 0; layer < config.num_layers; ++layer) {
      pos_proj_.emplace_back(in_dim, config.hidden_dim, rng);
      neg_proj_.emplace_back(in_dim, config.hidden_dim, rng);
      combine_.emplace_back(in_dim + 2 * config.hidden_dim, config.hidden_dim, rng,
                            tensor::Activation::kTanh);
      in_dim = config.hidden_dim;
    }
  }

  Tensor Forward() override {
    Tensor h = input_;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim_));
    for (size_t layer = 0; layer < combine_.size(); ++layer) {
      auto attend = [&](const tensor::Linear& proj, const Tensor& mask) {
        Tensor q = proj.Forward(h);
        Tensor logits = tensor::Scale(tensor::MatMul(q, TransposeTensor(q)), scale);
        Tensor att = tensor::RowSoftmax(tensor::Add(logits, mask));
        return tensor::MatMul(att, q);
      };
      Tensor agg_pos = attend(pos_proj_[layer], pos_mask_);
      Tensor agg_neg = attend(neg_proj_[layer], neg_mask_);
      h = combine_[layer].Forward(
          tensor::ConcatCols(tensor::ConcatCols(h, agg_pos), agg_neg));
    }
    return h;
  }

  std::vector<Tensor> Parameters() const override {
    std::vector<Tensor> params;
    for (size_t i = 0; i < combine_.size(); ++i) {
      for (const auto* layer : {&pos_proj_[i], &neg_proj_[i], &combine_[i]}) {
        auto p = layer->Parameters();
        params.insert(params.end(), p.begin(), p.end());
      }
    }
    return params;
  }

  int output_dim() const override { return hidden_dim_; }

 private:
  Tensor input_;
  Tensor pos_mask_;
  Tensor neg_mask_;
  int hidden_dim_;
  std::vector<tensor::Linear> pos_proj_;
  std::vector<tensor::Linear> neg_proj_;
  std::vector<tensor::Linear> combine_;
};

/// SNEA-style backbone: additive (GAT-like) attention with separate
/// source/target attention vectors per sign, LeakyReLU on the logits.
class SneaBackbone : public DdiBackbone {
 public:
  SneaBackbone(const graph::SignedGraph& ddi, const BackboneConfig& config,
               util::Rng& rng)
      : input_(OneHotInput(ddi.num_vertices())),
        pos_mask_(Tensor::Constant(AttentionMask(ddi, graph::EdgeSign::kSynergistic))),
        neg_mask_(Tensor::Constant(AttentionMask(ddi, graph::EdgeSign::kAntagonistic))),
        ones_row_(Tensor::Constant(Matrix::Ones(ddi.num_vertices(), 1))),
        hidden_dim_(config.hidden_dim) {
    int in_dim = ddi.num_vertices();
    for (int layer = 0; layer < config.num_layers; ++layer) {
      pos_proj_.emplace_back(in_dim, config.hidden_dim, rng);
      neg_proj_.emplace_back(in_dim, config.hidden_dim, rng);
      pos_att_src_.push_back(Tensor::Parameter(
          tensor::XavierUniform(config.hidden_dim, 1, rng)));
      pos_att_dst_.push_back(Tensor::Parameter(
          tensor::XavierUniform(config.hidden_dim, 1, rng)));
      neg_att_src_.push_back(Tensor::Parameter(
          tensor::XavierUniform(config.hidden_dim, 1, rng)));
      neg_att_dst_.push_back(Tensor::Parameter(
          tensor::XavierUniform(config.hidden_dim, 1, rng)));
      combine_.emplace_back(2 * config.hidden_dim, config.hidden_dim, rng,
                            tensor::Activation::kTanh);
      in_dim = config.hidden_dim;
    }
  }

  Tensor Forward() override {
    Tensor h = input_;
    for (size_t layer = 0; layer < combine_.size(); ++layer) {
      auto attend = [&](const tensor::Linear& proj, const Tensor& att_src,
                        const Tensor& att_dst, const Tensor& mask) {
        Tensor q = proj.Forward(h);  // n x d
        // logits_{uv} = leakyrelu(a_src^T q_u + a_dst^T q_v):
        // (q a_src) 1^T + 1 (q a_dst)^T via two rank-1 matmuls.
        Tensor src_scores = tensor::MatMul(q, att_src);   // n x 1
        Tensor dst_scores = tensor::MatMul(q, att_dst);   // n x 1
        Tensor logits = tensor::Add(
            tensor::MatMul(src_scores, OnesRowTransposed()),
            tensor::MatMul(ones_row_, TransposeTensor(dst_scores)));
        logits = tensor::LeakyRelu(logits, 0.2f);
        Tensor att = tensor::RowSoftmax(tensor::Add(logits, mask));
        return tensor::MatMul(att, q);
      };
      Tensor agg_pos = attend(pos_proj_[layer], pos_att_src_[layer],
                              pos_att_dst_[layer], pos_mask_);
      Tensor agg_neg = attend(neg_proj_[layer], neg_att_src_[layer],
                              neg_att_dst_[layer], neg_mask_);
      h = combine_[layer].Forward(tensor::ConcatCols(agg_pos, agg_neg));
    }
    return h;
  }

  std::vector<Tensor> Parameters() const override {
    std::vector<Tensor> params;
    for (size_t i = 0; i < combine_.size(); ++i) {
      for (const auto* layer : {&pos_proj_[i], &neg_proj_[i], &combine_[i]}) {
        auto p = layer->Parameters();
        params.insert(params.end(), p.begin(), p.end());
      }
      params.push_back(pos_att_src_[i]);
      params.push_back(pos_att_dst_[i]);
      params.push_back(neg_att_src_[i]);
      params.push_back(neg_att_dst_[i]);
    }
    return params;
  }

  int output_dim() const override { return hidden_dim_; }

 private:
  Tensor OnesRowTransposed() const {
    return Tensor::Constant(Matrix::Ones(1, ones_row_.rows()));
  }

  Tensor input_;
  Tensor pos_mask_;
  Tensor neg_mask_;
  Tensor ones_row_;
  int hidden_dim_;
  std::vector<tensor::Linear> pos_proj_;
  std::vector<tensor::Linear> neg_proj_;
  std::vector<Tensor> pos_att_src_;
  std::vector<Tensor> pos_att_dst_;
  std::vector<Tensor> neg_att_src_;
  std::vector<Tensor> neg_att_dst_;
  std::vector<tensor::Linear> combine_;
};

}  // namespace

std::string BackboneName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kGin: return "GIN";
    case BackboneKind::kSgcn: return "SGCN";
    case BackboneKind::kSigat: return "SiGAT";
    case BackboneKind::kSnea: return "SNEA";
  }
  return "?";
}

std::unique_ptr<DdiBackbone> MakeBackbone(BackboneKind kind,
                                          const graph::SignedGraph& ddi,
                                          const BackboneConfig& config,
                                          util::Rng& rng) {
  switch (kind) {
    case BackboneKind::kGin:
      return std::make_unique<GinBackbone>(ddi, config, rng);
    case BackboneKind::kSgcn:
      return std::make_unique<SgcnBackbone>(ddi, config, rng);
    case BackboneKind::kSigat:
      return std::make_unique<SigatBackbone>(ddi, config, rng);
    case BackboneKind::kSnea:
      return std::make_unique<SneaBackbone>(ddi, config, rng);
  }
  DSSDDI_CHECK(false) << "unknown backbone";
  return nullptr;
}

}  // namespace dssddi::core
