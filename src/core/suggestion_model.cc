#include "core/suggestion_model.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace dssddi::core {

std::vector<int> TopKDrugs(const tensor::Matrix& scores, int row, int k) {
  DSSDDI_CHECK(row >= 0 && row < scores.rows()) << "row out of range";
  const int num_drugs = scores.cols();
  std::vector<int> order(num_drugs);
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, num_drugs);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores.At(row, a) > scores.At(row, b);
  });
  order.resize(k);
  return order;
}

}  // namespace dssddi::core
