#ifndef DSSDDI_CORE_COUNTERFACTUAL_H_
#define DSSDDI_CORE_COUNTERFACTUAL_H_

#include <cstdint>
#include <vector>

#include "graph/signed_graph.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace dssddi::core {

struct CounterfactualConfig {
  /// Number of patient clusters (paper: the number of chronic diseases in
  /// the observed data).
  int num_clusters = 15;
  /// Distance caps gamma_p / gamma_d expressed as quantiles of the
  /// pairwise patient / drug distance distributions (Eq. 7's
  /// hyperparameters, made scale-free).
  double patient_distance_quantile = 0.15;
  double drug_distance_quantile = 0.30;
  /// Step 3 of the treatment construction (one-hop expansion along
  /// synergistic DDI edges). Disable for the ablation bench.
  bool expand_treatment_via_ddi = true;
  uint64_t seed = 7;
};

/// Output of the causal treatment/counterfactual construction of paper
/// Section IV-B1, restricted to the observed (training) patients.
struct CounterfactualLinks {
  /// Treatment matrix T (m x |V|): 1 after the three construction steps
  /// (observed link, cluster expansion, DDI expansion).
  tensor::Matrix treatment;
  /// Counterfactual treatment T^CF and outcome Y^CF (Eq. 8).
  tensor::Matrix cf_treatment;
  tensor::Matrix cf_outcome;
  /// Cluster id per observed patient.
  std::vector<int> cluster_of;
  /// How many pairs found a genuine opposite-treatment nearest neighbour
  /// (the rest default to the factual values).
  int num_matched_pairs = 0;
};

/// Builds treatment and counterfactual matrices.
///   x: m x d1 observed patient features;
///   z: |V| x d2 drug features (original, e.g. pretrained KG);
///   y: m x |V| observed medication use;
///   ddi: interaction graph (synergistic edges drive step 3).
CounterfactualLinks BuildCounterfactualLinks(const tensor::Matrix& x,
                                             const tensor::Matrix& z,
                                             const tensor::Matrix& y,
                                             const graph::SignedGraph& ddi,
                                             const CounterfactualConfig& config);

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_COUNTERFACTUAL_H_
