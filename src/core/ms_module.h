#ifndef DSSDDI_CORE_MS_MODULE_H_
#define DSSDDI_CORE_MS_MODULE_H_

#include <string>
#include <vector>

#include "algo/ctc.h"
#include "graph/signed_graph.h"

namespace dssddi::core {

/// One interaction surfaced by an explanation.
struct InteractionEdge {
  int drug_u = 0;
  int drug_v = 0;
  graph::EdgeSign sign = graph::EdgeSign::kNone;
};

/// Explanation of a drug suggestion (paper Section IV-C): the closest
/// dense DDI subgraph around the suggested drugs, the interactions it
/// exposes, and the Suggestion Satisfaction score.
struct Explanation {
  std::vector<int> suggested_drugs;
  std::vector<int> subgraph_drugs;  // includes the suggested drugs
  /// All synergistic/antagonistic edges inside the subgraph.
  std::vector<InteractionEdge> subgraph_edges;
  /// Interactions among the suggested drugs themselves.
  std::vector<InteractionEdge> synergies_within;
  std::vector<InteractionEdge> antagonisms_within;
  /// Antagonisms between suggested and non-suggested subgraph drugs
  /// (evidence the system steered away from bad partners).
  std::vector<InteractionEdge> antagonisms_outward;
  double suggestion_satisfaction = 0.0;
  /// Truss number of the extracted community (0 under the
  /// densest-subgraph explainer, which does not compute truss).
  int trussness = 0;
  int diameter = 0;
  /// |E| / |V| of the subgraph (filled by the densest-subgraph explainer;
  /// 0 under CTC).
  double density = 0.0;
};

/// Subgraph-extraction backend for explanations. The paper uses the
/// closest truss community; the anchored densest subgraph is an ablation
/// alternative (compared in bench_ms_explainers).
enum class ExplainerKind {
  kClosestTrussCommunity,
  kDensestSubgraph,
};

std::string ExplainerKindName(ExplainerKind kind);

/// The Medical Support module: subgraph querying (closest truss
/// community) + the Suggestion Satisfaction measure (Definition 7).
class MsModule {
 public:
  /// `alpha` balances within-suggestion synergy against outward
  /// antagonism in SS (Eq. 19).
  explicit MsModule(const graph::SignedGraph& ddi, double alpha = 0.5,
                    ExplainerKind explainer = ExplainerKind::kClosestTrussCommunity);

  /// Same, with a prebuilt interaction skeleton instead of deriving it
  /// from `ddi` — the bundle-v4 path hands over a zero-copy CSR view of
  /// the file's graph section (which must equal ddi.InteractionSkeleton()
  /// and outlive this module; the loader validates the former, the
  /// serving snapshot guarantees the latter).
  MsModule(const graph::SignedGraph& ddi, graph::Graph skeleton, double alpha,
           ExplainerKind explainer);

  /// Full explanation for a suggested drug set.
  Explanation Explain(const std::vector<int>& suggested_drugs) const;

  /// Just the SS value (Eq. 19) for a suggested drug set.
  double SuggestionSatisfaction(const std::vector<int>& suggested_drugs) const;

  /// Renders an explanation like the paper's system-output panel
  /// ("Suggestion: ... Explanation: Synergism: ... Antagonism: ...").
  std::string Render(const Explanation& explanation,
                     const std::vector<std::string>& drug_names) const;

  double alpha() const { return alpha_; }
  ExplainerKind explainer() const { return explainer_; }

 private:
  const graph::SignedGraph& ddi_;
  graph::Graph skeleton_;
  double alpha_;
  ExplainerKind explainer_;
};

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_MS_MODULE_H_
