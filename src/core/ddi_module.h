#ifndef DSSDDI_CORE_DDI_MODULE_H_
#define DSSDDI_CORE_DDI_MODULE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backbones.h"
#include "graph/signed_graph.h"
#include "tensor/matrix.h"

namespace dssddi::core {

struct DdiModuleConfig {
  BackboneKind backbone = BackboneKind::kSgcn;
  int hidden_dim = 64;       // paper: hidden representation size 64
  int num_layers = 3;        // paper: 3 graph convolution layers
  int epochs = 400;          // paper: 400 training epochs for DDIGCN
  float learning_rate = 1e-3f;  // paper: 0.001 for DDIGCN
  /// Explicit no-interaction edges sampled into the DDI graph (Section
  /// IV-A1); <= 0 means "as many as the interaction edges".
  int zero_edge_count = -1;
  uint64_t seed = 42;
};

/// The Drug-Drug Interaction module: augments the DDI graph with sampled
/// 0-edges, trains DDIGCN (any backbone) as an edge regressor with MSE on
/// edge signs (Eq. 5-6), and exposes the learned drug relation embeddings
/// that the MD module shares (h'_v += z_v).
class DdiModule {
 public:
  DdiModule(const graph::SignedGraph& ddi, const DdiModuleConfig& config);

  /// Trains for config.epochs; returns the final epoch's MSE.
  float Train();

  /// |V| x hidden drug relation embeddings (after training).
  const tensor::Matrix& embeddings() const { return embeddings_; }

  /// Predicted interaction score for a drug pair (inner product of the
  /// learned embeddings; ~+1 synergy, ~-1 antagonism, ~0 none).
  float PredictInteraction(int drug_u, int drug_v) const;

  /// The augmented training graph (interactions + sampled 0-edges).
  const graph::SignedGraph& training_graph() const { return graph_; }

 private:
  DdiModuleConfig config_;
  graph::SignedGraph graph_;
  std::unique_ptr<DdiBackbone> backbone_;
  util::Rng rng_;
  tensor::Matrix embeddings_;
};

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_DDI_MODULE_H_
