#include "core/ddi_module.h"

#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/logging.h"

namespace dssddi::core {

DdiModule::DdiModule(const graph::SignedGraph& ddi, const DdiModuleConfig& config)
    : config_(config), graph_(ddi), rng_(config.seed) {
  int zero_edges = config.zero_edge_count;
  if (zero_edges < 0) {
    zero_edges = graph_.CountEdges(graph::EdgeSign::kSynergistic) +
                 graph_.CountEdges(graph::EdgeSign::kAntagonistic);
  }
  if (zero_edges > 0) graph_.SampleNoInteractionEdges(zero_edges, rng_);

  BackboneConfig backbone_config;
  backbone_config.hidden_dim = config.hidden_dim;
  backbone_config.num_layers = config.num_layers;
  backbone_ = MakeBackbone(config.backbone, graph_, backbone_config, rng_);
  embeddings_ = tensor::Matrix::Zeros(graph_.num_vertices(), backbone_->output_dim());
}

float DdiModule::Train() {
  // Edge endpoints and sign targets are fixed across epochs.
  std::vector<int> heads;
  std::vector<int> tails;
  tensor::Matrix targets(graph_.num_edges(), 1);
  for (int e = 0; e < graph_.num_edges(); ++e) {
    const auto& edge = graph_.edges()[e];
    heads.push_back(edge.u);
    tails.push_back(edge.v);
    targets.At(e, 0) = static_cast<float>(static_cast<int>(edge.sign));
  }
  const tensor::Tensor target_tensor = tensor::Tensor::Constant(targets);

  tensor::AdamOptimizer optimizer(backbone_->Parameters(), config_.learning_rate);
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    tensor::Tensor z = backbone_->Forward();
    tensor::Tensor scores = tensor::RowDot(tensor::GatherRows(z, heads),
                                           tensor::GatherRows(z, tails));
    tensor::Tensor loss = tensor::MseLoss(scores, target_tensor);
    loss.Backward();
    optimizer.Step();
    last_loss = loss.value().At(0, 0);
  }
  embeddings_ = backbone_->Forward().value();
  return last_loss;
}

float DdiModule::PredictInteraction(int drug_u, int drug_v) const {
  DSSDDI_CHECK(drug_u >= 0 && drug_u < embeddings_.rows()) << "drug id out of range";
  DSSDDI_CHECK(drug_v >= 0 && drug_v < embeddings_.rows()) << "drug id out of range";
  const float* a = embeddings_.RowPtr(drug_u);
  const float* b = embeddings_.RowPtr(drug_v);
  double acc = 0.0;
  for (int j = 0; j < embeddings_.cols(); ++j) acc += static_cast<double>(a[j]) * b[j];
  return static_cast<float>(acc);
}

}  // namespace dssddi::core
