#include "core/md_module.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/logging.h"

namespace dssddi::core {

namespace {

using tensor::Matrix;
using tensor::Tensor;

std::vector<float> DefaultBeta(int num_layers) {
  // Paper Section V-A3: beta_t = 1 / (t + 2), t = 0..T'.
  std::vector<float> beta;
  for (int t = 0; t <= num_layers; ++t) beta.push_back(1.0f / static_cast<float>(t + 2));
  return beta;
}

}  // namespace

MdModule::MdModule(Matrix x_observed, Matrix y_observed, Matrix drug_features,
                   const graph::SignedGraph& ddi, Matrix ddi_embeddings,
                   const MdModuleConfig& config)
    : config_(config),
      x_observed_(std::move(x_observed)),
      y_observed_(std::move(y_observed)),
      drug_features_(std::move(drug_features)),
      ddi_embeddings_(std::move(ddi_embeddings)),
      rng_(config.seed) {
  DSSDDI_CHECK(x_observed_.rows() == y_observed_.rows())
      << "feature/label row mismatch";
  DSSDDI_CHECK(y_observed_.cols() == drug_features_.rows())
      << "drug count mismatch";
  if (config_.use_ddi_embeddings && !ddi_embeddings_.empty()) {
    DSSDDI_CHECK(ddi_embeddings_.cols() == config_.hidden_dim)
        << "DDI relation embeddings must match hidden_dim to be shared";
    DSSDDI_CHECK(ddi_embeddings_.rows() == y_observed_.cols())
        << "DDI relation embeddings must cover all drugs";
    ddi_embeddings_ =
        ddi_embeddings_.RowL2Normalized().Scale(config_.ddi_embedding_scale);
  } else {
    config_.use_ddi_embeddings = false;
  }

  bipartite_ = graph::BipartiteGraph::FromAdjacencyMatrix(y_observed_);
  patient_to_drug_ = bipartite_.NormalizedPatientToDrug();
  drug_to_patient_ = bipartite_.NormalizedDrugToPatient();
  beta_ = config_.beta.empty() ? DefaultBeta(config_.num_gcn_layers) : config_.beta;
  DSSDDI_CHECK(static_cast<int>(beta_.size()) == config_.num_gcn_layers + 1)
      << "beta must have num_gcn_layers + 1 entries";

  // Eq. 9-10: fully connected encoders mapping patients and drugs to the
  // shared hidden dimension; two layers with LeakyReLU (Section V-A3).
  patient_fc_ = tensor::Mlp({x_observed_.cols(), config_.hidden_dim, config_.hidden_dim},
                            rng_, tensor::Activation::kLeakyRelu,
                            tensor::Activation::kLeakyRelu);
  drug_fc_ = tensor::Mlp({drug_features_.cols(), config_.hidden_dim, config_.hidden_dim},
                         rng_, tensor::Activation::kLeakyRelu,
                         tensor::Activation::kLeakyRelu);
  if (config_.decoder == MdDecoder::kMlp) {
    decoder_ = tensor::Mlp({config_.hidden_dim + 1, config_.hidden_dim, 1}, rng_,
                           tensor::Activation::kRelu);
  } else {
    decoder_ = tensor::Mlp({2, 1}, rng_);
    // Start near the identity on the inner-product coordinate so the
    // linear head behaves like a calibrated dot-product decoder.
    decoder_.Parameters()[0].mutable_value().At(0, 0) = 1.0f;
  }

  // Causal treatment + counterfactual construction over observed data.
  links_ = BuildCounterfactualLinks(x_observed_, drug_features_, y_observed_, ddi,
                                    config_.counterfactual);

  // Cluster centroids + per-cluster treatment rows for unseen patients.
  const int k = 1 + *std::max_element(links_.cluster_of.begin(), links_.cluster_of.end());
  cluster_centroids_ = Matrix(k, x_observed_.cols(), 0.0f);
  cluster_treatment_ = Matrix(k, y_observed_.cols(), 0.0f);
  std::vector<int> counts(k, 0);
  for (int i = 0; i < x_observed_.rows(); ++i) {
    const int c = links_.cluster_of[i];
    ++counts[c];
    for (int j = 0; j < x_observed_.cols(); ++j) {
      cluster_centroids_.At(c, j) += x_observed_.At(i, j);
    }
    for (int v = 0; v < y_observed_.cols(); ++v) {
      if (links_.treatment.At(i, v) > 0.5f) cluster_treatment_.At(c, v) = 1.0f;
    }
  }
  for (int c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (int j = 0; j < x_observed_.cols(); ++j) {
      cluster_centroids_.At(c, j) /= static_cast<float>(counts[c]);
    }
  }
}

Tensor MdModule::EncodeDrugsForTraining() const {
  Tensor h_patients = patient_fc_.Forward(Tensor::Constant(x_observed_));
  Tensor h_drugs = drug_fc_.Forward(Tensor::Constant(drug_features_));
  Tensor current_p = h_patients;
  Tensor current_d = h_drugs;
  Tensor combined = tensor::Scale(h_drugs, beta_[0]);
  for (int t = 1; t <= config_.num_gcn_layers; ++t) {
    Tensor next_d = tensor::SpMM(drug_to_patient_, current_p);
    Tensor next_p = tensor::SpMM(patient_to_drug_, current_d);
    current_d = next_d;
    current_p = next_p;
    combined = tensor::Add(combined, tensor::Scale(current_d, beta_[t]));
  }
  if (config_.use_ddi_embeddings) {
    combined = tensor::Add(combined, Tensor::Constant(ddi_embeddings_));
  }
  return combined;
}

float MdModule::Train() {
  const int m = x_observed_.rows();
  const int num_drugs = y_observed_.cols();

  // Fixed positive edges.
  std::vector<int> pos_patients;
  std::vector<int> pos_drugs;
  for (int i = 0; i < m; ++i) {
    for (int v : bipartite_.DrugsOf(i)) {
      pos_patients.push_back(i);
      pos_drugs.push_back(v);
    }
  }
  const int num_pos = static_cast<int>(pos_patients.size());
  DSSDDI_CHECK(num_pos > 0) << "no observed medication links";

  std::vector<Tensor> params = tensor::ConcatParams(
      {patient_fc_.Parameters(), drug_fc_.Parameters(), decoder_.Parameters()});
  tensor::AdamOptimizer optimizer(std::move(params), config_.learning_rate);

  float last_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // 1:1 negative sampling, resampled each epoch.
    std::vector<int> edge_patients = pos_patients;
    std::vector<int> edge_drugs = pos_drugs;
    for (int s = 0; s < num_pos; ++s) {
      const int i = pos_patients[s];
      int v = static_cast<int>(rng_.NextBelow(num_drugs));
      for (int attempt = 0; attempt < 16 && bipartite_.HasEdge(i, v); ++attempt) {
        v = static_cast<int>(rng_.NextBelow(num_drugs));
      }
      edge_patients.push_back(i);
      edge_drugs.push_back(v);
    }
    const int num_edges = static_cast<int>(edge_patients.size());

    Matrix factual_targets(num_edges, 1);
    Matrix factual_treatment(num_edges, 1);
    Matrix cf_targets(num_edges, 1);
    Matrix cf_treatment(num_edges, 1);
    for (int e = 0; e < num_edges; ++e) {
      const int i = edge_patients[e];
      const int v = edge_drugs[e];
      factual_targets.At(e, 0) = y_observed_.At(i, v);
      factual_treatment.At(e, 0) =
          config_.use_treatment_feature ? links_.treatment.At(i, v) : 0.0f;
      cf_targets.At(e, 0) = links_.cf_outcome.At(i, v);
      cf_treatment.At(e, 0) =
          config_.use_treatment_feature ? links_.cf_treatment.At(i, v) : 0.0f;
    }

    optimizer.ZeroGrad();
    Tensor h_patients = patient_fc_.Forward(Tensor::Constant(x_observed_));
    Tensor h_drugs_final = EncodeDrugsForTraining();
    Tensor edge_p = tensor::GatherRows(h_patients, edge_patients);
    Tensor edge_d = tensor::GatherRows(h_drugs_final, edge_drugs);
    Tensor interaction = config_.decoder == MdDecoder::kMlp
        ? tensor::Mul(edge_p, edge_d)
        : tensor::RowDot(edge_p, edge_d);

    Tensor factual_logits = decoder_.Forward(
        tensor::ConcatCols(interaction, Tensor::Constant(factual_treatment)));
    Tensor loss = tensor::BceWithLogitsLoss(factual_logits,
                                            Tensor::Constant(factual_targets));
    if (config_.use_counterfactual) {
      Tensor cf_logits = decoder_.Forward(
          tensor::ConcatCols(interaction, Tensor::Constant(cf_treatment)));
      Tensor cf_loss =
          tensor::BceWithLogitsLoss(cf_logits, Tensor::Constant(cf_targets));
      loss = tensor::Add(loss, tensor::Scale(cf_loss, config_.delta));
    }
    loss.Backward();
    optimizer.Step();
    last_loss = loss.value().At(0, 0);
  }

  final_drug_reps_ = EncodeDrugsForTraining().value();
  return last_loss;
}

std::vector<float> MdModule::TreatmentRow(const float* features) const {
  // Nearest cluster centroid by Euclidean distance.
  int best_cluster = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int c = 0; c < cluster_centroids_.rows(); ++c) {
    double dist = 0.0;
    const float* centroid = cluster_centroids_.RowPtr(c);
    for (int j = 0; j < cluster_centroids_.cols(); ++j) {
      const double d = static_cast<double>(features[j]) - centroid[j];
      dist += d * d;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best_cluster = c;
    }
  }
  std::vector<float> row(cluster_treatment_.cols());
  const float* src = cluster_treatment_.RowPtr(best_cluster);
  std::copy(src, src + cluster_treatment_.cols(), row.begin());
  return row;
}

tensor::Matrix MdModule::PredictScores(const Matrix& x) const {
  DSSDDI_CHECK(!final_drug_reps_.empty()) << "PredictScores before Train";
  const int num_patients = x.rows();
  const int num_drugs = final_drug_reps_.rows();
  const Matrix h_patients = patient_fc_.Forward(Tensor::Constant(x)).value();

  // Build the full patient x drug interaction block.
  const bool mlp = config_.decoder == MdDecoder::kMlp;
  const int interaction_dim = mlp ? config_.hidden_dim : 1;
  Matrix decoder_input(num_patients * num_drugs, interaction_dim + 1);
  for (int i = 0; i < num_patients; ++i) {
    const std::vector<float> treatment = TreatmentRow(x.RowPtr(i));
    const float* hp = h_patients.RowPtr(i);
    for (int v = 0; v < num_drugs; ++v) {
      float* row = decoder_input.RowPtr(i * num_drugs + v);
      const float* hd = final_drug_reps_.RowPtr(v);
      if (mlp) {
        for (int j = 0; j < config_.hidden_dim; ++j) row[j] = hp[j] * hd[j];
      } else {
        double acc = 0.0;
        for (int j = 0; j < config_.hidden_dim; ++j) acc += static_cast<double>(hp[j]) * hd[j];
        row[0] = static_cast<float>(acc);
      }
      row[interaction_dim] = config_.use_treatment_feature ? treatment[v] : 0.0f;
    }
  }
  const Matrix logits = decoder_.Forward(Tensor::Constant(decoder_input)).value();
  Matrix scores(num_patients, num_drugs);
  for (int i = 0; i < num_patients; ++i) {
    for (int v = 0; v < num_drugs; ++v) {
      scores.At(i, v) = 1.0f / (1.0f + std::exp(-logits.At(i * num_drugs + v, 0)));
    }
  }
  return scores;
}

tensor::Matrix MdModule::PatientRepresentations(const Matrix& x) const {
  return patient_fc_.Forward(Tensor::Constant(x)).value();
}

}  // namespace dssddi::core
