#ifndef DSSDDI_CORE_SUGGESTION_MODEL_H_
#define DSSDDI_CORE_SUGGESTION_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace dssddi::core {

/// Common interface for every medication-suggestion method (DSSDDI and
/// all baselines), consumed by the evaluation harness: fit on the
/// dataset's training split, then score arbitrary patients.
class SuggestionModel {
 public:
  virtual ~SuggestionModel() = default;

  virtual std::string name() const = 0;

  /// Trains on dataset.split.train.
  virtual void Fit(const data::SuggestionDataset& dataset) = 0;

  /// Scores for the given patients: |indices| x num_drugs, larger = more
  /// strongly suggested. Indices refer to dataset rows (typically the
  /// test split, i.e. unobserved patients).
  virtual tensor::Matrix PredictScores(const data::SuggestionDataset& dataset,
                                       const std::vector<int>& patient_indices) = 0;
};

/// Top-k drug ids for one score row (descending score, stable ties).
std::vector<int> TopKDrugs(const tensor::Matrix& scores, int row, int k);

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_SUGGESTION_MODEL_H_
