#include "core/ms_module.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "algo/bfs.h"
#include "algo/densest.h"
#include "util/logging.h"

namespace dssddi::core {

std::string ExplainerKindName(ExplainerKind kind) {
  switch (kind) {
    case ExplainerKind::kClosestTrussCommunity: return "closest-truss-community";
    case ExplainerKind::kDensestSubgraph: return "densest-subgraph";
  }
  return "unknown";
}

MsModule::MsModule(const graph::SignedGraph& ddi, double alpha,
                   ExplainerKind explainer)
    : MsModule(ddi, ddi.InteractionSkeleton(), alpha, explainer) {}

MsModule::MsModule(const graph::SignedGraph& ddi, graph::Graph skeleton,
                   double alpha, ExplainerKind explainer)
    : ddi_(ddi),
      skeleton_(std::move(skeleton)),
      alpha_(alpha),
      explainer_(explainer) {
  DSSDDI_CHECK(alpha > 0.0 && alpha < 1.0) << "alpha must lie in (0, 1)";
  DSSDDI_CHECK(skeleton_.num_vertices() == ddi.num_vertices())
      << "skeleton vertex count disagrees with the DDI graph";
}

Explanation MsModule::Explain(const std::vector<int>& suggested_drugs) const {
  Explanation exp;
  exp.suggested_drugs = suggested_drugs;
  std::vector<char> is_suggested(ddi_.num_vertices(), 0);
  for (int d : suggested_drugs) {
    DSSDDI_CHECK(d >= 0 && d < ddi_.num_vertices()) << "drug id out of range";
    is_suggested[d] = 1;
  }

  // Interactions among the suggested drugs come straight from the DDI
  // graph (they exist whether or not the dense subgraph retains them).
  for (size_t a = 0; a < suggested_drugs.size(); ++a) {
    for (size_t b = a + 1; b < suggested_drugs.size(); ++b) {
      const int u = suggested_drugs[a];
      const int v = suggested_drugs[b];
      const auto sign = ddi_.SignOf(u, v);
      if (sign == graph::EdgeSign::kSynergistic) {
        exp.synergies_within.push_back({u, v, sign});
      } else if (sign == graph::EdgeSign::kAntagonistic) {
        exp.antagonisms_within.push_back({u, v, sign});
      }
    }
  }

  // Dense subgraph around the suggestion, via the configured backend.
  // Query vertices isolated in the skeleton cannot be connected; fall
  // back to the suggestion itself in that case.
  if (explainer_ == ExplainerKind::kClosestTrussCommunity) {
    const algo::ClosestTrussCommunity ctc =
        algo::FindClosestTrussCommunity(skeleton_, suggested_drugs);
    if (ctc.found) {
      exp.subgraph_drugs = ctc.vertices;
      exp.trussness = ctc.trussness;
      exp.diameter = ctc.diameter;
      for (int e : ctc.edge_ids) {
        auto [u, v] = skeleton_.Edge(e);
        exp.subgraph_edges.push_back({u, v, ddi_.SignOf(u, v)});
      }
    } else {
      exp.subgraph_drugs = suggested_drugs;
    }
  } else {
    const algo::DenseSubgraph dense =
        algo::AnchoredDensestSubgraph(skeleton_, suggested_drugs);
    exp.subgraph_drugs = dense.vertices;
    exp.density = dense.density;
    for (int e : dense.edge_ids) {
      auto [u, v] = skeleton_.Edge(e);
      exp.subgraph_edges.push_back({u, v, ddi_.SignOf(u, v)});
    }
    std::vector<char> alive(skeleton_.num_vertices(), 0);
    for (int v : dense.vertices) alive[v] = 1;
    exp.diameter = algo::Diameter(skeleton_, alive);
  }
  // Make sure every suggested drug is in the reported subgraph.
  for (int d : suggested_drugs) {
    if (std::find(exp.subgraph_drugs.begin(), exp.subgraph_drugs.end(), d) ==
        exp.subgraph_drugs.end()) {
      exp.subgraph_drugs.push_back(d);
    }
  }

  // Outward antagonisms: suggested vs non-suggested drugs of the subgraph.
  for (int u : suggested_drugs) {
    for (int w : exp.subgraph_drugs) {
      if (is_suggested[w]) continue;
      if (ddi_.SignOf(u, w) == graph::EdgeSign::kAntagonistic) {
        exp.antagonisms_outward.push_back({u, w, graph::EdgeSign::kAntagonistic});
      }
    }
  }

  // Suggestion Satisfaction (Eq. 19).
  const double k = static_cast<double>(suggested_drugs.size());
  const double n_prime = static_cast<double>(exp.subgraph_drugs.size());
  const double r_in_pos = static_cast<double>(exp.synergies_within.size());
  const double r_in_neg = static_cast<double>(exp.antagonisms_within.size());
  const double r_out_neg = static_cast<double>(exp.antagonisms_outward.size());
  const double first =
      alpha_ * 2.0 * (r_in_pos + 1.0) / ((r_in_neg + 1.0) * (k * (k - 1.0) + 2.0));
  const double second =
      n_prime > k ? (1.0 - alpha_) * r_out_neg / (k * (n_prime - k)) : 0.0;
  exp.suggestion_satisfaction = first + second;
  return exp;
}

double MsModule::SuggestionSatisfaction(const std::vector<int>& suggested_drugs) const {
  return Explain(suggested_drugs).suggestion_satisfaction;
}

std::string MsModule::Render(const Explanation& exp,
                             const std::vector<std::string>& drug_names) const {
  auto name = [&](int d) {
    return d < static_cast<int>(drug_names.size())
               ? drug_names[d] + " (DID " + std::to_string(d) + ")"
               : "DID " + std::to_string(d);
  };
  std::ostringstream out;
  out << "Suggestion:";
  for (int d : exp.suggested_drugs) out << " " << name(d) << ";";
  out << "\nExplanation subgraph: " << exp.subgraph_drugs.size()
      << " drugs, trussness " << exp.trussness << ", diameter " << exp.diameter
      << "\n  Synergism:";
  if (exp.synergies_within.empty()) out << " (none among suggested)";
  for (const auto& e : exp.synergies_within) {
    out << "\n    " << name(e.drug_u) << " + " << name(e.drug_v);
  }
  out << "\n  Antagonism (within suggestion):";
  if (exp.antagonisms_within.empty()) out << " (none)";
  for (const auto& e : exp.antagonisms_within) {
    out << "\n    " << name(e.drug_u) << " x " << name(e.drug_v);
  }
  out << "\n  Antagonism (avoided partners):";
  if (exp.antagonisms_outward.empty()) out << " (none)";
  for (const auto& e : exp.antagonisms_outward) {
    out << "\n    " << name(e.drug_u) << " x " << name(e.drug_v);
  }
  out << "\n  Suggestion Satisfaction: " << exp.suggestion_satisfaction << "\n";
  return out.str();
}

}  // namespace dssddi::core
