#ifndef DSSDDI_CORE_BACKBONES_H_
#define DSSDDI_CORE_BACKBONES_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/signed_graph.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace dssddi::core {

/// GNN backbone selector for DDIGCN (paper Section IV-A2 lists GIN plus
/// the signed-graph alternatives SGCN, SiGAT and SNEA).
enum class BackboneKind { kGin, kSgcn, kSigat, kSnea };

std::string BackboneName(BackboneKind kind);

/// A DDI-graph encoder: produces one embedding row per drug. Input
/// features are one-hot drug IDs (paper Section IV-A1), so backbones take
/// no forward argument — the graph and features are fixed at construction.
class DdiBackbone {
 public:
  virtual ~DdiBackbone() = default;

  /// Builds the forward graph and returns |V| x output_dim embeddings.
  virtual tensor::Tensor Forward() = 0;
  virtual std::vector<tensor::Tensor> Parameters() const = 0;
  virtual int output_dim() const = 0;
};

struct BackboneConfig {
  int hidden_dim = 64;
  int num_layers = 3;  // paper: DDIGCN uses 3 graph convolution layers
};

/// Factory; `rng` seeds the parameter initialization.
std::unique_ptr<DdiBackbone> MakeBackbone(BackboneKind kind,
                                          const graph::SignedGraph& ddi,
                                          const BackboneConfig& config,
                                          util::Rng& rng);

}  // namespace dssddi::core

#endif  // DSSDDI_CORE_BACKBONES_H_
