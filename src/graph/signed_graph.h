#ifndef DSSDDI_GRAPH_SIGNED_GRAPH_H_
#define DSSDDI_GRAPH_SIGNED_GRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"
#include "util/rng.h"

namespace dssddi::graph {

/// Sign of a drug-drug interaction edge (paper Definition 2 plus the
/// explicit "no interaction" edges added in Section IV-A1).
enum class EdgeSign : int {
  kAntagonistic = -1,
  kNone = 0,
  kSynergistic = 1,
};

struct SignedEdge {
  int u = 0;
  int v = 0;
  EdgeSign sign = EdgeSign::kNone;
};

/// The DDI graph G = (V, E): drugs as vertices, synergistic (+1),
/// antagonistic (-1), and sampled no-interaction (0) edges. The 0 edges
/// exist only so DDIGCN can regress "no interaction"; the Medical Support
/// module operates on the interaction-only skeleton.
class SignedGraph {
 public:
  SignedGraph() = default;
  SignedGraph(int num_vertices, std::vector<SignedEdge> edges);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<SignedEdge>& edges() const { return edges_; }

  int CountEdges(EdgeSign sign) const;

  /// Neighbors of `v` over all edge types (for GIN aggregation, Eq. 1 —
  /// "the set of drugs that have interactions with drug Dv").
  const std::vector<int>& Neighbors(int v) const { return neighbors_[v]; }
  /// Neighbors connected by synergistic edges only (SGCN's B set).
  const std::vector<int>& PositiveNeighbors(int v) const { return pos_neighbors_[v]; }
  /// Neighbors connected by antagonistic edges only (SGCN's U set).
  const std::vector<int>& NegativeNeighbors(int v) const { return neg_neighbors_[v]; }

  /// Sign of edge {u, v}; kNone if absent or an explicit 0-edge.
  EdgeSign SignOf(int u, int v) const;
  /// True iff a synergistic or antagonistic edge joins u and v.
  bool HasInteraction(int u, int v) const;

  /// Unsigned skeleton over +1/-1 edges only (input to truss/CTC search).
  Graph InteractionSkeleton() const;

  /// Mean-normalized adjacency over all edges (weight 1/|N(v)| on row v),
  /// used for GIN-style neighborhood averaging.
  tensor::CsrMatrix MeanAdjacency() const;
  /// Mean-normalized adjacency restricted to one sign.
  tensor::CsrMatrix MeanAdjacency(EdgeSign sign) const;

  /// Samples `count` vertex pairs with no synergistic/antagonistic edge and
  /// appends them as explicit kNone edges (paper Section IV-A1). Existing
  /// 0-edges are not duplicated.
  void SampleNoInteractionEdges(int count, util::Rng& rng);

 private:
  void RebuildIndex();

  int num_vertices_ = 0;
  std::vector<SignedEdge> edges_;
  std::vector<std::vector<int>> neighbors_;
  std::vector<std::vector<int>> pos_neighbors_;
  std::vector<std::vector<int>> neg_neighbors_;
  // Flat lookup for SignOf: key = u * n + v.
  std::vector<std::pair<long long, EdgeSign>> sign_index_;
};

}  // namespace dssddi::graph

#endif  // DSSDDI_GRAPH_SIGNED_GRAPH_H_
