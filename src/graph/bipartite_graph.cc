#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dssddi::graph {

BipartiteGraph::BipartiteGraph(int num_patients, int num_drugs)
    : num_patients_(num_patients),
      num_drugs_(num_drugs),
      patient_to_drugs_(num_patients),
      drug_to_patients_(num_drugs) {}

BipartiteGraph BipartiteGraph::FromAdjacencyMatrix(const tensor::Matrix& y) {
  BipartiteGraph g(y.rows(), y.cols());
  for (int i = 0; i < y.rows(); ++i) {
    for (int v = 0; v < y.cols(); ++v) {
      if (y.At(i, v) > 0.5f) g.AddEdge(i, v);
    }
  }
  return g;
}

void BipartiteGraph::AddEdge(int patient, int drug) {
  DSSDDI_CHECK(patient >= 0 && patient < num_patients_) << "patient id out of range";
  DSSDDI_CHECK(drug >= 0 && drug < num_drugs_) << "drug id out of range";
  auto& drugs = patient_to_drugs_[patient];
  auto it = std::lower_bound(drugs.begin(), drugs.end(), drug);
  if (it != drugs.end() && *it == drug) return;  // already present
  drugs.insert(it, drug);
  auto& patients = drug_to_patients_[drug];
  patients.insert(std::lower_bound(patients.begin(), patients.end(), patient), patient);
  ++num_edges_;
}

bool BipartiteGraph::HasEdge(int patient, int drug) const {
  const auto& drugs = patient_to_drugs_[patient];
  return std::binary_search(drugs.begin(), drugs.end(), drug);
}

std::vector<std::pair<int, int>> BipartiteGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges_);
  for (int i = 0; i < num_patients_; ++i) {
    for (int v : patient_to_drugs_[i]) edges.emplace_back(i, v);
  }
  return edges;
}

tensor::Matrix BipartiteGraph::ToDenseMatrix() const {
  tensor::Matrix y(num_patients_, num_drugs_, 0.0f);
  for (int i = 0; i < num_patients_; ++i) {
    for (int v : patient_to_drugs_[i]) y.At(i, v) = 1.0f;
  }
  return y;
}

tensor::CsrMatrix BipartiteGraph::NormalizedPatientToDrug() const {
  std::vector<tensor::SparseEntry> entries;
  entries.reserve(num_edges_);
  for (int i = 0; i < num_patients_; ++i) {
    for (int v : patient_to_drugs_[i]) {
      const float w = 1.0f / std::sqrt(static_cast<float>(patient_to_drugs_[i].size()) *
                                       static_cast<float>(drug_to_patients_[v].size()));
      entries.push_back({i, v, w});
    }
  }
  return tensor::CsrMatrix::FromEntries(num_patients_, num_drugs_, std::move(entries));
}

tensor::CsrMatrix BipartiteGraph::NormalizedDrugToPatient() const {
  std::vector<tensor::SparseEntry> entries;
  entries.reserve(num_edges_);
  for (int v = 0; v < num_drugs_; ++v) {
    for (int i : drug_to_patients_[v]) {
      const float w = 1.0f / std::sqrt(static_cast<float>(drug_to_patients_[v].size()) *
                                       static_cast<float>(patient_to_drugs_[i].size()));
      entries.push_back({v, i, w});
    }
  }
  return tensor::CsrMatrix::FromEntries(num_drugs_, num_patients_, std::move(entries));
}

}  // namespace dssddi::graph
