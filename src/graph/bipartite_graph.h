#ifndef DSSDDI_GRAPH_BIPARTITE_GRAPH_H_
#define DSSDDI_GRAPH_BIPARTITE_GRAPH_H_

#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace dssddi::graph {

/// Patient-drug bipartite interaction graph (paper Definition 3). Patients
/// index the left side [0, num_patients), drugs the right side
/// [0, num_drugs). Edges are "patient i takes drug v".
class BipartiteGraph {
 public:
  BipartiteGraph() = default;
  BipartiteGraph(int num_patients, int num_drugs);

  /// Builds from a 0/1 medication-use matrix Y (patients x drugs).
  static BipartiteGraph FromAdjacencyMatrix(const tensor::Matrix& y);

  void AddEdge(int patient, int drug);
  bool HasEdge(int patient, int drug) const;

  int num_patients() const { return num_patients_; }
  int num_drugs() const { return num_drugs_; }
  int num_edges() const { return num_edges_; }

  /// Drugs taken by `patient` (paper's N_i), ascending.
  const std::vector<int>& DrugsOf(int patient) const { return patient_to_drugs_[patient]; }
  /// Patients taking `drug` (paper's N_v), ascending.
  const std::vector<int>& PatientsOf(int drug) const { return drug_to_patients_[drug]; }

  /// All (patient, drug) edges.
  std::vector<std::pair<int, int>> Edges() const;

  /// Dense 0/1 medication-use matrix Y.
  tensor::Matrix ToDenseMatrix() const;

  /// Symmetric-normalized propagation operators used by MDGCN /
  /// LightGCN-style convolutions (paper Eq. 11-12): entry (i, v) is
  /// 1 / sqrt(|N_i| |N_v|).
  tensor::CsrMatrix NormalizedPatientToDrug() const;  // patients x drugs
  tensor::CsrMatrix NormalizedDrugToPatient() const;  // drugs x patients

 private:
  int num_patients_ = 0;
  int num_drugs_ = 0;
  int num_edges_ = 0;
  std::vector<std::vector<int>> patient_to_drugs_;
  std::vector<std::vector<int>> drug_to_patients_;
};

}  // namespace dssddi::graph

#endif  // DSSDDI_GRAPH_BIPARTITE_GRAPH_H_
