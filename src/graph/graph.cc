#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace dssddi::graph {

Graph Graph::FromEdges(int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_.reserve(edges.size());
  for (auto [u, v] : edges) {
    DSSDDI_CHECK(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices)
        << "edge (" << u << "," << v << ") out of range";
    DSSDDI_CHECK(u != v) << "self-loop at vertex " << u;
    if (u > v) std::swap(u, v);
    g.edges_.emplace_back(u, v);
  }
  std::sort(g.edges_.begin(), g.edges_.end());
  g.edges_.erase(std::unique(g.edges_.begin(), g.edges_.end()), g.edges_.end());

  g.adj_offsets_.assign(num_vertices + 1, 0);
  for (auto [u, v] : g.edges_) {
    ++g.adj_offsets_[u + 1];
    ++g.adj_offsets_[v + 1];
  }
  for (int v = 0; v < num_vertices; ++v) g.adj_offsets_[v + 1] += g.adj_offsets_[v];
  g.adj_neighbors_.resize(g.edges_.size() * 2);
  g.adj_edge_ids_.resize(g.edges_.size() * 2);
  std::vector<int> cursor(g.adj_offsets_.begin(), g.adj_offsets_.end() - 1);
  for (int e = 0; e < static_cast<int>(g.edges_.size()); ++e) {
    auto [u, v] = g.edges_[e];
    g.adj_neighbors_[cursor[u]] = v;
    g.adj_edge_ids_[cursor[u]++] = e;
    g.adj_neighbors_[cursor[v]] = u;
    g.adj_edge_ids_[cursor[v]++] = e;
  }
  // Neighbors within each vertex bucket are already ascending because the
  // edge list is sorted lexicographically and buckets fill in order — but
  // the (v, u) reversed insertions break that for the second endpoint, so
  // sort each bucket (with the edge ids following along).
  for (int v = 0; v < num_vertices; ++v) {
    const int begin = g.adj_offsets_[v];
    const int end = g.adj_offsets_[v + 1];
    std::vector<std::pair<int, int>> bucket;
    bucket.reserve(end - begin);
    for (int i = begin; i < end; ++i) {
      bucket.emplace_back(g.adj_neighbors_[i], g.adj_edge_ids_[i]);
    }
    std::sort(bucket.begin(), bucket.end());
    for (int i = begin; i < end; ++i) {
      g.adj_neighbors_[i] = bucket[i - begin].first;
      g.adj_edge_ids_[i] = bucket[i - begin].second;
    }
  }
  return g;
}

bool Graph::FromCsrView(int num_vertices, int num_edges, const int* endpoints,
                        const int* adj_offsets, const int* adj_neighbors,
                        const int* adj_edge_ids, Graph* out,
                        std::string* error) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (num_vertices < 0 || num_edges < 0) return fail("negative graph size");
  if (num_edges > 0 && num_vertices < 2) return fail("edges without vertices");
  // The validation below is every invariant FromEdges establishes by
  // construction; a view that passes is indistinguishable from a heap
  // build to every algorithm. Hostile bytes must fail here, not crash
  // a truss decomposition later.
  const int half_edges = 2 * num_edges;
  if (adj_offsets[0] != 0 || adj_offsets[num_vertices] != half_edges) {
    return fail("CSR offsets do not cover the adjacency");
  }
  for (int v = 0; v < num_vertices; ++v) {
    if (adj_offsets[v + 1] < adj_offsets[v]) {
      return fail("CSR offsets not monotone");
    }
  }
  for (int e = 0; e < num_edges; ++e) {
    const int u = endpoints[2 * e];
    const int v = endpoints[2 * e + 1];
    if (u < 0 || v < 0 || u >= num_vertices || v >= num_vertices) {
      return fail("edge endpoint out of range");
    }
    if (u >= v) return fail("edge endpoints not ordered u < v");
    if (e > 0) {
      const int pu = endpoints[2 * e - 2];
      const int pv = endpoints[2 * e - 1];
      if (std::pair<int, int>(pu, pv) >= std::pair<int, int>(u, v)) {
        return fail("edge list not strictly ascending");
      }
    }
  }
  // Each adjacency slot must name a valid edge that actually joins this
  // vertex and its listed neighbor, each bucket must be strictly
  // ascending (sorted, no duplicates), and every edge must appear in
  // exactly two slots — counted, not assumed.
  std::vector<int> slots_per_edge(static_cast<size_t>(num_edges), 0);
  for (int v = 0; v < num_vertices; ++v) {
    for (int i = adj_offsets[v]; i < adj_offsets[v + 1]; ++i) {
      const int neighbor = adj_neighbors[i];
      const int e = adj_edge_ids[i];
      if (neighbor < 0 || neighbor >= num_vertices || neighbor == v) {
        return fail("adjacency neighbor out of range");
      }
      if (i > adj_offsets[v] && adj_neighbors[i - 1] >= neighbor) {
        return fail("adjacency bucket not strictly ascending");
      }
      if (e < 0 || e >= num_edges) return fail("adjacency edge id out of range");
      const int u = endpoints[2 * e];
      const int w = endpoints[2 * e + 1];
      if (!((u == v && w == neighbor) || (u == neighbor && w == v))) {
        return fail("adjacency edge id disagrees with endpoints");
      }
      ++slots_per_edge[e];
    }
  }
  for (int e = 0; e < num_edges; ++e) {
    if (slots_per_edge[e] != 2) return fail("edge not listed exactly twice");
  }
  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = num_edges;
  g.view_endpoints_ = endpoints;
  g.view_offsets_ = adj_offsets;
  g.view_neighbors_ = adj_neighbors;
  g.view_edge_ids_ = adj_edge_ids;
  *out = std::move(g);
  return true;
}

const std::vector<std::pair<int, int>>& Graph::edges() const {
  DSSDDI_CHECK(view_endpoints_ == nullptr)
      << "edges() on a CSR-view graph — iterate Edge(e) instead";
  return edges_;
}

Graph::NeighborRange Graph::Neighbors(int v) const {
  const int* offsets = offsets_ptr();
  const int* neighbors = neighbors_ptr();
  return {neighbors + offsets[v], neighbors + offsets[v + 1]};
}

Graph::NeighborRange Graph::IncidentEdges(int v) const {
  const int* offsets = offsets_ptr();
  const int* edge_ids = edge_ids_ptr();
  return {edge_ids + offsets[v], edge_ids + offsets[v + 1]};
}

int Graph::EdgeId(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_ || u == v) return -1;
  // Search from the lower-degree endpoint.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const int* offsets = offsets_ptr();
  const int* neighbors = neighbors_ptr();
  const int begin = offsets[u];
  const int end = offsets[u + 1];
  const int* it = std::lower_bound(neighbors + begin, neighbors + end, v);
  if (it == neighbors + end || *it != v) return -1;
  return edge_ids_ptr()[it - neighbors];
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices,
                             std::vector<int>* vertex_map_out) const {
  std::vector<int> old_to_new(num_vertices_, -1);
  std::vector<int> new_to_old;
  new_to_old.reserve(vertices.size());
  for (int v : vertices) {
    DSSDDI_CHECK(v >= 0 && v < num_vertices_) << "subgraph vertex out of range";
    if (old_to_new[v] < 0) {
      old_to_new[v] = static_cast<int>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }
  std::vector<std::pair<int, int>> sub_edges;
  const int edge_count = num_edges();
  for (int e = 0; e < edge_count; ++e) {
    const auto [u, v] = Edge(e);
    if (old_to_new[u] >= 0 && old_to_new[v] >= 0) {
      sub_edges.emplace_back(old_to_new[u], old_to_new[v]);
    }
  }
  if (vertex_map_out != nullptr) *vertex_map_out = new_to_old;
  return FromEdges(static_cast<int>(new_to_old.size()), sub_edges);
}

}  // namespace dssddi::graph
