#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace dssddi::graph {

Graph Graph::FromEdges(int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_.reserve(edges.size());
  for (auto [u, v] : edges) {
    DSSDDI_CHECK(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices)
        << "edge (" << u << "," << v << ") out of range";
    DSSDDI_CHECK(u != v) << "self-loop at vertex " << u;
    if (u > v) std::swap(u, v);
    g.edges_.emplace_back(u, v);
  }
  std::sort(g.edges_.begin(), g.edges_.end());
  g.edges_.erase(std::unique(g.edges_.begin(), g.edges_.end()), g.edges_.end());

  g.adj_offsets_.assign(num_vertices + 1, 0);
  for (auto [u, v] : g.edges_) {
    ++g.adj_offsets_[u + 1];
    ++g.adj_offsets_[v + 1];
  }
  for (int v = 0; v < num_vertices; ++v) g.adj_offsets_[v + 1] += g.adj_offsets_[v];
  g.adj_neighbors_.resize(g.edges_.size() * 2);
  g.adj_edge_ids_.resize(g.edges_.size() * 2);
  std::vector<int> cursor(g.adj_offsets_.begin(), g.adj_offsets_.end() - 1);
  for (int e = 0; e < static_cast<int>(g.edges_.size()); ++e) {
    auto [u, v] = g.edges_[e];
    g.adj_neighbors_[cursor[u]] = v;
    g.adj_edge_ids_[cursor[u]++] = e;
    g.adj_neighbors_[cursor[v]] = u;
    g.adj_edge_ids_[cursor[v]++] = e;
  }
  // Neighbors within each vertex bucket are already ascending because the
  // edge list is sorted lexicographically and buckets fill in order — but
  // the (v, u) reversed insertions break that for the second endpoint, so
  // sort each bucket (with the edge ids following along).
  for (int v = 0; v < num_vertices; ++v) {
    const int begin = g.adj_offsets_[v];
    const int end = g.adj_offsets_[v + 1];
    std::vector<std::pair<int, int>> bucket;
    bucket.reserve(end - begin);
    for (int i = begin; i < end; ++i) {
      bucket.emplace_back(g.adj_neighbors_[i], g.adj_edge_ids_[i]);
    }
    std::sort(bucket.begin(), bucket.end());
    for (int i = begin; i < end; ++i) {
      g.adj_neighbors_[i] = bucket[i - begin].first;
      g.adj_edge_ids_[i] = bucket[i - begin].second;
    }
  }
  return g;
}

Graph::NeighborRange Graph::Neighbors(int v) const {
  return {adj_neighbors_.data() + adj_offsets_[v],
          adj_neighbors_.data() + adj_offsets_[v + 1]};
}

Graph::NeighborRange Graph::IncidentEdges(int v) const {
  return {adj_edge_ids_.data() + adj_offsets_[v],
          adj_edge_ids_.data() + adj_offsets_[v + 1]};
}

int Graph::EdgeId(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_ || u == v) return -1;
  // Search from the lower-degree endpoint.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const int begin = adj_offsets_[u];
  const int end = adj_offsets_[u + 1];
  auto it = std::lower_bound(adj_neighbors_.begin() + begin,
                             adj_neighbors_.begin() + end, v);
  if (it == adj_neighbors_.begin() + end || *it != v) return -1;
  return adj_edge_ids_[it - adj_neighbors_.begin()];
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices,
                             std::vector<int>* vertex_map_out) const {
  std::vector<int> old_to_new(num_vertices_, -1);
  std::vector<int> new_to_old;
  new_to_old.reserve(vertices.size());
  for (int v : vertices) {
    DSSDDI_CHECK(v >= 0 && v < num_vertices_) << "subgraph vertex out of range";
    if (old_to_new[v] < 0) {
      old_to_new[v] = static_cast<int>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }
  std::vector<std::pair<int, int>> sub_edges;
  for (auto [u, v] : edges_) {
    if (old_to_new[u] >= 0 && old_to_new[v] >= 0) {
      sub_edges.emplace_back(old_to_new[u], old_to_new[v]);
    }
  }
  if (vertex_map_out != nullptr) *vertex_map_out = new_to_old;
  return FromEdges(static_cast<int>(new_to_old.size()), sub_edges);
}

}  // namespace dssddi::graph
