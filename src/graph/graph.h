#ifndef DSSDDI_GRAPH_GRAPH_H_
#define DSSDDI_GRAPH_GRAPH_H_

#include <string>
#include <utility>
#include <vector>

namespace dssddi::graph {

/// Undirected simple graph with contiguous vertex ids [0, n) and stable
/// edge ids [0, m). Built once, then immutable; the community-search
/// algorithms in src/algo operate on this type.
///
/// Two storage modes share one read API:
///   * owning (FromEdges) — heap vectors, the historical mode;
///   * CSR view (FromCsrView) — non-owning pointers into externally
///     owned flat arrays, e.g. a bundle-v4 mmap'd graph section. The
///     arrays must outlive the Graph; copies of a view alias the same
///     memory (the serving snapshot pins the mapping alongside it).
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; self-loops are rejected, duplicate edges
  /// (in either orientation) are merged.
  static Graph FromEdges(int num_vertices, const std::vector<std::pair<int, int>>& edges);

  /// Non-owning view over prebuilt CSR arrays laid out exactly as
  /// FromEdges builds them:
  ///   endpoints     2E ints: edge e = (endpoints[2e], endpoints[2e+1]),
  ///                 u < v, lexicographically ascending and unique;
  ///   adj_offsets   V+1 monotone ints, adj_offsets[V] == 2E;
  ///   adj_neighbors 2E ints, strictly ascending within each bucket;
  ///   adj_edge_ids  2E ints parallel to adj_neighbors.
  /// Every CSR invariant is re-validated here (O(V + E) integer checks)
  /// so corrupt or hostile mapped bytes fail cleanly instead of
  /// crashing an algorithm later. Returns false with `error` filled on
  /// any violation.
  static bool FromCsrView(int num_vertices, int num_edges,
                          const int* endpoints, const int* adj_offsets,
                          const int* adj_neighbors, const int* adj_edge_ids,
                          Graph* out, std::string* error);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const {
    return view_endpoints_ != nullptr ? num_edges_
                                      : static_cast<int>(edges_.size());
  }
  bool is_view() const { return view_endpoints_ != nullptr; }

  /// Endpoints of edge `e`, with first < second.
  std::pair<int, int> Edge(int e) const {
    if (view_endpoints_ != nullptr) {
      return {view_endpoints_[2 * e], view_endpoints_[2 * e + 1]};
    }
    return edges_[e];
  }
  /// Owning mode only (aborts on a view): the raw edge vector. Callers
  /// that must work in both modes iterate Edge(e) instead.
  const std::vector<std::pair<int, int>>& edges() const;

  int Degree(int v) const {
    const int* offsets = offsets_ptr();
    return offsets[v + 1] - offsets[v];
  }

  /// Neighbors of v in ascending order.
  struct NeighborRange {
    const int* begin_ptr;
    const int* end_ptr;
    const int* begin() const { return begin_ptr; }
    const int* end() const { return end_ptr; }
    int size() const { return static_cast<int>(end_ptr - begin_ptr); }
  };
  NeighborRange Neighbors(int v) const;

  /// Edge ids parallel to Neighbors(v).
  NeighborRange IncidentEdges(int v) const;

  /// Edge id of {u, v}, or -1 if absent. O(log deg).
  int EdgeId(int u, int v) const;

  bool HasEdge(int u, int v) const { return EdgeId(u, v) >= 0; }

  /// Vertex-induced subgraph (always owning, even from a view).
  /// `vertex_map_out`, if non-null, receives the original id of each new
  /// vertex (new id -> old id).
  Graph InducedSubgraph(const std::vector<int>& vertices,
                        std::vector<int>* vertex_map_out = nullptr) const;

  // ---- Flat CSR access (both modes) — what the bundle-v4 writer
  // serializes so a later FromCsrView reconstructs this exact graph. ----
  const int* adj_offsets_data() const { return offsets_ptr(); }
  const int* adj_neighbors_data() const { return neighbors_ptr(); }
  const int* adj_edge_ids_data() const { return edge_ids_ptr(); }

 private:
  const int* offsets_ptr() const {
    return view_offsets_ != nullptr ? view_offsets_ : adj_offsets_.data();
  }
  const int* neighbors_ptr() const {
    return view_neighbors_ != nullptr ? view_neighbors_
                                      : adj_neighbors_.data();
  }
  const int* edge_ids_ptr() const {
    return view_edge_ids_ != nullptr ? view_edge_ids_ : adj_edge_ids_.data();
  }

  int num_vertices_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<int> adj_offsets_;
  std::vector<int> adj_neighbors_;
  std::vector<int> adj_edge_ids_;

  /// View mode: all four non-null, owning vectors empty.
  int num_edges_ = 0;
  const int* view_endpoints_ = nullptr;
  const int* view_offsets_ = nullptr;
  const int* view_neighbors_ = nullptr;
  const int* view_edge_ids_ = nullptr;
};

}  // namespace dssddi::graph

#endif  // DSSDDI_GRAPH_GRAPH_H_
