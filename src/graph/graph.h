#ifndef DSSDDI_GRAPH_GRAPH_H_
#define DSSDDI_GRAPH_GRAPH_H_

#include <utility>
#include <vector>

namespace dssddi::graph {

/// Undirected simple graph with contiguous vertex ids [0, n) and stable
/// edge ids [0, m). Built once, then immutable; the community-search
/// algorithms in src/algo operate on this type.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; self-loops are rejected, duplicate edges
  /// (in either orientation) are merged.
  static Graph FromEdges(int num_vertices, const std::vector<std::pair<int, int>>& edges);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Endpoints of edge `e`, with first < second.
  std::pair<int, int> Edge(int e) const { return edges_[e]; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  int Degree(int v) const { return adj_offsets_[v + 1] - adj_offsets_[v]; }

  /// Neighbors of v in ascending order.
  struct NeighborRange {
    const int* begin_ptr;
    const int* end_ptr;
    const int* begin() const { return begin_ptr; }
    const int* end() const { return end_ptr; }
    int size() const { return static_cast<int>(end_ptr - begin_ptr); }
  };
  NeighborRange Neighbors(int v) const;

  /// Edge ids parallel to Neighbors(v).
  NeighborRange IncidentEdges(int v) const;

  /// Edge id of {u, v}, or -1 if absent. O(log deg).
  int EdgeId(int u, int v) const;

  bool HasEdge(int u, int v) const { return EdgeId(u, v) >= 0; }

  /// Vertex-induced subgraph. `vertex_map_out`, if non-null, receives the
  /// original id of each new vertex (new id -> old id).
  Graph InducedSubgraph(const std::vector<int>& vertices,
                        std::vector<int>* vertex_map_out = nullptr) const;

 private:
  int num_vertices_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<int> adj_offsets_;
  std::vector<int> adj_neighbors_;
  std::vector<int> adj_edge_ids_;
};

}  // namespace dssddi::graph

#endif  // DSSDDI_GRAPH_GRAPH_H_
