#include "graph/signed_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace dssddi::graph {

SignedGraph::SignedGraph(int num_vertices, std::vector<SignedEdge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (auto& e : edges_) {
    DSSDDI_CHECK(e.u >= 0 && e.u < num_vertices_ && e.v >= 0 && e.v < num_vertices_)
        << "signed edge out of range";
    DSSDDI_CHECK(e.u != e.v) << "self-interaction at drug " << e.u;
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  RebuildIndex();
}

void SignedGraph::RebuildIndex() {
  neighbors_.assign(num_vertices_, {});
  pos_neighbors_.assign(num_vertices_, {});
  neg_neighbors_.assign(num_vertices_, {});
  sign_index_.clear();
  sign_index_.reserve(edges_.size());
  for (const auto& e : edges_) {
    neighbors_[e.u].push_back(e.v);
    neighbors_[e.v].push_back(e.u);
    if (e.sign == EdgeSign::kSynergistic) {
      pos_neighbors_[e.u].push_back(e.v);
      pos_neighbors_[e.v].push_back(e.u);
    } else if (e.sign == EdgeSign::kAntagonistic) {
      neg_neighbors_[e.u].push_back(e.v);
      neg_neighbors_[e.v].push_back(e.u);
    }
    sign_index_.emplace_back(static_cast<long long>(e.u) * num_vertices_ + e.v, e.sign);
  }
  std::sort(sign_index_.begin(), sign_index_.end());
}

int SignedGraph::CountEdges(EdgeSign sign) const {
  int count = 0;
  for (const auto& e : edges_) {
    if (e.sign == sign) ++count;
  }
  return count;
}

EdgeSign SignedGraph::SignOf(int u, int v) const {
  if (u > v) std::swap(u, v);
  const long long key = static_cast<long long>(u) * num_vertices_ + v;
  auto it = std::lower_bound(sign_index_.begin(), sign_index_.end(),
                             std::make_pair(key, EdgeSign::kAntagonistic));
  if (it == sign_index_.end() || it->first != key) return EdgeSign::kNone;
  return it->second;
}

bool SignedGraph::HasInteraction(int u, int v) const {
  return SignOf(u, v) != EdgeSign::kNone;
}

Graph SignedGraph::InteractionSkeleton() const {
  std::vector<std::pair<int, int>> skeleton;
  for (const auto& e : edges_) {
    if (e.sign != EdgeSign::kNone) skeleton.emplace_back(e.u, e.v);
  }
  return Graph::FromEdges(num_vertices_, skeleton);
}

tensor::CsrMatrix SignedGraph::MeanAdjacency() const {
  std::vector<tensor::SparseEntry> entries;
  for (int v = 0; v < num_vertices_; ++v) {
    const auto& nbrs = neighbors_[v];
    if (nbrs.empty()) continue;
    const float w = 1.0f / static_cast<float>(nbrs.size());
    for (int u : nbrs) entries.push_back({v, u, w});
  }
  return tensor::CsrMatrix::FromEntries(num_vertices_, num_vertices_, std::move(entries));
}

tensor::CsrMatrix SignedGraph::MeanAdjacency(EdgeSign sign) const {
  const auto& lists = sign == EdgeSign::kSynergistic ? pos_neighbors_ : neg_neighbors_;
  DSSDDI_CHECK(sign != EdgeSign::kNone) << "MeanAdjacency(sign) needs +1 or -1";
  std::vector<tensor::SparseEntry> entries;
  for (int v = 0; v < num_vertices_; ++v) {
    const auto& nbrs = lists[v];
    if (nbrs.empty()) continue;
    const float w = 1.0f / static_cast<float>(nbrs.size());
    for (int u : nbrs) entries.push_back({v, u, w});
  }
  return tensor::CsrMatrix::FromEntries(num_vertices_, num_vertices_, std::move(entries));
}

void SignedGraph::SampleNoInteractionEdges(int count, util::Rng& rng) {
  DSSDDI_CHECK(num_vertices_ >= 2) << "graph too small to sample pairs";
  int added = 0;
  int attempts = 0;
  const int max_attempts = count * 200 + 1000;
  while (added < count && attempts < max_attempts) {
    ++attempts;
    int u = static_cast<int>(rng.NextBelow(num_vertices_));
    int v = static_cast<int>(rng.NextBelow(num_vertices_));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const long long key = static_cast<long long>(u) * num_vertices_ + v;
    auto it = std::lower_bound(sign_index_.begin(), sign_index_.end(),
                               std::make_pair(key, EdgeSign::kAntagonistic));
    if (it != sign_index_.end() && it->first == key) continue;  // any edge exists
    edges_.push_back({u, v, EdgeSign::kNone});
    sign_index_.insert(it, {key, EdgeSign::kNone});
    neighbors_[u].push_back(v);
    neighbors_[v].push_back(u);
    ++added;
  }
  DSSDDI_CHECK(added == count) << "could not sample " << count
                               << " no-interaction pairs (graph too dense?)";
}

}  // namespace dssddi::graph
