// Quickstart: build a (small) chronic cohort, train the full DSSDDI
// system, and get an explained medication suggestion for one unseen
// patient. Runs in well under a minute.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/dssddi_system.h"
#include "data/dataset.h"

int main() {
  using namespace dssddi;

  // 1. Data: a scaled-down Hong Kong Chronic Disease Study-like cohort
  //    with the full 86-drug catalog and DrugCombDB-like interactions.
  data::ChronicDatasetOptions data_options;
  data_options.cohort.num_males = 400;
  data_options.cohort.num_females = 300;
  const data::SuggestionDataset dataset = data::BuildChronicDataset(data_options);
  std::printf("dataset: %d patients, %d drugs, %d DDI edges (%d synergistic)\n",
              dataset.num_patients(), dataset.num_drugs(), dataset.ddi.num_edges(),
              dataset.ddi.CountEdges(graph::EdgeSign::kSynergistic));

  // 2. System: DDI module (SGCN backbone) + MD module + MS module.
  core::DssddiConfig config;
  config.ddi.backbone = core::BackboneKind::kSgcn;
  config.ddi.epochs = 150;  // quickstart budget; defaults follow the paper
  config.md.epochs = 150;
  core::DssddiSystem system(config);
  system.Fit(dataset);
  std::printf("trained %s\n\n", system.name().c_str());

  // 3. Suggest three drugs for the first unseen (test) patient, with the
  //    Medical Support explanation.
  const int patient = dataset.split.test.front();
  const core::Suggestion suggestion = system.Suggest(dataset, patient, /*k=*/3);

  std::printf("patient %d — suggested drugs:\n", patient);
  for (size_t i = 0; i < suggestion.drugs.size(); ++i) {
    std::printf("  %zu. %-22s score %.3f\n", i + 1,
                dataset.drug_names[suggestion.drugs[i]].c_str(), suggestion.scores[i]);
  }
  std::printf("\n%s\n",
              system.ms_module()->Render(suggestion.explanation, dataset.drug_names).c_str());
  return 0;
}
