// Network serving workflow: load (or train) a frozen inference bundle
// and serve it over HTTP — the epoll front-end, admission control, and
// hot reload, end to end. While running, poke it with curl:
//
//   curl localhost:8080/healthz
//   curl localhost:8080/statsz
//   curl -d '{"features":[0.1,0.2,...],"k":3}' localhost:8080/v1/suggest
//   curl -d '{"path":"/tmp/dssddi_model.dssb"}' localhost:8080/admin/reload
//
//   ./examples/http_server_cli [options]
//     --model PATH       bundle path (default /tmp/dssddi_model.dssb)
//     --host H           bind address (default 127.0.0.1)
//     --port P           port, 0 = ephemeral (default 8080)
//     --loops N          event-loop threads (default 1)
//     --threads T        scoring worker threads (default hardware)
//     --batch B          micro-batch ceiling (default 32)
//     --cache C          cache capacity, 0 disables (default 4096)
//     --max-inflight N   admission bound, 0 = unbounded (default 256)
//     --max-queue N      queue-depth bound, 0 = unbounded (default 512)
//     --deadline-ms D    default /v1/suggest latency budget when the
//                        client sends no X-Deadline-Ms / binary deadline
//                        field; 0 = no default budget (default 250)
//     --duration S       seconds to serve; 0 = until SIGINT (default 0)

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "example_bundle.h"
#include "net/http_server.h"
#include "net/suggest_frontend.h"
#include "serve/service.h"
#include "util/stopwatch.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace dssddi;

  std::string model_path = "/tmp/dssddi_model.dssb";
  std::string host = "127.0.0.1";
  int port = 8080;
  int loops = 1;
  int threads = 0;
  int batch = 32;
  size_t cache = 4096;
  size_t max_inflight = 256;
  size_t max_queue = 512;
  int deadline_ms = 250;
  int duration = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--model") && i + 1 < argc) {
      model_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--loops") && i + 1 < argc) {
      loops = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--batch") && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
      cache = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--max-inflight") && i + 1 < argc) {
      max_inflight = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--max-queue") && i + 1 < argc) {
      max_queue = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--deadline-ms") && i + 1 < argc) {
      deadline_ms = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--duration") && i + 1 < argc) {
      duration = std::atoi(argv[++i]);
    } else {
      std::printf(
          "usage: %s [--model PATH] [--host H] [--port P] [--loops N]"
          " [--threads T] [--batch B] [--cache C] [--max-inflight N]"
          " [--max-queue N] [--deadline-ms D] [--duration S]\n",
          argv[0]);
      return 1;
    }
  }

  io::InferenceBundle bundle = examples::LoadOrTrainBundle(model_path);
  const int width = bundle.cluster_centroids.cols();

  serve::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.max_batch_size = batch;
  service_options.cache_capacity = cache;
  service_options.admission.max_in_flight = max_inflight;
  service_options.admission.max_queue_depth = max_queue;
  serve::SuggestionService service(std::move(bundle), service_options);

  net::SuggestFrontendOptions frontend_options;
  if (deadline_ms > 0) {
    frontend_options.route_budgets.push_back({"/v1/suggest", deadline_ms});
  }
  net::SuggestFrontend frontend(&service, frontend_options);
  net::HttpServerOptions server_options;
  server_options.host = host;
  server_options.port = port;
  server_options.num_loops = loops;
  // Connection-level faults (parse errors, overload closes) land in the
  // same /logz ring as request events.
  server_options.recorder = service.flight_recorder();
  net::HttpServer server(server_options, frontend.AsHandler());
  frontend.AttachServer(&server);
  if (const io::Status status = server.Start(); !status.ok) {
    std::printf("error: %s\n", status.message.c_str());
    return 1;
  }

  std::printf(
      "serving on http://%s:%d  (%d loop%s, %s; %d scoring threads;"
      " %s gemm; quantize=%s; admission: %zu in-flight / %zu queued;"
      " suggest budget %d ms; feature width %d)\n",
      host.c_str(), server.port(), server.num_loops(),
      server.num_loops() == 1 ? "" : "s",
      server.using_reuseport() ? "SO_REUSEPORT" : "fd handoff",
      service.Stats().num_threads, service.Stats().gemm_backend.c_str(),
      service.Stats().quantization.c_str(), max_inflight, max_queue,
      deadline_ms, width);
  std::printf("try:  curl http://%s:%d/healthz\n", host.c_str(), server.port());
  std::printf("      curl http://%s:%d/statsz\n", host.c_str(), server.port());
  std::printf("      curl 'http://%s:%d/metricsz?format=openmetrics'\n",
              host.c_str(), server.port());
  std::printf("      curl 'http://%s:%d/logz?severity=warning'\n", host.c_str(),
              server.port());
  std::printf("      curl http://%s:%d/sloz\n", host.c_str(), server.port());
  std::printf(
      "      curl -d '{\"patient_id\":1,\"features\":[%d zeros],\"k\":3}'"
      " http://%s:%d/v1/suggest\n",
      width, host.c_str(), server.port());
  std::printf("      curl -d '{\"path\":\"%s\"}' http://%s:%d/admin/reload\n",
              model_path.c_str(), host.c_str(), server.port());
  // Supervisors and scrape scripts tail this banner for the bound port;
  // with stdout redirected to a file it would otherwise sit in the
  // block buffer until shutdown.
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  util::Stopwatch clock;
  while (!g_stop && (duration == 0 || clock.ElapsedSeconds() < duration)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  server.Stop();
  const serve::ServiceStats stats = service.Stats();
  const net::HttpServer::Counters http = server.counters();
  std::printf("\nshutting down after %.1fs\n", stats.uptime_seconds);
  std::printf("  http:    %llu conns, %llu requests, %llu responses,"
              " %llu parse errors\n",
              static_cast<unsigned long long>(http.accepted),
              static_cast<unsigned long long>(http.requests),
              static_cast<unsigned long long>(http.responses),
              static_cast<unsigned long long>(http.parse_errors));
  std::printf("  service: %llu completed (%.0f qps), p50 %.3f ms, p90 %.3f ms,"
              " p99 %.3f ms, max %.3f ms\n",
              static_cast<unsigned long long>(stats.completed), stats.qps,
              stats.p50_latency_ms, stats.p90_latency_ms, stats.p99_latency_ms,
              stats.max_latency_ms);
  std::printf("  admission: %llu admitted, %llu shed, %llu deadline-shed,"
              " %llu expired; model v%llu (%llu reloads)\n",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.deadline_shed),
              static_cast<unsigned long long>(stats.expired),
              static_cast<unsigned long long>(stats.model_version),
              static_cast<unsigned long long>(stats.reloads));
  return 0;
}
