// Fault-tolerant replicated serving, end to end: N in-process replicas
// (each its own SuggestionService + HTTP server + deterministic fault
// injector) behind a routing front-end with retries, hedging, circuit
// breakers and stale-serve. While running, poke it with curl:
//
//   curl localhost:8090/readyz
//   curl -d '{"features":[...],"k":3}' localhost:8090/v1/suggest
//   curl -d '{"replica":0,"spec":"seed=7;reset=0.3"}' localhost:8090/admin/fault
//   curl -d '{"index":1,"action":"stop"}' localhost:8090/admin/replica
//
//   ./examples/replica_cluster [options]
//     --model PATH       bundle path (default /tmp/dssddi_model.dssb)
//     --host H           bind address (default 127.0.0.1)
//     --port P           router port, 0 = ephemeral (default 8090)
//     --replicas N       replica count (default 3)
//     --threads T        scoring threads per replica (default 2)
//     --max-tries N      router tries per request (default 3)
//     --per-try-ms D     per-try budget (default 1000)
//     --deadline-ms D    default request deadline (default 1000)
//     --no-hedging       disable hedged duplicate tries
//     --duration S       seconds to serve; 0 = until SIGINT (default 0)
//
// Replica fault specs can also be seeded from the environment:
// DSSDDI_FAULT_SPEC applies to every replica at boot (see net/fault.h
// for the grammar).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "example_bundle.h"
#include "net/fault.h"
#include "net/http_server.h"
#include "net/router.h"
#include "net/suggest_frontend.h"
#include "serve/service.h"
#include "util/stopwatch.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace dssddi;

  std::string model_path = "/tmp/dssddi_model.dssb";
  std::string host = "127.0.0.1";
  int port = 8090;
  int replicas = 3;
  int threads = 2;
  int max_tries = 3;
  int per_try_ms = 1000;
  int deadline_ms = 1000;
  bool hedging = true;
  int duration = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--model") && i + 1 < argc) {
      model_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--replicas") && i + 1 < argc) {
      replicas = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--max-tries") && i + 1 < argc) {
      max_tries = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--per-try-ms") && i + 1 < argc) {
      per_try_ms = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--deadline-ms") && i + 1 < argc) {
      deadline_ms = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--no-hedging")) {
      hedging = false;
    } else if (!std::strcmp(argv[i], "--duration") && i + 1 < argc) {
      duration = std::atoi(argv[++i]);
    } else {
      std::printf(
          "usage: %s [--model PATH] [--host H] [--port P] [--replicas N]"
          " [--threads T] [--max-tries N] [--per-try-ms D] [--deadline-ms D]"
          " [--no-hedging] [--duration S]\n",
          argv[0]);
      return 1;
    }
  }
  if (replicas < 1) replicas = 1;

  // One replica: service + frontend + injector, plus an HTTP server that
  // /admin/replica can tear down and re-bind to the same port.
  struct Replica {
    std::unique_ptr<serve::SuggestionService> service;
    std::shared_ptr<net::fault::FaultInjector> injector;
    std::unique_ptr<net::SuggestFrontend> frontend;
    std::unique_ptr<net::HttpServer> server;
    std::string host;
    int port = 0;

    io::Status StartServer() {
      net::HttpServerOptions options;
      options.host = host;
      options.port = port;
      options.num_loops = 1;
      options.recorder = service->flight_recorder();
      options.fault = injector;
      server = std::make_unique<net::HttpServer>(options, frontend->AsHandler());
      const io::Status status = server->Start();
      if (!status.ok) {
        server.reset();
        return status;
      }
      port = server->port();
      frontend->AttachServer(server.get());
      return io::Status::Ok();
    }

    void StopServer() {
      if (server != nullptr) {
        server->Stop();
        server.reset();
      }
    }
  };

  io::Status env_status;
  const net::fault::FaultSpec* env_spec = nullptr;
  net::fault::FaultSpec env_parsed;
  if (const char* env = std::getenv("DSSDDI_FAULT_SPEC");
      env != nullptr && env[0] != '\0') {
    env_status = net::fault::FaultSpec::Parse(env, &env_parsed);
    if (!env_status.ok) {
      std::printf("error: DSSDDI_FAULT_SPEC: %s\n", env_status.message.c_str());
      return 1;
    }
    env_spec = &env_parsed;
  }

  std::vector<std::unique_ptr<Replica>> cluster;
  std::vector<net::ReplicaClientOptions> endpoints;
  int feature_width = 0;
  for (int i = 0; i < replicas; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->host = host;
    replica->port = 0;  // ephemeral on first bind, pinned thereafter

    serve::ServiceOptions service_options;
    service_options.num_threads = threads;
    io::InferenceBundle bundle = examples::LoadOrTrainBundle(model_path);
    feature_width = bundle.cluster_centroids.cols();
    replica->service = std::make_unique<serve::SuggestionService>(
        std::move(bundle), service_options);

    replica->injector = std::make_shared<net::fault::FaultInjector>();
    if (env_spec != nullptr) replica->injector->Install(*env_spec);

    net::SuggestFrontendOptions frontend_options;
    frontend_options.fault_injector = replica->injector;
    replica->frontend = std::make_unique<net::SuggestFrontend>(
        replica->service.get(), frontend_options);

    if (const io::Status status = replica->StartServer(); !status.ok) {
      std::printf("error: replica %d: %s\n", i, status.message.c_str());
      return 1;
    }

    net::ReplicaClientOptions endpoint;
    endpoint.host = host;
    endpoint.port = replica->port;
    endpoints.push_back(endpoint);
    cluster.push_back(std::move(replica));
  }

  auto registry = std::make_shared<obs::Registry>();
  auto recorder = std::make_shared<obs::FlightRecorder>();

  // Router-level SLO burn-rate engine over the router's own request
  // metrics. Its degraded bit is the hedge kill-switch: when the error
  // budget is burning fast, hedged duplicates would amplify the
  // overload that is burning it.
  obs::SloEngineOptions slo_options;
  slo_options.objectives =
      obs::DefaultSuggestObjectives(static_cast<double>(per_try_ms));
  auto slo = std::make_unique<obs::SloEngine>(registry, slo_options, nullptr,
                                              recorder);

  net::RouterOptions router_options;
  router_options.max_tries = max_tries;
  router_options.per_try_timeout_ms = per_try_ms;
  router_options.hedging = hedging;
  router_options.hedge_inhibit = [slo_engine = slo.get()] {
    return slo_engine->degraded();
  };
  net::Router router(endpoints, router_options, registry, recorder);

  net::RouterFrontendOptions frontend_options;
  frontend_options.default_deadline_ms = deadline_ms;
  net::RouterFrontend frontend(&router, frontend_options);
  frontend.set_slo_engine(slo.get());
  frontend.set_replica_admin([&cluster](size_t index, bool up) {
    Replica* replica = cluster[index].get();
    if (up) {
      if (replica->server != nullptr) return true;  // already running
      return replica->StartServer().ok;
    }
    if (replica->server == nullptr) return true;  // already stopped
    replica->StopServer();
    return true;
  });
  frontend.set_fault_admin(
      [&cluster](int index, const std::string& spec) -> io::Status {
        if (index < 0 || index >= static_cast<int>(cluster.size())) {
          return io::Status::Error("replica index out of range");
        }
        if (spec.empty()) {
          cluster[static_cast<size_t>(index)]->injector->Clear();
          return io::Status::Ok();
        }
        return cluster[static_cast<size_t>(index)]->injector->Install(spec);
      },
      [&cluster]() {
        std::string out = "{\"replicas\":[";
        for (size_t i = 0; i < cluster.size(); ++i) {
          if (i > 0) out.push_back(',');
          out += cluster[i]->injector->DescribeJson();
        }
        out += "]}";
        return out;
      });

  net::HttpServerOptions router_server_options;
  router_server_options.host = host;
  router_server_options.port = port;
  router_server_options.num_loops = 1;
  router_server_options.recorder = recorder;
  net::HttpServer router_server(router_server_options, frontend.AsHandler());
  frontend.AttachServer(&router_server);
  if (const io::Status status = router_server.Start(); !status.ok) {
    std::printf("error: router: %s\n", status.message.c_str());
    return 1;
  }

  std::printf("router on http://%s:%d (%d replicas, %d tries, %d ms/try,"
              " hedging %s, feature width %d)\n",
              host.c_str(), router_server.port(), replicas, max_tries,
              per_try_ms, hedging ? "on" : "off", feature_width);
  for (size_t i = 0; i < cluster.size(); ++i) {
    std::printf("replica %zu on http://%s:%d\n", i, host.c_str(),
                cluster[i]->port);
  }
  std::printf("try:  curl http://%s:%d/readyz\n", host.c_str(),
              router_server.port());
  std::printf("      curl -d '{\"replica\":0,\"spec\":\"seed=7;reset=0.3\"}'"
              " http://%s:%d/admin/fault\n",
              host.c_str(), router_server.port());
  std::printf("      curl -d '{\"index\":1,\"action\":\"stop\"}'"
              " http://%s:%d/admin/replica\n",
              host.c_str(), router_server.port());
  // Supervisors and scrape scripts tail this banner for bound ports.
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  util::Stopwatch clock;
  while (!g_stop && (duration == 0 || clock.ElapsedSeconds() < duration)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  router_server.Stop();
  for (auto& replica : cluster) replica->StopServer();
  std::printf("\ncluster stopped: %d available of %d replicas at shutdown\n",
              router.AvailableReplicas(), replicas);
  return 0;
}
