// Bring-your-own-cohort walkthrough: a clinic that keeps its records in
// spreadsheets exports four CSVs (patients, medication, DDI, drugs) and
// runs DSSDDI on them without touching the built-in generators.
//
// The example writes a small synthetic "clinic export" to /tmp, loads it
// back through data::LoadDatasetCsv, trains the system, and prints a
// suggestion with its explanation — the full adoption path a downstream
// user would follow.
//
//   ./examples/custom_cohort

#include <cstdio>
#include <string>
#include <vector>

#include "app/report.h"
#include "core/dssddi_system.h"
#include "data/csv_io.h"
#include "util/csv.h"
#include "util/rng.h"

namespace {

using namespace dssddi;

// A clinic with 3 conditions, 9 drugs (3 per condition), and simple
// prescribing habits: patients with condition c take two of its drugs,
// preferring the synergistic pair and avoiding the antagonistic one.
void WriteClinicExport(const data::CsvDatasetPaths& paths, int num_patients) {
  util::Rng rng(2024);

  util::CsvWriter patients({"patient_id", "age", "systolic_bp", "hba1c",
                            "cond_hypertension", "cond_diabetes", "cond_arthritis"});
  util::CsvWriter medication({"patient_id", "drug_id"});
  for (int i = 0; i < num_patients; ++i) {
    const int condition = static_cast<int>(rng.NextBelow(3));
    const double age = 65.0 + rng.Uniform(0.0, 25.0);
    const double bp = condition == 0 ? rng.Normal(155, 10) : rng.Normal(125, 8);
    const double hba1c = condition == 1 ? rng.Normal(8.0, 0.7) : rng.Normal(5.4, 0.4);
    patients.AddRow({std::to_string(i), std::to_string(age), std::to_string(bp),
                     std::to_string(hba1c), condition == 0 ? "1" : "0",
                     condition == 1 ? "1" : "0", condition == 2 ? "1" : "0"});
    // Drugs 3c and 3c+1 are the synergistic pair for condition c; 3c+2 is
    // the alternative that antagonizes 3c+1.
    medication.AddRow({std::to_string(i), std::to_string(3 * condition)});
    if (rng.Bernoulli(0.85)) {
      medication.AddRow({std::to_string(i), std::to_string(3 * condition + 1)});
    } else {
      medication.AddRow({std::to_string(i), std::to_string(3 * condition + 2)});
    }
  }
  patients.WriteFile(paths.patients_csv);
  medication.WriteFile(paths.medication_csv);

  util::CsvWriter ddi({"drug_u", "drug_v", "sign"});
  for (int c = 0; c < 3; ++c) {
    ddi.AddRow({std::to_string(3 * c), std::to_string(3 * c + 1), "1"});
    ddi.AddRow({std::to_string(3 * c + 1), std::to_string(3 * c + 2), "-1"});
  }
  ddi.AddRow({"0", "4", "-1"});  // a cross-condition antagonism
  ddi.WriteFile(paths.ddi_csv);

  util::CsvWriter drugs({"drug_id", "name"});
  const char* names[] = {"Lisinopril",  "Amlodipine", "Hydralazine",
                         "Metformin",   "Gliclazide", "Acarbose",
                         "Naproxen",    "Celecoxib",  "Ibuprofen"};
  for (int v = 0; v < 9; ++v) drugs.AddRow({std::to_string(v), names[v]});
  drugs.WriteFile(paths.drugs_csv);
}

}  // namespace

int main() {
  const std::string dir = "/tmp/dssddi_clinic_";
  data::CsvDatasetPaths paths;
  paths.patients_csv = dir + "patients.csv";
  paths.medication_csv = dir + "medication.csv";
  paths.ddi_csv = dir + "ddi.csv";
  paths.drugs_csv = dir + "drugs.csv";
  std::printf("writing clinic export (4 CSVs under /tmp)...\n");
  WriteClinicExport(paths, 240);

  data::CsvImportOptions options;
  options.num_diseases = 3;
  options.dataset_name = "clinic-csv";
  data::SuggestionDataset dataset;
  std::string error;
  if (!data::LoadDatasetCsv(paths, options, &dataset, &error)) {
    std::printf("import failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("imported %d patients, %d drugs, %d DDI edges\n\n",
              dataset.num_patients(), dataset.num_drugs(), dataset.ddi.num_edges());

  core::DssddiConfig config;
  config.ddi.epochs = 120;
  config.md.epochs = 150;
  config.md.hidden_dim = 32;
  core::DssddiSystem system(config);
  std::printf("training %s on the imported cohort...\n\n", system.name().c_str());
  system.Fit(dataset);

  const std::vector<std::string> feature_names = {
      "age", "systolic_bp", "hba1c", "cond_hypertension", "cond_diabetes",
      "cond_arthritis"};
  for (int p = 0; p < 2; ++p) {
    const int patient = dataset.split.test[p];
    const auto suggestion = system.Suggest(dataset, patient, 2);
    app::ReportOptions report_options;
    report_options.patient_label = std::to_string(patient);
    report_options.max_patient_features = 4;
    const auto* row = dataset.patient_features.RowPtr(patient);
    std::vector<float> features(row, row + dataset.patient_features.cols());
    std::printf("%s\n", app::RenderClinicReport(suggestion, dataset.drug_names,
                                                feature_names, features,
                                                report_options)
                            .c_str());
  }
  return 0;
}
