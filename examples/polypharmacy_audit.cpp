// Polypharmacy audit: the safety scenario the paper's introduction
// motivates — screen existing multi-drug regimens for antagonistic
// interactions. Uses the DDI module as an interaction predictor and the
// MS module to score each regimen's Suggestion Satisfaction, then
// proposes the single substitution that most improves it.
//
//   ./examples/polypharmacy_audit

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ddi_module.h"
#include "core/ms_module.h"
#include "data/catalog.h"
#include "data/chronic_cohort.h"
#include "data/ddi_database.h"

int main() {
  using namespace dssddi;
  const auto& catalog = data::Catalog::Instance();
  const graph::SignedGraph ddi = data::GenerateDdiDatabase(catalog);

  // Train the DDI module once; it doubles as an interaction predictor
  // for pairs with no recorded interaction.
  core::DdiModuleConfig ddi_config;
  ddi_config.backbone = core::BackboneKind::kSgcn;
  ddi_config.epochs = 200;
  core::DdiModule ddi_module(ddi, ddi_config);
  std::printf("training DDIGCN (edge-regression MSE %.4f after %d epochs)\n\n",
              ddi_module.Train(), ddi_config.epochs);

  core::MsModule ms(ddi, 0.5);

  // A small cohort of regimens to audit.
  data::ChronicCohortOptions cohort_options;
  cohort_options.num_males = 40;
  cohort_options.num_females = 30;
  cohort_options.ddi_ignored_probability = 0.35;  // many risky regimens
  data::ChronicCohortGenerator generator(catalog, ddi, cohort_options);
  const auto patients = generator.Generate();

  int audited = 0;
  for (size_t id = 0; id < patients.size() && audited < 5; ++id) {
    const auto& meds = patients[id].medications;
    if (meds.size() < 3) continue;
    // Collect antagonistic pairs in the regimen.
    std::vector<std::pair<int, int>> conflicts;
    for (size_t a = 0; a < meds.size(); ++a) {
      for (size_t b = a + 1; b < meds.size(); ++b) {
        if (ddi.SignOf(meds[a], meds[b]) == graph::EdgeSign::kAntagonistic) {
          conflicts.emplace_back(meds[a], meds[b]);
        }
      }
    }
    if (conflicts.empty()) continue;
    ++audited;

    const double baseline_ss = ms.SuggestionSatisfaction(meds);
    std::printf("patient %zu takes %zu drugs, SS = %.4f\n", id, meds.size(),
                baseline_ss);
    for (auto [u, v] : conflicts) {
      std::printf("  CONFLICT: %s x %s (predicted interaction %.2f)\n",
                  catalog.drug(u).name.c_str(), catalog.drug(v).name.c_str(),
                  ddi_module.PredictInteraction(u, v));
    }

    // Best single substitution: replace one conflicted drug with another
    // drug for the same primary indication that maximizes SS.
    double best_ss = baseline_ss;
    int drop = -1;
    int add = -1;
    for (auto [u, v] : conflicts) {
      for (int victim : {u, v}) {
        const int indication = catalog.drug(victim).treats.front();
        for (int candidate : catalog.DrugsForDisease(indication)) {
          if (std::find(meds.begin(), meds.end(), candidate) != meds.end()) continue;
          std::vector<int> trial = meds;
          *std::find(trial.begin(), trial.end(), victim) = candidate;
          const double trial_ss = ms.SuggestionSatisfaction(trial);
          if (trial_ss > best_ss) {
            best_ss = trial_ss;
            drop = victim;
            add = candidate;
          }
        }
      }
    }
    if (drop >= 0) {
      std::printf("  SUGGESTION: replace %s with %s -> SS %.4f (was %.4f)\n\n",
                  catalog.drug(drop).name.c_str(), catalog.drug(add).name.c_str(),
                  best_ss, baseline_ss);
    } else {
      std::printf("  SUGGESTION: no same-indication substitution improves SS\n\n");
    }
  }
  if (audited == 0) std::printf("no conflicted regimens found in this cohort\n");
  return 0;
}
