// Clinic walkthrough: the scenario from the paper's introduction — a
// doctor reviews system output for several unseen chronic patients. For
// each patient the example prints the known conditions, the system's
// top-k suggestion with its DDI explanation, and how the suggestion
// compares with what the patient actually takes.
//
//   ./examples/chronic_clinic

#include <algorithm>
#include <cstdio>

#include "core/dssddi_system.h"
#include "data/catalog.h"
#include "data/dataset.h"

int main() {
  using namespace dssddi;

  data::ChronicDatasetOptions data_options;
  data_options.cohort.num_males = 500;
  data_options.cohort.num_females = 400;
  const data::SuggestionDataset dataset = data::BuildChronicDataset(data_options);
  const auto& catalog = data::Catalog::Instance();

  core::DssddiConfig config;
  config.ddi.epochs = 150;
  config.md.epochs = 200;
  core::DssddiSystem system(config);
  std::printf("training %s on %zu observed patients...\n\n", system.name().c_str(),
              dataset.split.train.size());
  system.Fit(dataset);

  constexpr int kPatientsToReview = 4;
  constexpr int kTopK = 4;
  for (int p = 0; p < kPatientsToReview; ++p) {
    const int patient = dataset.split.test[p];
    std::printf("================ patient %d ================\n", patient);
    std::printf("conditions:");
    for (int d : dataset.patient_diseases[patient]) {
      std::printf(" %s;", catalog.disease(d).name.c_str());
    }
    std::printf("\ncurrently taking:");
    for (int v = 0; v < dataset.num_drugs(); ++v) {
      if (dataset.medication.At(patient, v) > 0.5f) {
        std::printf(" %s;", dataset.drug_names[v].c_str());
      }
    }
    std::printf("\n\n");

    const core::Suggestion suggestion = system.Suggest(dataset, patient, kTopK);
    std::printf("system suggestion (top %d):\n", kTopK);
    for (size_t i = 0; i < suggestion.drugs.size(); ++i) {
      const int drug = suggestion.drugs[i];
      const bool taking = dataset.medication.At(patient, drug) > 0.5f;
      std::printf("  %zu. %-22s score %.3f %s\n", i + 1,
                  dataset.drug_names[drug].c_str(), suggestion.scores[i],
                  taking ? "[matches current medication]" : "");
    }
    std::printf("\n%s\n",
                system.ms_module()->Render(suggestion.explanation, dataset.drug_names)
                    .c_str());
  }
  return 0;
}
