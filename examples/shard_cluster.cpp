// SO_REUSEPORT multi-process sharding: N forked worker processes each
// run a full SuggestionService + SuggestFrontend + HttpServer bound to
// the SAME data port with SO_REUSEPORT, so the kernel load-balances
// accepted connections across shards with no proxy hop on the data
// path. All shards serve the same bundle file — convert it to the v4
// mmap format (examples/bundle_convert) and the model pages are shared
// copy-on-write across every shard.
//
// The parent process supervises: it spawns workers (fork + exec of this
// same binary with a hidden --worker flag), learns each shard's private
// admin port over a pipe, and serves an aggregator endpoint:
//
//   GET  /healthz      parent liveness + alive shard count
//   GET  /readyz       200 while at least one shard answers its readyz
//   GET  /statsz       per-shard /statsz, wrapped in {"shards":[...]}
//   GET  /metricsz     per-shard expositions concatenated with a
//                      shard="N" label injected into every sample
//   GET  /shardz       supervisor view: pid / ports / alive per shard
//   POST /admin/shard  {"index":N,"action":"stop"|"start"} — graceful
//                      SIGTERM drain of one shard, or restart it
//
//   ./examples/shard_cluster [options]
//     --model PATH    bundle path (default /tmp/dssddi_model.dssb)
//     --host H        bind address (default 127.0.0.1)
//     --port P        shared data port, 0 = ephemeral (default 8095)
//     --admin-port P  aggregator port, 0 = ephemeral (default 0)
//     --shards N      worker process count (default 2)
//     --threads T     scoring threads per shard (default 2)
//     --duration S    seconds to serve; 0 = until SIGINT (default 0)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "example_bundle.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/suggest_frontend.h"
#include "serve/service.h"
#include "util/stopwatch.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

// ---------------------------------------------------------------------
// Worker process: one shard
// ---------------------------------------------------------------------

int RunShard(const std::string& model_path, const std::string& host,
             int port, int index, int threads, int notify_fd) {
  using namespace dssddi;

  serve::ServiceOptions service_options;
  service_options.num_threads = threads;
  auto service = std::make_unique<serve::SuggestionService>(
      examples::LoadOrTrainBundle(model_path), service_options);

  auto injector = std::make_shared<net::fault::FaultInjector>();
  net::SuggestFrontendOptions frontend_options;
  frontend_options.fault_injector = injector;
  net::SuggestFrontend frontend(service.get(), frontend_options);

  // The data server joins the shared port: SO_REUSEPORT makes the
  // kernel spread incoming connections across every shard bound to it.
  net::HttpServerOptions data_options;
  data_options.host = host;
  data_options.port = port;
  data_options.num_loops = 1;
  data_options.reuseport = true;
  data_options.recorder = service->flight_recorder();
  data_options.fault = injector;
  net::HttpServer data_server(data_options, frontend.AsHandler());
  if (const io::Status status = data_server.Start(); !status.ok) {
    std::printf("shard %d: data server: %s\n", index, status.message.c_str());
    return 1;
  }
  frontend.AttachServer(&data_server);

  // A private admin server on an ephemeral port lets the parent address
  // THIS shard (the shared port lands on whichever shard the kernel
  // picks).
  net::HttpServerOptions admin_options;
  admin_options.host = host;
  admin_options.port = 0;
  admin_options.num_loops = 1;
  admin_options.recorder = service->flight_recorder();
  net::HttpServer admin_server(admin_options, frontend.AsHandler());
  if (const io::Status status = admin_server.Start(); !status.ok) {
    std::printf("shard %d: admin server: %s\n", index, status.message.c_str());
    return 1;
  }

  if (notify_fd >= 0) {
    char line[64];
    const int n = std::snprintf(line, sizeof(line), "%d %d\n",
                                admin_server.port(), data_server.port());
    if (::write(notify_fd, line, static_cast<size_t>(n)) != n) {
      std::printf("shard %d: notify pipe write failed\n", index);
    }
    ::close(notify_fd);
  }
  std::printf("shard %d serving on http://%s:%d (admin :%d, pid %d)\n", index,
              host.c_str(), data_server.port(), admin_server.port(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Graceful drain: Stop() closes the listener (SO_REUSEPORT siblings
  // keep absorbing new connections immediately) and flushes in-flight
  // responses before returning.
  data_server.Stop();
  admin_server.Stop();
  std::printf("shard %d drained\n", index);
  return 0;
}

// ---------------------------------------------------------------------
// Parent process: supervisor + aggregator
// ---------------------------------------------------------------------

struct Shard {
  int index = 0;
  pid_t pid = -1;
  int admin_port = 0;
  int data_port = 0;
  bool alive = false;
};

struct Supervisor {
  std::string argv0;
  std::string model_path;
  std::string host;
  int data_port = 0;
  int threads = 2;
  std::mutex mutex;
  std::vector<Shard> shards;

  bool Spawn(int index) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: exec ourselves in worker mode. exec (rather than running
      // the shard inline) matters for restarts — the parent has threads
      // by then, and a fresh image is the only safe post-fork state.
      ::close(pipe_fds[0]);
      std::string port_arg = std::to_string(data_port);
      std::string index_arg = std::to_string(index);
      std::string threads_arg = std::to_string(threads);
      std::string notify_arg = std::to_string(pipe_fds[1]);
      const char* args[] = {argv0.c_str(),       "--worker",
                            index_arg.c_str(),   "--model",
                            model_path.c_str(),  "--host",
                            host.c_str(),        "--port",
                            port_arg.c_str(),    "--threads",
                            threads_arg.c_str(), "--notify-fd",
                            notify_arg.c_str(),  nullptr};
      ::execv(argv0.c_str(), const_cast<char**>(args));
      std::perror("execv");
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    // First line from the worker is "admin_port data_port".
    std::string line;
    char ch;
    while (::read(pipe_fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    ::close(pipe_fds[0]);
    int admin_port = 0, bound_port = 0;
    if (std::sscanf(line.c_str(), "%d %d", &admin_port, &bound_port) != 2) {
      std::printf("shard %d: bad notify line '%s'\n", index, line.c_str());
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return false;
    }
    std::lock_guard<std::mutex> lock(mutex);
    Shard& shard = shards[static_cast<size_t>(index)];
    shard.index = index;
    shard.pid = pid;
    shard.admin_port = admin_port;
    shard.data_port = bound_port;
    shard.alive = true;
    if (data_port == 0) data_port = bound_port;  // first shard pins it
    return true;
  }

  bool StopShard(int index) {
    pid_t pid = -1;
    {
      std::lock_guard<std::mutex> lock(mutex);
      Shard& shard = shards[static_cast<size_t>(index)];
      if (!shard.alive) return true;
      pid = shard.pid;
    }
    ::kill(pid, SIGTERM);
    ::waitpid(pid, nullptr, 0);
    std::lock_guard<std::mutex> lock(mutex);
    shards[static_cast<size_t>(index)].alive = false;
    return true;
  }

  /// Reap shards that died on their own (crash, OOM kill).
  void ReapDead() {
    for (;;) {
      const pid_t pid = ::waitpid(-1, nullptr, WNOHANG);
      if (pid <= 0) return;
      std::lock_guard<std::mutex> lock(mutex);
      for (Shard& shard : shards) {
        if (shard.pid == pid) shard.alive = false;
      }
    }
  }
};

/// One short admin exchange against a shard. Empty string on failure.
std::string FetchFromShard(const std::string& host, int port,
                           const std::string& target, int* status_out) {
  using namespace dssddi;
  net::HttpClient client;
  if (!client.Connect(host, port, 500).ok) return "";
  net::ClientRequestOptions options;
  options.deadline_ms = 1000;
  net::ClientResponse response;
  if (!client.Request("GET", target, "", options, &response).ok) return "";
  if (status_out != nullptr) *status_out = response.status;
  return response.body;
}

/// Injects shard="N" into every sample line of a Prometheus exposition
/// so the aggregate keeps per-shard series distinct.
std::string InjectShardLabel(const std::string& text, int shard) {
  std::string label = "shard=\"" + std::to_string(shard) + "\"";
  std::string out;
  out.reserve(text.size() + 256);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') {
      out += line;
      out.push_back('\n');
      continue;
    }
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (brace != std::string::npos &&
        (space == std::string::npos || brace < space)) {
      out += line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
    } else if (space != std::string::npos) {
      out += line.substr(0, space) + "{" + label + "}" + line.substr(space);
    } else {
      out += line;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dssddi;

  // A supervisor parsing our banner may close its end of the stdout
  // pipe once it has the ports; a serving process must not die of
  // SIGPIPE because its log consumer went away (socket writes already
  // use MSG_NOSIGNAL).
  std::signal(SIGPIPE, SIG_IGN);

  std::string model_path = "/tmp/dssddi_model.dssb";
  std::string host = "127.0.0.1";
  int port = 8095;
  int admin_port = 0;
  int num_shards = 2;
  int threads = 2;
  int duration = 0;
  int worker_index = -1;
  int notify_fd = -1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--model") && i + 1 < argc) {
      model_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--admin-port") && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc) {
      num_shards = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--duration") && i + 1 < argc) {
      duration = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--worker") && i + 1 < argc) {
      worker_index = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--notify-fd") && i + 1 < argc) {
      notify_fd = std::atoi(argv[++i]);
    } else {
      std::printf(
          "usage: %s [--model PATH] [--host H] [--port P] [--admin-port P]"
          " [--shards N] [--threads T] [--duration S]\n",
          argv[0]);
      return 1;
    }
  }
  if (worker_index >= 0) {
    return RunShard(model_path, host, port, worker_index, threads, notify_fd);
  }
  if (num_shards < 1) num_shards = 1;

  // Materialize the bundle before forking so every shard loads (and,
  // for v4, mmap-shares) the same file instead of racing to train it.
  { auto bundle = examples::LoadOrTrainBundle(model_path); }

  // Pin the shared data port up front when asked for an ephemeral one,
  // so every shard binds the same number.
  if (port == 0) {
    const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(probe, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::bind(probe, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      socklen_t len = sizeof(addr);
      ::getsockname(probe, reinterpret_cast<struct sockaddr*>(&addr), &len);
      port = static_cast<int>(ntohs(addr.sin_port));
    }
    ::close(probe);
    if (port == 0) {
      std::printf("error: could not pick an ephemeral data port\n");
      return 1;
    }
  }

  Supervisor supervisor;
  supervisor.argv0 = argv[0];
  supervisor.model_path = model_path;
  supervisor.host = host;
  supervisor.data_port = port;
  supervisor.threads = threads;
  supervisor.shards.resize(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    if (!supervisor.Spawn(i)) {
      std::printf("error: could not spawn shard %d\n", i);
      return 1;
    }
  }

  // Aggregator: fans admin reads out to every live shard's private
  // admin server. Exchanges are short (1s deadline) and admin traffic
  // is light, so blocking the single loop thread here is fine.
  auto recorder = std::make_shared<obs::FlightRecorder>();
  auto handler = [&supervisor](const net::HttpRequest& request,
                               net::ResponseWriter writer) {
    std::string path = request.target;
    if (const size_t q = path.find('?'); q != std::string::npos) {
      path.resize(q);
    }
    supervisor.ReapDead();
    std::vector<Shard> shards;
    {
      std::lock_guard<std::mutex> lock(supervisor.mutex);
      shards = supervisor.shards;
    }
    net::HttpResponse response;
    if (path == "/healthz" || path == "/shardz") {
      int alive = 0;
      for (const Shard& shard : shards) alive += shard.alive ? 1 : 0;
      net::JsonWriter w;
      w.BeginObject()
          .Key("status").String("ok")
          .Key("shards").Int(static_cast<int64_t>(shards.size()))
          .Key("alive").Int(alive)
          .Key("data_port").Int(supervisor.data_port)
          .Key("members").BeginArray();
      for (const Shard& shard : shards) {
        w.BeginObject()
            .Key("index").Int(shard.index)
            .Key("pid").Int(shard.pid)
            .Key("admin_port").Int(shard.admin_port)
            .Key("alive").Bool(shard.alive)
            .EndObject();
      }
      w.EndArray().EndObject();
      response.body = w.str();
    } else if (path == "/readyz") {
      bool ready = false;
      for (const Shard& shard : shards) {
        if (!shard.alive) continue;
        int status = 0;
        FetchFromShard(supervisor.host, shard.admin_port, "/readyz", &status);
        if (status == 200) {
          ready = true;
          break;
        }
      }
      response.status = ready ? 200 : 503;
      response.body = ready ? "{\"ready\":true}" : "{\"ready\":false}";
    } else if (path == "/statsz" || path == "/sloz") {
      std::string out = "{\"shards\":[";
      bool first = true;
      for (const Shard& shard : shards) {
        if (!first) out.push_back(',');
        first = false;
        std::string body =
            shard.alive ? FetchFromShard(supervisor.host, shard.admin_port,
                                         path, nullptr)
                        : "";
        out += body.empty() ? "{\"error\":\"shard unreachable\"}" : body;
      }
      out += "]}";
      response.body = std::move(out);
    } else if (path == "/metricsz") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      for (const Shard& shard : shards) {
        if (!shard.alive) continue;
        const std::string body = FetchFromShard(
            supervisor.host, shard.admin_port, "/metricsz", nullptr);
        response.body += InjectShardLabel(body, shard.index);
      }
    } else if (path == "/admin/shard" && request.method == "POST") {
      net::JsonValue body;
      std::string error;
      const net::JsonValue* action = nullptr;
      const net::JsonValue* index = nullptr;
      if (!net::ParseJson(request.body, &body, &error) ||
          (action = body.Find("action")) == nullptr || !action->is_string() ||
          (index = body.Find("index")) == nullptr) {
        response.status = 400;
        response.body = "{\"error\":\"body wants {\\\"index\\\":N,"
                        "\\\"action\\\":\\\"stop\\\"|\\\"start\\\"}\"}";
      } else {
        const int i = static_cast<int>(index->AsInt(-1));
        if (i < 0 || i >= static_cast<int>(shards.size())) {
          response.status = 400;
          response.body = "{\"error\":\"shard index out of range\"}";
        } else if (action->AsString() == "stop") {
          supervisor.StopShard(i);
          response.body = "{\"ok\":true,\"action\":\"stop\"}";
        } else if (action->AsString() == "start") {
          bool already = false;
          {
            std::lock_guard<std::mutex> lock(supervisor.mutex);
            already = supervisor.shards[static_cast<size_t>(i)].alive;
          }
          if (already || supervisor.Spawn(i)) {
            response.body = "{\"ok\":true,\"action\":\"start\"}";
          } else {
            response.status = 500;
            response.body = "{\"error\":\"spawn failed\"}";
          }
        } else {
          response.status = 400;
          response.body = "{\"error\":\"action wants stop|start\"}";
        }
      }
    } else {
      response.status = 404;
      response.body = "{\"error\":\"no such route\"}";
    }
    writer.Send(std::move(response));
  };

  net::HttpServerOptions aggregator_options;
  aggregator_options.host = host;
  aggregator_options.port = admin_port;
  aggregator_options.num_loops = 1;
  aggregator_options.recorder = recorder;
  net::HttpServer aggregator(aggregator_options, handler);
  if (const io::Status status = aggregator.Start(); !status.ok) {
    std::printf("error: aggregator: %s\n", status.message.c_str());
    return 1;
  }

  std::printf("shard cluster on http://%s:%d (%d shards, SO_REUSEPORT)\n",
              host.c_str(), port, num_shards);
  std::printf("aggregator on http://%s:%d\n", host.c_str(), aggregator.port());
  std::printf("try:  curl http://%s:%d/shardz\n", host.c_str(),
              aggregator.port());
  std::printf("      curl -d '{\"index\":0,\"action\":\"stop\"}'"
              " http://%s:%d/admin/shard\n",
              host.c_str(), aggregator.port());
  // Supervisors and smoke scripts tail this banner for bound ports.
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  util::Stopwatch clock;
  while (!g_stop && (duration == 0 || clock.ElapsedSeconds() < duration)) {
    supervisor.ReapDead();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  aggregator.Stop();
  int alive = 0;
  for (int i = 0; i < num_shards; ++i) {
    {
      std::lock_guard<std::mutex> lock(supervisor.mutex);
      if (!supervisor.shards[static_cast<size_t>(i)].alive) continue;
      ++alive;
    }
    supervisor.StopShard(i);
  }
  std::printf("\nshard cluster stopped: %d of %d shards were alive\n", alive,
              num_shards);
  return 0;
}
