// DDI knowledge-graph explorer: exercises the graph-algorithm substrate
// directly — truss decomposition of the interaction network, closest-
// truss-community queries around drug sets, and DDIGCN-predicted
// interaction scores for drug pairs with no recorded interaction.
//
//   ./examples/ddi_explorer

#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/ctc.h"
#include "algo/truss.h"
#include "core/ddi_module.h"
#include "data/catalog.h"
#include "data/ddi_database.h"

int main() {
  using namespace dssddi;
  const auto& catalog = data::Catalog::Instance();
  const graph::SignedGraph ddi = data::GenerateDdiDatabase(catalog);
  const graph::Graph skeleton = ddi.InteractionSkeleton();

  // --- Truss structure of the interaction network. ---
  const std::vector<int> truss = algo::TrussDecomposition(skeleton);
  std::vector<int> truss_histogram;
  for (int t : truss) {
    if (t >= static_cast<int>(truss_histogram.size())) truss_histogram.resize(t + 1, 0);
    ++truss_histogram[t];
  }
  std::printf("interaction network: %d drugs, %d edges\n", skeleton.num_vertices(),
              skeleton.num_edges());
  for (size_t t = 2; t < truss_histogram.size(); ++t) {
    if (truss_histogram[t] > 0) {
      std::printf("  truss %zu: %d edges\n", t, truss_histogram[t]);
    }
  }

  // --- Community around the statin pair of the paper's Fig. 8. ---
  const int simvastatin = catalog.FindDrug("Simvastatin");
  const int atorvastatin = catalog.FindDrug("Atorvastatin");
  const auto community =
      algo::FindClosestTrussCommunity(skeleton, {simvastatin, atorvastatin});
  std::printf("\nclosest truss community around {Simvastatin, Atorvastatin}:\n"
              "  %zu drugs, trussness %d, diameter %d:\n",
              community.vertices.size(), community.trussness, community.diameter);
  for (int v : community.vertices) {
    std::printf("    %s\n", catalog.drug(v).name.c_str());
  }

  // --- DDIGCN as an interaction predictor for unseen pairs. ---
  core::DdiModuleConfig config;
  config.backbone = core::BackboneKind::kSgcn;
  config.epochs = 200;
  core::DdiModule module(ddi, config);
  std::printf("\ntraining DDIGCN... final MSE %.4f\n", module.Train());

  // Score a few pairs without recorded interactions; same-indication
  // pairs should lean synergistic, cross-indication pairs toward zero or
  // antagonistic.
  struct Pair {
    const char* a;
    const char* b;
  };
  const Pair probes[] = {{"Enalapril", "Lisinopril"},
                         {"Metformin", "Gliclazide"},
                         {"Omeprazole", "Salbutamol"},
                         {"Gabapentin", "Timolol"},
                         {"Warfarin", "Aspirin"}};
  std::printf("\npredicted interaction scores (>0 synergy-like, <0 antagonism-like):\n");
  for (const auto& probe : probes) {
    const int a = catalog.FindDrug(probe.a);
    const int b = catalog.FindDrug(probe.b);
    const auto recorded = ddi.SignOf(a, b);
    std::printf("  %-12s x %-12s -> %+.3f (recorded: %s)\n", probe.a, probe.b,
                module.PredictInteraction(a, b),
                recorded == graph::EdgeSign::kSynergistic    ? "synergistic"
                : recorded == graph::EdgeSign::kAntagonistic ? "antagonistic"
                                                             : "none");
  }
  return 0;
}
