#ifndef DSSDDI_EXAMPLES_EXAMPLE_BUNDLE_H_
#define DSSDDI_EXAMPLES_EXAMPLE_BUNDLE_H_

// Shared bundle bootstrap for the serving demos: reuse the frozen model
// file when it loads, otherwise train a small chronic-cohort system and
// export it (the dss_cli workflow). serve_cli and http_server_cli both
// go through this, so they serve the same model the same way.

#include <cstdio>
#include <string>

#include "core/dssddi_system.h"
#include "data/chronic_cohort.h"
#include "data/dataset.h"
#include "io/inference_bundle.h"

namespace dssddi::examples {

inline io::InferenceBundle LoadOrTrainBundle(const std::string& path) {
  io::InferenceBundle bundle;
  if (io::LoadInferenceBundle(path, &bundle).ok) {
    std::printf("loaded bundle '%s' from %s (%d drugs)\n",
                bundle.display_name.c_str(), path.c_str(), bundle.num_drugs());
    return bundle;
  }
  std::printf("no usable bundle at %s — training one (about a minute)...\n",
              path.c_str());
  data::ChronicDatasetOptions data_options;
  data_options.cohort.num_males = 300;
  data_options.cohort.num_females = 200;
  const data::SuggestionDataset dataset = data::BuildChronicDataset(data_options);
  core::DssddiConfig config;
  config.ddi.epochs = 120;
  config.md.epochs = 120;
  core::DssddiSystem system(config);
  system.Fit(dataset);
  bundle = io::ExtractInferenceBundle(system, dataset);
  if (const io::Status status = io::SaveInferenceBundle(path, bundle);
      !status.ok) {
    std::printf("warning: could not save bundle: %s\n", status.message.c_str());
  } else {
    std::printf("exported bundle to %s\n", path.c_str());
  }
  return bundle;
}

}  // namespace dssddi::examples

#endif  // DSSDDI_EXAMPLES_EXAMPLE_BUNDLE_H_
