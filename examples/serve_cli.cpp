// Serving workflow: load a frozen inference bundle (training one first if
// the file is missing), start the concurrent SuggestionService, replay a
// synthetic query stream against it, and print the service stats —
// throughput, latency percentiles, batching and cache behavior.
//
//   ./examples/serve_cli [options]
//     --model PATH      bundle path (default /tmp/dssddi_model.dssb)
//     --requests N      queries to replay (default 2000)
//     --threads T       worker threads (default hardware concurrency)
//     --batch B         micro-batch ceiling (default 32)
//     --cache C         cache capacity, 0 disables (default 4096)
//     --k K             suggestion size (default 3)
//     --unique U        distinct patients in the stream (default 64;
//                       smaller = more cache hits)
//
// This is the bundle-export -> serve path end to end: the same file
// written by `dss_cli` (or by this tool's own training fallback) is what
// a clinic host would load and serve.

#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "core/dssddi_system.h"
#include "example_bundle.h"
#include "io/inference_bundle.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dssddi;

  std::string model_path = "/tmp/dssddi_model.dssb";
  int num_requests = 2000;
  int threads = 0;
  int batch = 32;
  size_t cache = 4096;
  int k = 3;
  int unique_patients = 64;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--model") && i + 1 < argc) {
      model_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--requests") && i + 1 < argc) {
      num_requests = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--batch") && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
      cache = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--k") && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--unique") && i + 1 < argc) {
      unique_patients = std::atoi(argv[++i]);
    } else {
      std::printf(
          "usage: %s [--model PATH] [--requests N] [--threads T] [--batch B]"
          " [--cache C] [--k K] [--unique U]\n",
          argv[0]);
      return 1;
    }
  }
  if (k < 1 || num_requests < 1 || unique_patients < 1) {
    std::printf("error: --k, --requests and --unique must all be >= 1\n");
    return 1;
  }

  // 1. Get a bundle: reuse the file if it loads, otherwise train a small
  //    chronic-cohort system and export it (the dss_cli workflow).
  io::InferenceBundle bundle = examples::LoadOrTrainBundle(model_path);

  // 2. Start the service.
  serve::ServiceOptions options;
  options.num_threads = threads;
  options.max_batch_size = batch;
  options.cache_capacity = cache;
  serve::SuggestionService service(std::move(bundle), options);
  const int width = service.feature_width();
  std::printf(
      "service up: %d threads, batch<=%d, cache=%zu, %s gemm,"
      " quantize=%s, feature width %d\n\n",
      service.Stats().num_threads, batch, cache,
      service.Stats().gemm_backend.c_str(),
      service.Stats().quantization.c_str(), width);

  // 3. Synthesize a query stream: `unique_patients` distinct synthetic
  //    patients, revisited with heavy repetition like a clinic day sheet.
  util::Rng rng(2024);
  std::vector<std::vector<float>> patients(unique_patients);
  for (auto& features : patients) {
    features.resize(width);
    for (float& v : features) v = static_cast<float>(rng.Normal(0.0, 1.0));
  }

  // Closed-loop replay: keep a bounded window of requests in flight,
  // like concurrent clinic frontends waiting on their answers.
  constexpr size_t kWindow = 128;
  util::Stopwatch clock;
  std::deque<std::future<core::Suggestion>> in_flight;
  size_t total_drugs = 0;
  for (int i = 0; i < num_requests; ++i) {
    if (in_flight.size() >= kWindow) {
      total_drugs += in_flight.front().get().drugs.size();
      in_flight.pop_front();
    }
    const int patient = static_cast<int>(rng.NextBelow(unique_patients));
    serve::Request request;
    request.patient_id = patient;
    request.features = patients[patient];
    request.k = k;
    in_flight.push_back(service.Submit(std::move(request)));
  }
  for (auto& future : in_flight) total_drugs += future.get().drugs.size();
  const double elapsed = clock.ElapsedSeconds();

  // 4. Report.
  const serve::ServiceStats stats = service.Stats();
  std::printf("replayed %d requests in %.3fs  (%.0f req/s, %zu drugs suggested)\n",
              num_requests, elapsed, num_requests / elapsed, total_drugs);
  std::printf("  batches: %llu (mean size %.1f)\n",
              static_cast<unsigned long long>(stats.batches), stats.mean_batch_size);
  std::printf("  cache:   %llu hits / %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              100.0 * stats.cache_hit_rate);
  std::printf("  latency: p50 %.3f ms, p99 %.3f ms\n", stats.p50_latency_ms,
              stats.p99_latency_ms);
  return 0;
}
