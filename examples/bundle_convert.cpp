// bundle_convert: rewrites an inference bundle as a flat v4 file that
// servers mmap instead of parsing (see io/bundle_v4.h for the layout).
//
//   bundle_convert <input.dssb> <output_v4.dssb> [--selftest]
//   bundle_convert --synthetic <output_v3.dssb>
//
// The input may be either format (a v4 input makes this a re-pack). With
// --selftest the tool re-verifies the artifact it just wrote: section
// checksums, then a zero-copy reload scored bit-identically against the
// source bundle on a deterministic probe batch, in both float and int8
// modes. This is the offline integrity pass the O(pages) loader skips by
// design, and what scripts/check.sh runs in CI.
//
// --synthetic writes a small random-weight v3 bundle with the full
// production shape (two MLPs, drug reps, centroids, treatment matrix,
// signed DDI graph, int8 companion) — a deterministic conversion input
// for CI that skips the minutes of training a real model needs.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/signed_graph.h"
#include "io/bundle_v4.h"
#include "io/inference_bundle.h"
#include "tensor/kernels/gemm_backend.h"
#include "tensor/nn.h"
#include "util/rng.h"

namespace {

// Scores a deterministic probe batch through both bundles and insists on
// bit-identical results. Returns true on agreement.
bool ScoresAgree(const dssddi::io::InferenceBundle& source,
                 const dssddi::io::InferenceBundle& reloaded,
                 dssddi::tensor::kernels::QuantMode mode, const char* label) {
  dssddi::io::InferenceBundle a = source;
  dssddi::io::InferenceBundle b = reloaded;
  a.quantization = static_cast<int>(mode);
  b.quantization = static_cast<int>(mode);

  const int cols = a.cluster_centroids.cols();
  constexpr int kProbeRows = 4;
  dssddi::util::Rng rng(20260809);
  dssddi::tensor::Matrix probe(kProbeRows, cols);
  for (float& v : probe.data()) {
    v = static_cast<float>(rng.Normal(0.0, 1.0));
  }

  const dssddi::tensor::Matrix expected = a.PredictScores(probe);
  const dssddi::tensor::Matrix actual = b.PredictScores(probe);
  if (!actual.SameShape(expected) ||
      std::memcmp(actual.ReadPtr(), expected.ReadPtr(),
                  expected.data().size() * sizeof(float)) != 0) {
    std::fprintf(stderr, "selftest: %s scores diverge after conversion\n",
                 label);
    return false;
  }
  std::printf("selftest: %s scores bit-identical on %d probe rows\n", label,
              kProbeRows);
  return true;
}

// A small random-weight bundle with every section populated; shape over
// quality, since conversion fidelity is what downstream checks probe.
dssddi::io::InferenceBundle MakeSyntheticBundle() {
  using namespace dssddi;
  util::Rng rng(20260809);
  const auto mat = [&rng](int rows, int cols) {
    tensor::Matrix m(rows, cols);
    for (float& v : m.data()) v = static_cast<float>(rng.Normal(0.0, 0.05));
    return m;
  };
  const int relu = static_cast<int>(tensor::Activation::kRelu);
  const int none = static_cast<int>(tensor::Activation::kNone);
  constexpr int kD1 = 24;
  constexpr int kHidden = 32;
  constexpr int kDrugs = 48;
  constexpr int kClusters = 4;

  io::InferenceBundle bundle;
  bundle.display_name = "bundle_convert synthetic";
  bundle.hidden_dim = kHidden;
  bundle.mlp_decoder = true;
  bundle.use_treatment_feature = true;
  bundle.patient_fc.layers = {
      {mat(kD1, kHidden), mat(1, kHidden), relu},
      {mat(kHidden, kHidden), mat(1, kHidden), relu},
  };
  bundle.decoder.layers = {
      {mat(kHidden + 1, kHidden), mat(1, kHidden), relu},
      {mat(kHidden, 1), mat(1, 1), none},
  };
  bundle.final_drug_reps = mat(kDrugs, kHidden);
  bundle.cluster_centroids = mat(kClusters, kD1);
  bundle.cluster_treatment = mat(kClusters, kDrugs);
  std::vector<graph::SignedEdge> edges;
  for (int v = 0; v + 1 < kDrugs; ++v) {
    edges.push_back({v, v + 1,
                     v % 5 == 0 ? graph::EdgeSign::kAntagonistic
                                : graph::EdgeSign::kSynergistic});
  }
  bundle.ddi = graph::SignedGraph(kDrugs, edges);
  bundle.drug_names.reserve(kDrugs);
  for (int v = 0; v < kDrugs; ++v) {
    bundle.drug_names.push_back("D" + std::to_string(v));
  }
  bundle.EnsureQuantized();
  return bundle;
}

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  bool synthetic = false;
  std::string input;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--synthetic") {
      synthetic = true;
    } else if (input.empty()) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (synthetic) {
    if (input.empty() || !output.empty()) {
      std::fprintf(stderr, "usage: bundle_convert --synthetic <output.dssb>\n");
      return 2;
    }
    const dssddi::io::InferenceBundle bundle = MakeSyntheticBundle();
    if (const dssddi::io::Status status =
            dssddi::io::SaveInferenceBundle(input, bundle);
        !status.ok) {
      std::fprintf(stderr, "cannot write %s: %s\n", input.c_str(),
                   status.message.c_str());
      return 1;
    }
    std::printf("wrote synthetic v3 bundle to %s (%d drugs)\n", input.c_str(),
                bundle.num_drugs());
    return 0;
  }
  if (input.empty() || output.empty()) {
    std::fprintf(stderr,
                 "usage: bundle_convert <input.dssb> <output_v4.dssb> "
                 "[--selftest]\n"
                 "       bundle_convert --synthetic <output.dssb>\n");
    return 2;
  }

  dssddi::io::InferenceBundle bundle;
  if (const dssddi::io::Status status =
          dssddi::io::LoadInferenceBundle(input, &bundle);
      !status.ok) {
    std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                 status.message.c_str());
    return 1;
  }
  std::printf("loaded %s (format v%u, %.2f ms, %d drugs)\n", input.c_str(),
              bundle.format_version, bundle.load_ms, bundle.num_drugs());

  if (const dssddi::io::Status status =
          dssddi::io::SaveInferenceBundleV4(output, bundle);
      !status.ok) {
    std::fprintf(stderr, "cannot write %s: %s\n", output.c_str(),
                 status.message.c_str());
    return 1;
  }

  dssddi::io::InferenceBundle reloaded;
  if (const dssddi::io::Status status =
          dssddi::io::LoadInferenceBundle(output, &reloaded);
      !status.ok) {
    std::fprintf(stderr, "wrote %s but it does not load back: %s\n",
                 output.c_str(), status.message.c_str());
    return 1;
  }
  std::printf("wrote %s (v%u, %zu bytes mapped, loaded in %.2f ms)\n",
              output.c_str(), reloaded.format_version, reloaded.bytes_mapped(),
              reloaded.load_ms);

  if (!selftest) return 0;

  if (const dssddi::io::Status status =
          dssddi::io::VerifyBundleV4Checksums(output);
      !status.ok) {
    std::fprintf(stderr, "selftest: %s\n", status.message.c_str());
    return 1;
  }
  std::printf("selftest: all section checksums verify\n");
  if (!ScoresAgree(bundle, reloaded, dssddi::tensor::kernels::QuantMode::kNone,
                   "float") ||
      !ScoresAgree(bundle, reloaded, dssddi::tensor::kernels::QuantMode::kInt8,
                   "int8")) {
    return 1;
  }
  std::printf("selftest: OK\n");
  return 0;
}
