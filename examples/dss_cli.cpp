// Deployable clinic workflow: train the decision support system once,
// export the frozen inference bundle to disk, reload it (as a clinic
// host without the training stack would), and print doctor-facing
// reports with safety audits for unseen patients.
//
//   ./examples/dss_cli [options]
//     --patients N      number of test patients to report on (default 3)
//     --k K             suggestion size (default 4)
//     --model PATH      bundle path (default /tmp/dssddi_model.dssb)
//     --reuse           skip training if the bundle file already loads
//
// This exercises the io::InferenceBundle path end to end: scores produced
// by the reloaded bundle are bit-identical to the in-process system.

#include <cstdio>
#include <cstring>
#include <string>

#include "app/importance.h"
#include "app/report.h"
#include "core/dssddi_system.h"
#include "data/catalog.h"
#include "data/chronic_cohort.h"
#include "data/dataset.h"
#include "io/inference_bundle.h"

int main(int argc, char** argv) {
  using namespace dssddi;

  int num_patients = 3;
  int k = 4;
  std::string model_path = "/tmp/dssddi_model.dssb";
  bool reuse = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--patients") && i + 1 < argc) {
      num_patients = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--k") && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--model") && i + 1 < argc) {
      model_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--reuse")) {
      reuse = true;
    } else {
      std::printf("usage: %s [--patients N] [--k K] [--model PATH] [--reuse]\n",
                  argv[0]);
      return 1;
    }
  }

  data::ChronicDatasetOptions data_options;
  data_options.cohort.num_males = 500;
  data_options.cohort.num_females = 400;
  const data::SuggestionDataset dataset = data::BuildChronicDataset(data_options);

  io::InferenceBundle bundle;
  bool loaded = false;
  if (reuse) {
    if (io::Status status = io::LoadInferenceBundle(model_path, &bundle); status.ok) {
      std::printf("reusing trained model from %s (%s)\n\n", model_path.c_str(),
                  bundle.display_name.c_str());
      loaded = true;
    } else {
      std::printf("cannot reuse model: %s\ntraining from scratch instead.\n\n",
                  status.message.c_str());
    }
  }

  if (!loaded) {
    core::DssddiConfig config;
    config.ddi.epochs = 150;
    config.md.epochs = 200;
    core::DssddiSystem system(config);
    std::printf("training %s on %zu observed patients...\n", system.name().c_str(),
                dataset.split.train.size());
    system.Fit(dataset);

    bundle = io::ExtractInferenceBundle(system, dataset);
    if (io::Status status = io::SaveInferenceBundle(model_path, bundle); !status.ok) {
      std::printf("warning: could not save model: %s\n", status.message.c_str());
    } else {
      std::printf("model exported to %s\n", model_path.c_str());
      // Reload immediately so the rest of the run exercises exactly what a
      // clinic host would execute.
      io::InferenceBundle reloaded;
      if (io::LoadInferenceBundle(model_path, &reloaded).ok) bundle = reloaded;
    }
    std::printf("\n");
  }

  const auto& feature_names = data::ChronicCohortGenerator::FeatureNames();
  for (int p = 0; p < num_patients && p < static_cast<int>(dataset.split.test.size());
       ++p) {
    const int patient = dataset.split.test[p];
    const tensor::Matrix x = dataset.patient_features.GatherRows({patient});
    const core::Suggestion suggestion = bundle.Suggest(x, k);

    app::ReportOptions options;
    options.patient_label = std::to_string(patient);
    std::vector<float> features(x.RowPtr(0), x.RowPtr(0) + x.cols());
    std::printf("%s", app::RenderClinicReport(suggestion, bundle.drug_names,
                                              feature_names, features, options)
                          .c_str());

    // Which patient features drove the top suggestion (occlusion).
    if (!suggestion.drugs.empty()) {
      const app::ScoreFn scorer = [&](const tensor::Matrix& batch) {
        return bundle.PredictScores(batch);
      };
      const auto attributions =
          app::OcclusionImportance(scorer, x, suggestion.drugs[0]);
      std::printf("Top features behind %s:\n%s",
                  bundle.drug_names[suggestion.drugs[0]].c_str(),
                  app::RenderImportance(attributions, feature_names, 5).c_str());
    }

    // Safety audit against what the patient currently takes.
    std::vector<int> current;
    for (int v = 0; v < dataset.num_drugs(); ++v) {
      if (dataset.medication.At(patient, v) > 0.5f) current.push_back(v);
    }
    const auto flags = app::AuditSuggestion(suggestion.drugs, current, dataset.ddi);
    std::printf("Safety audit vs current regimen (%zu drugs):\n%s\n", current.size(),
                app::RenderSafetyFlags(flags, bundle.drug_names).c_str());
  }
  return 0;
}
